"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one paper figure/table at the scale named by
``REPRO_SCALE`` (default ``smoke`` so ``pytest benchmarks/`` finishes in
minutes).  The rendered tables are printed and written to ``results/`` so
a benchmark run leaves the reproduced evaluation behind as text.
"""

from __future__ import annotations

import os
import pathlib

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "smoke")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    out = pathlib.Path(__file__).resolve().parent.parent / "results"
    out.mkdir(exist_ok=True)
    return out


@pytest.fixture
def record_figure(results_dir, capsys):
    """Print a figure and persist its text rendering."""

    def _record(name: str, figure) -> None:
        text = figure.render()
        with capsys.disabled():
            print()
            print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record
