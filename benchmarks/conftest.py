"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark regenerates one paper figure/table at the scale named by
``REPRO_SCALE`` (default ``smoke`` so ``pytest benchmarks/`` finishes in
minutes).  The rendered tables are printed and written to ``results/`` so
a benchmark run leaves the reproduced evaluation behind as text.

Two more environment knobs ride the harness's caching layers:

``REPRO_JOBS``
    >1 pre-computes the workload matrix across that many worker
    processes before any benchmark runs; the benchmarks then hit the
    warmed cell cache and produce identical figures.

``REPRO_NO_CACHE``
    Set non-empty to bypass the on-disk ``.bench_cache/`` (cells are
    still memoized in-process for the session).
"""

from __future__ import annotations

import os
import pathlib

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_SCALE", "smoke")


@pytest.fixture(scope="session", autouse=True)
def _prewarm_matrix(scale):
    """Fan the matrix out over REPRO_JOBS workers before benchmarks run."""
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    if jobs > 1:
        from repro.harness import parallel

        parallel.run_matrix(
            parallel.matrix_specs(scale),
            jobs=jobs,
            use_cache=not os.environ.get("REPRO_NO_CACHE"),
        )


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    out = pathlib.Path(__file__).resolve().parent.parent / "results"
    out.mkdir(exist_ok=True)
    return out


@pytest.fixture
def record_figure(results_dir, capsys):
    """Print a figure and persist its text rendering."""

    def _record(name: str, figure) -> None:
        text = figure.render()
        with capsys.disabled():
            print()
            print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record
