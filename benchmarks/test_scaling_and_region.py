"""Thread scaling and OOP-region reservation sweeps (extra analyses)."""

from repro.harness import run_region_fraction_sweep, run_thread_scaling


def test_thread_scaling(benchmark, record_figure, scale):
    figure = benchmark.pedantic(
        run_thread_scaling, args=(scale,), rounds=1, iterations=1
    )
    record_figure("threads", figure)
    native = figure.column("native")
    hoop = figure.column("hoop")
    # Both scale up with threads...
    assert native[-1] > native[0] * 1.5
    assert hoop[-1] > hoop[0] * 1.5
    # ...but the ideal curve scales at least as well as HOOP's.
    native_speedup = native[-1] / native[0]
    hoop_speedup = hoop[-1] / hoop[0]
    assert native_speedup >= hoop_speedup * 0.8


def test_region_fraction_sweep(benchmark, record_figure, scale):
    figure = benchmark.pedantic(
        run_region_fraction_sweep, args=(scale,), rounds=1, iterations=1
    )
    record_figure("regions", figure)
    on_demand = figure.column("on-demand GCs")
    throughput = figure.column("tx/ms")
    # Tighter reservations force more on-demand collections...
    assert on_demand[0] >= on_demand[-1]
    # ...without collapsing throughput (the stall is bounded).
    assert min(throughput) >= max(throughput) * 0.5
