"""Figure 13: YCSB throughput under varying mapping-table sizes.

Paper shape: undersized tables trigger on-demand GC (lower throughput);
past the knee, extra SRAM barely helps because the periodic GC bounds
table occupancy anyway.
"""

from repro.harness import run_figure13


def test_fig13(benchmark, record_figure, scale):
    figure = benchmark.pedantic(
        run_figure13, args=(scale,), rounds=1, iterations=1
    )
    record_figure("fig13", figure)
    throughput = figure.column("tx/ms")
    on_demand = figure.column("on-demand GCs")
    # The smallest table forces at least as many on-demand collections as
    # the largest.
    assert on_demand[0] >= on_demand[-1]
    # Throughput does not collapse anywhere across the sweep; at small
    # simulated scales the stall cost of on-demand GC partially trades
    # against cheaper post-GC reads, so we bound the band rather than
    # demand strict monotonicity (see EXPERIMENTS.md).
    assert min(throughput) >= max(throughput) * 0.5
