"""Figure 7a: transaction throughput across schemes and workloads.

Shape assertions follow the paper's claims rather than absolute numbers:
HOOP delivers the best persistence-scheme throughput on (geometric) mean,
the Ideal system stays above HOOP, and Opt-Redo sits at the bottom of the
normalization.
"""

from repro.harness import run_figure7a


def test_fig7a(benchmark, record_figure, scale):
    figure = benchmark.pedantic(
        run_figure7a, args=(scale,), rounds=1, iterations=1
    )
    record_figure("fig7a", figure)
    geomean = figure.by_key("Workload")["geomean"]
    columns = figure.columns
    hoop = geomean[columns.index("hoop")]
    ideal = geomean[columns.index("ideal")]
    redo = geomean[columns.index("opt-redo")]
    # HOOP beats Opt-Redo (paper: +74.3%) and loses to Ideal (paper: -20.6%).
    assert hoop > redo
    assert ideal > hoop
    # HOOP is the best persistence scheme on average.
    for scheme in ("opt-undo", "osp", "lsm"):
        assert hoop > geomean[columns.index(scheme)], scheme
