"""Figure 7b: critical-path latency across schemes and workloads.

Paper shape: HOOP's latency is closest to Native among persistence
schemes; LSM is the worst (software index walks); Opt-Undo is worse than
Opt-Redo (strict per-transaction double drain vs a single drain).
"""

from repro.harness import run_figure7b


def test_fig7b(benchmark, record_figure, scale):
    figure = benchmark.pedantic(
        run_figure7b, args=(scale,), rounds=1, iterations=1
    )
    record_figure("fig7b", figure)
    geomean = figure.by_key("Workload")["geomean"]
    columns = figure.columns

    def of(scheme: str) -> float:
        return geomean[columns.index(scheme)]

    # HOOP has the lowest latency of all persistence schemes but LAD-level.
    for scheme in ("opt-redo", "opt-undo", "osp", "lsm"):
        assert of("hoop") < of(scheme), scheme
    # LSM's software index keeps it clearly above HOOP and LAD
    # (paper: HOOP is 60.5% lower than LSM, its widest latency margin).
    assert of("lsm") > of("lad")
    # Undo's double drain costs more than redo's single drain.
    assert of("opt-undo") > of("opt-redo")
