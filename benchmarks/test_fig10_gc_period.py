"""Figure 10: GC efficiency across trigger periods.

Paper shape: throughput peaks at a middle period — eager GC wastes
bandwidth on un-coalesced migrations, while very long periods fill the
reserved region and push on-demand GC onto the critical path.
"""

from repro.harness import run_figure10


def test_fig10(benchmark, record_figure, scale):
    figure = benchmark.pedantic(
        run_figure10, args=(scale,), rounds=1, iterations=1
    )
    record_figure("fig10", figure)
    workloads = figure.columns[1:-1]
    on_demand = figure.column("on-demand GCs")
    # The longest periods run out of region space and fall back to
    # on-demand collection (the paper's >11 ms regime).
    assert on_demand[-1] >= on_demand[0]
    for workload in workloads:
        series = figure.column(workload)
        best = max(series)
        # The best operating point beats the most eager setting: eager GC
        # costs coalescing (Table IV at small windows).
        assert best >= series[0]
