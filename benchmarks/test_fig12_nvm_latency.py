"""Figure 12: YCSB throughput under varying NVM latency.

Paper shape: throughput improves monotonically as either read or write
latency drops; HOOP benefits from both because loads and GC use reads
while commits persist slices.
"""

from repro.harness import run_figure12


def test_fig12(benchmark, record_figure, scale):
    figure = benchmark.pedantic(
        run_figure12, args=(scale,), rounds=1, iterations=1
    )
    record_figure("fig12", figure)
    read_sweep = figure.column("read sweep (tx/ms)")
    write_sweep = figure.column("write sweep (tx/ms)")
    # Lowest latency (first row) beats highest latency (last row).
    assert read_sweep[0] > read_sweep[-1]
    assert write_sweep[0] > write_sweep[-1]
