"""§IV-C read-path profile: loads per LLC miss and parallel reads.

Paper numbers: 1.28 NVM loads per LLC miss on average, 3.4% of misses
issuing parallel home+OOP reads, 12.1% average LLC miss ratio.  We assert
the same regime: close to one load per miss, parallel reads rare.
"""

from repro.harness import run_read_profile


def test_read_profile(benchmark, record_figure, scale):
    figure = benchmark.pedantic(
        run_read_profile, args=(scale,), rounds=1, iterations=1
    )
    record_figure("profile", figure)
    loads_per_miss = figure.column("NVM loads per miss")
    parallel = figure.column("parallel-read fraction")
    for value in loads_per_miss:
        # Fill-path reads only; a miss costs one home read, plus slice
        # reads when the mapping table hits (paper: 1.28 on average).
        assert 0.5 <= value <= 3.0
    for value in parallel:
        assert value <= 0.6  # parallel reads are the uncommon path
