"""§IV-A dataset variants: 64 B vs 1 KB items (512 B / 1 KB for YCSB)."""

from repro.harness import run_dataset_variants


def test_dataset_variants(benchmark, record_figure, scale):
    figure = benchmark.pedantic(
        run_dataset_variants, args=(scale,), rounds=1, iterations=1
    )
    record_figure("datasets", figure)
    rows = figure.rows
    # Bigger items always cost more absolute traffic under both schemes.
    by_pair = {(r[0], r[1]): r for r in rows}
    for workload in ("vector", "hashmap"):
        small = by_pair[(workload, 64)]
        large = by_pair[(workload, 1024)]
        assert large[3] > small[3]  # hoop B/tx grows with item size
        assert large[5] > small[5]  # redo B/tx grows with item size
    # Redo's extra log traffic is visible at every size.
    for row in rows:
        assert row[6] > 0.8
