"""Table I: the qualitative crash-consistency comparison."""

from repro.harness import run_table1


def test_table1(benchmark, record_figure):
    figure = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    record_figure("table1", figure)
    rows = figure.by_key("Scheme")
    hoop = rows["hoop"]
    # HOOP's Table I row: low read latency, nothing extra on the critical
    # path, no flushes/fences, low write traffic.
    assert hoop[2] == "Low"
    assert hoop[3] == "No"
    assert hoop[4] == "No"
    assert hoop[5] == "Low"
    # The logging baselines put extra writes on the critical path.
    assert rows["opt-redo"][3] == "Yes"
    assert rows["opt-undo"][3] == "Yes"
