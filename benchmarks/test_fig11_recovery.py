"""Figure 11: parallel recovery of a 1 GB OOP region.

Paper shape: recovery time falls with NVM bandwidth (47 ms at 25 GB/s,
2.3x faster than at 10 GB/s) and with recovery threads until the channel
saturates.
"""

from repro.harness import run_figure11


def test_fig11(benchmark, record_figure, scale):
    figure = benchmark.pedantic(
        run_figure11, args=(scale,), rounds=1, iterations=1
    )
    record_figure("fig11", figure)
    col10 = figure.column("10 GB/s (ms)")
    col25 = figure.column("25 GB/s (ms)")
    threads = figure.column("Threads")
    # More bandwidth -> faster recovery at every thread count.
    for t10, t25 in zip(col10, col25):
        assert t25 < t10
    # More threads never hurt, and help at least 1.5x from 1 to 16 at
    # high bandwidth.
    assert col25[-1] <= col25[0]
    assert col25[0] / col25[-1] > 1.5
    # The paper's headline: ~47 ms for 1 GB at 25 GB/s with enough
    # threads; our model should land in the same decade.
    assert 10 <= col25[-1] <= 200
    # Bandwidth speedup at max threads is around the paper's 2.3x.
    assert 1.5 <= col10[-1] / col25[-1] <= 4.0
    assert threads == sorted(threads)
