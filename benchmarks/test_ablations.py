"""Ablation benches for HOOP's design choices (DESIGN.md §4).

The paper motivates three mechanisms: word-granularity **data packing**
(Fig. 3), GC **data coalescing** (Table IV), and the §III-I extensions.
Each ablation switches one off and measures the cost on a YCSB run, so
the contribution of every design choice is individually visible.
"""

import dataclasses

from repro.common.config import GCConfig
from repro.harness.experiments import get_scale, run_cell
from repro.stats.report import FigureData


def _run(scale, **hoop_overrides):
    preset = get_scale(scale)
    config = preset.system_config()
    hoop = dataclasses.replace(config.hoop, **hoop_overrides)
    config = config.replace(hoop=hoop)
    return run_cell(
        "hoop", "ycsb", scale, seed=7, config=config, use_cache=False
    )


def test_ablation_data_packing(benchmark, record_figure, scale):
    """Packing off -> every word pays a whole 128-byte slice."""

    def run():
        packed = _run(scale)
        unpacked = _run(scale, packing_degree=1)
        fig = FigureData(
            "Ablation A",
            "Data packing (YCSB bytes/tx)",
            ["Variant", "B/tx", "tx/ms"],
        )
        fig.add_row("packed (8 words/slice)", packed.bytes_per_tx,
                    packed.throughput_tx_per_ms)
        fig.add_row("unpacked (1 word/slice)", unpacked.bytes_per_tx,
                    unpacked.throughput_tx_per_ms)
        fig.add_note(
            "Packing is the paper's bandwidth argument: without it the"
            " slice metadata overhead multiplies write traffic."
        )
        return fig, packed, unpacked

    fig, packed, unpacked = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure("ablation_packing", fig)
    assert unpacked.bytes_per_tx > 2.0 * packed.bytes_per_tx
    assert unpacked.throughput_tx_per_ms <= packed.throughput_tx_per_ms * 1.1


def test_ablation_gc_coalescing(benchmark, record_figure, scale):
    """Coalescing off -> GC writes every committed version home."""

    def run():
        preset = get_scale(scale)
        period = preset.gc_period_ns
        on = _run(scale, gc=GCConfig(period_ns=period, coalesce=True))
        off = _run(scale, gc=GCConfig(period_ns=period, coalesce=False))
        fig = FigureData(
            "Ablation B",
            "GC data coalescing (YCSB bytes/tx)",
            ["Variant", "B/tx", "tx/ms"],
        )
        fig.add_row("coalescing on", on.bytes_per_tx,
                    on.throughput_tx_per_ms)
        fig.add_row("coalescing off", off.bytes_per_tx,
                    off.throughput_tx_per_ms)
        fig.add_note(
            "Coalescing is where Table IV's reduction ratios come from;"
            " ablated, the collector redundantly writes stale versions."
        )
        return fig, on, off

    fig, on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure("ablation_coalescing", fig)
    assert off.bytes_per_tx > on.bytes_per_tx


def test_ablation_mapping_condensing(benchmark, record_figure, scale):
    """§III-I condensing shrinks mapping-table occupancy."""

    def run():
        import random

        from repro import MemorySystem

        rows = []
        for condense in (False, True):
            preset = get_scale(scale)
            config = preset.system_config()
            hoop = dataclasses.replace(
                config.hoop,
                condense_mapping=condense,
                gc=GCConfig(period_ns=1e15),
            )
            config = config.replace(hoop=hoop)
            system = MemorySystem(config, scheme="hoop")
            rng = random.Random(11)
            addrs = [system.allocate(64) for _ in range(256)]
            for _ in range(400):
                with system.transaction() as tx:
                    tx.store(rng.choice(addrs), b"x" * 64)
            rows.append(
                (condense,
                 system.scheme.controller.mapping.stats.peak_entries)
            )
        fig = FigureData(
            "Ablation C",
            "Mapping-entry condensing (§III-I)",
            ["Condensing", "peak entries"],
        )
        for condense, peak in rows:
            fig.add_row("on" if condense else "off", peak)
        fig.add_note(
            "Full-line updates whose words share one slice collapse to a"
            " single entry — the SRAM saving the paper sketches."
        )
        return fig, dict(rows)

    fig, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record_figure("ablation_condensing", fig)
    assert rows[True] < rows[False]
