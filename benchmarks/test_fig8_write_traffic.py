"""Figure 8: NVM write traffic per transaction.

Paper shape: the logging baselines roughly double HOOP's traffic (2.1x
redo, 1.9x undo); OSP/LSM sit moderately above HOOP.  LAD's line-granular
commit is HOOP's closest competitor — on dense full-line updates (vector,
hashmap with 64 B items) LAD can dip below HOOP, which EXPERIMENTS.md
discusses; the geometric mean across the seven workloads keeps the
paper's ordering for the logging family.
"""

from repro.harness import run_figure8


def test_fig8(benchmark, record_figure, scale):
    figure = benchmark.pedantic(
        run_figure8, args=(scale,), rounds=1, iterations=1
    )
    record_figure("fig8", figure)
    geomean = figure.by_key("Workload")["geomean"]
    columns = figure.columns

    def of(scheme: str) -> float:
        return geomean[columns.index(f"{scheme} (xHOOP)")]

    # Logging roughly doubles the traffic relative to HOOP.
    assert of("opt-redo") > 1.4
    assert of("opt-undo") > 1.3
    # Redo and undo are within a few percent of each other (paper: 9.1%).
    assert of("opt-redo") > of("opt-undo") * 0.9
    # LSM is in HOOP's neighbourhood, well below the logging family
    # (paper: +12.5%; our LSM dips slightly below HOOP on dense streaming
    # writes where extent coalescing beats slice quanta — see
    # EXPERIMENTS.md).
    assert 0.7 < of("lsm") < of("opt-redo")
