"""Table IV: GC data-reduction ratio vs transactions per collection.

Paper shape: the reduction ratio rises monotonically with the number of
transactions between GC passes (more same-word overwrites coalesce),
from ~25% at 10 transactions to >80% at 10,000.
"""

from repro.harness import run_table4


def test_table4(benchmark, record_figure, scale):
    figure = benchmark.pedantic(
        run_table4, args=(scale,), rounds=1, iterations=1
    )
    record_figure("table4", figure)
    counts = figure.column("Tx between GCs")
    # For every workload the reduction ratio grows with the window size.
    for workload in figure.columns[1:]:
        series = figure.column(workload)
        assert series[0] < series[-1], (
            f"{workload}: reduction did not grow "
            f"({series[0]:.3f} -> {series[-1]:.3f})"
        )
    # The largest window coalesces at least half the modified bytes for
    # the overwrite-heavy workloads (paper: 70-85%).
    hashmap = figure.column("hashmap")
    assert hashmap[-1] > 0.5
    assert counts == sorted(counts)
