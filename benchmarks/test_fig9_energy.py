"""Figure 9: NVM energy per transaction.

Energy follows traffic (array writes at 16.82 pJ/bit dominate), so the
paper's ordering — HOOP below the logging family, modestly below OSP and
LSM — falls out of Fig. 8 plus read energy from GC and parallel reads.
"""

from repro.harness import run_figure9


def test_fig9(benchmark, record_figure, scale):
    figure = benchmark.pedantic(
        run_figure9, args=(scale,), rounds=1, iterations=1
    )
    record_figure("fig9", figure)
    geomean = figure.by_key("Workload")["geomean"]
    columns = figure.columns

    def of(scheme: str) -> float:
        return geomean[columns.index(f"{scheme} (xHOOP)")]

    # The logging family burns the most energy.
    assert of("opt-redo") > 1.2
    assert of("opt-undo") > 1.15
    # LSM sits in HOOP's neighbourhood, below the logging family
    # (paper: +29.6%; dense streaming writes pull our LSM slightly under).
    assert 0.5 < of("lsm") < of("opt-redo")
