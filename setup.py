"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` on an offline machine that lacks ``wheel`` cannot build
the editable wheel PEP 660 requires; ``python setup.py develop`` (or adding
``src/`` to a ``.pth`` file) achieves the same result with stdlib-only
tooling.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
