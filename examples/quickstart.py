#!/usr/bin/env python3
"""Quickstart: failure-atomic transactions on simulated NVM with HOOP.

Builds a small system, runs a few transactions, power-fails it mid-flight,
recovers, and shows that exactly the committed data survived.

Run:  python examples/quickstart.py
"""

from repro import MemorySystem, SystemConfig


def main() -> None:
    system = MemorySystem(SystemConfig.small(), scheme="hoop")

    # Allocate two persistent records.
    account_a = system.allocate(64)
    account_b = system.allocate(64)

    # A committed transaction: both stores become durable atomically.
    with system.transaction() as tx:
        tx.store_u64(account_a, 100)
        tx.store_u64(account_b, 900)
    print(f"committed transfer state, latency {tx.latency_ns:.0f} ns")

    # Start a second transaction and crash before Tx_end: a transfer that
    # debits one account but never commits.
    doomed = system.transaction()
    doomed.__enter__()
    doomed.store_u64(account_a, 0)  # debit...
    # ... power failure before the matching credit and the commit.
    system.crash()

    report = system.recover(threads=4)
    print(
        f"recovered {report.committed_transactions} committed transactions"
        f" in {report.elapsed_ns / 1e6:.3f} ms (modeled)"
    )

    a = int.from_bytes(system.durable_state(account_a, 8), "little")
    b = int.from_bytes(system.durable_state(account_b, 8), "little")
    print(f"account A = {a}, account B = {b}")
    assert (a, b) == (100, 900), "the torn transfer must not be visible"
    print("atomic durability held: the uncommitted debit vanished")


if __name__ == "__main__":
    main()
