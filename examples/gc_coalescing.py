#!/usr/bin/env python3
"""Inside HOOP's garbage collector: coalescing and wear leveling.

Hammers a small set of hot records (the pattern that makes out-of-place
designs sweat), then shows what the GC actually did: how many bytes the
transactions modified, how few the collector had to write home thanks to
reverse-time coalescing (the paper's Table IV), and how evenly the OOP
blocks aged (the round-robin wear claim of §III-D).

Run:  python examples/gc_coalescing.py [--window N]
"""

import argparse
import random

from repro import MemorySystem, SystemConfig
from repro.stats.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--window",
        type=int,
        nargs="*",
        default=[10, 100, 1000],
        help="transactions between forced GC passes",
    )
    args = parser.parse_args()

    rows = []
    for window in args.window:
        system = MemorySystem(SystemConfig.small(), scheme="hoop")
        controller = system.scheme.controller
        rng = random.Random(99)
        hot = [system.allocate(64) for _ in range(32)]

        for _ in range(window):
            with system.transaction() as tx:
                for _ in range(8):
                    addr = rng.choice(hot) + 8 * rng.randrange(8)
                    tx.store_u64(addr, rng.getrandbits(63))

        report = controller.gc.run(system.now_ns, on_demand=True)
        rows.append(
            [
                window,
                report.bytes_modified,
                report.bytes_migrated,
                report.data_reduction_ratio,
                report.blocks_collected,
            ]
        )

    print(
        format_table(
            [
                "txns/GC",
                "bytes modified",
                "bytes written home",
                "reduction",
                "blocks freed",
            ],
            rows,
        )
    )

    # Wear: the OOP region's blocks should age uniformly (round-robin
    # allocation), so the hottest block is close to the mean.
    system = MemorySystem(SystemConfig.small(), scheme="hoop")
    rng = random.Random(7)
    hot = [system.allocate(64) for _ in range(32)]
    for i in range(3000):
        with system.transaction() as tx:
            for _ in range(8):
                tx.store_u64(
                    rng.choice(hot) + 8 * rng.randrange(8),
                    rng.getrandbits(63),
                )
        if i % 250 == 249:
            system.scheme.controller.gc.run(system.now_ns, on_demand=True)
    wear = system.device.wear
    print(
        f"\nwear: {wear.touched_blocks} wear blocks touched,"
        f" max/mean write spread = {wear.spread():.2f}"
        " (1.0 = perfectly uniform)"
    )


if __name__ == "__main__":
    main()
