#!/usr/bin/env python3
"""Run the YCSB key-value workload under every crash-consistency scheme.

The scenario from the paper's introduction: a key-value store on NVM
needs atomic durability, and the scheme choice decides throughput, commit
latency, and device wear.  This prints the comparison for a scaled-down
YCSB (Zipfian keys, 80% updates).

Run:  python examples/kvstore_ycsb.py [--transactions N] [--threads T]
"""

import argparse

from repro import MemorySystem, SystemConfig
from repro.stats.report import format_table
from repro.workloads import WorkloadDriver, make_workload

SCHEMES = ("native", "hoop", "opt-redo", "opt-undo", "osp", "lsm", "lad")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transactions", type=int, default=600)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--records", type=int, default=1024)
    args = parser.parse_args()

    rows = []
    for scheme in SCHEMES:
        system = MemorySystem(SystemConfig.small(), scheme=scheme)
        workload = make_workload(
            "ycsb", system, seed=11, records=args.records
        )
        driver = WorkloadDriver(system, threads=args.threads, seed=11)
        result = driver.run(workload, args.transactions, warmup=50)
        rows.append(
            [
                scheme,
                result.throughput_tx_per_ms,
                result.mean_latency_ns,
                result.bytes_per_tx,
                result.energy_pj / max(result.transactions, 1) / 1000.0,
            ]
        )

    print(
        format_table(
            ["scheme", "tx/ms", "latency ns", "NVM B/tx", "nJ/tx"], rows
        )
    )
    hoop = next(r for r in rows if r[0] == "hoop")
    redo = next(r for r in rows if r[0] == "opt-redo")
    print(
        f"\nHOOP vs Opt-Redo: {hoop[1] / redo[1]:.2f}x throughput,"
        f" {redo[3] / hoop[3]:.2f}x less write traffic"
    )


if __name__ == "__main__":
    main()
