#!/usr/bin/env python3
"""Record once, replay everywhere: exact cross-scheme comparison.

Records a TPC-C new-order run into a trace, then replays the *identical*
event stream against every persistence scheme — no workload randomness,
no data-structure divergence, just the schemes' own costs.

Run:  python examples/trace_replay.py [--transactions N]
"""

import argparse

from repro import MemorySystem, SystemConfig
from repro.stats.report import format_table
from repro.trace import RecordingSystem, replay
from repro.workloads import WorkloadDriver, make_workload

SCHEMES = ("native", "hoop", "opt-redo", "opt-undo", "osp", "lsm", "lad")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--transactions", type=int, default=200)
    args = parser.parse_args()

    # Record on a native system (no persistence noise in the trace).
    recorder = RecordingSystem(SystemConfig.small(), scheme="native")
    recorder.pause_recording()
    workload = make_workload(
        "tpcc", recorder, seed=42, items=512, customers_per_district=16
    )
    workload.setup(core=0)
    recorder.resume_recording()
    driver = WorkloadDriver(recorder, threads=4, seed=42)
    driver.run(
        workload, args.transactions, setup=False, warmup=0, quiesce=False
    )
    trace = recorder.trace
    print(
        f"recorded {trace.transactions} transactions:"
        f" {trace.stores} stores, {trace.loads} loads"
        f" ({len(trace.dumps()) // 1024} KB as text)\n"
    )

    rows = []
    for scheme in SCHEMES:
        target = MemorySystem(SystemConfig.small(), scheme=scheme)
        result = replay(trace, target)
        rows.append(
            [
                scheme,
                result.throughput_tx_per_ms,
                result.mean_latency_ns,
                result.bytes_written / max(result.transactions, 1),
            ]
        )
    print(format_table(["scheme", "tx/ms", "latency ns", "NVM B/tx"], rows))
    print("\nevery scheme executed the byte-identical event stream")


if __name__ == "__main__":
    main()
