#!/usr/bin/env python3
"""Crash-injection demo: a persistent B-tree survives arbitrary crashes.

Repeatedly inserts into a persistent B-tree, power-fails the machine at
random points, recovers with a varying number of recovery threads, and
checks (a) the B-tree invariants hold on the recovered image and (b) every
committed key is present.  Also prints the thread-scaling of recovery
time — the miniature version of the paper's Fig. 11.

Run:  python examples/crash_recovery_demo.py [--rounds N]
"""

import argparse
import random

from repro import MemorySystem, SystemConfig
from repro.stats.report import format_table
from repro.workloads.structures import PersistentBTree


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--batch", type=int, default=120)
    args = parser.parse_args()

    rng = random.Random(2024)
    system = MemorySystem(SystemConfig.small(), scheme="hoop")
    tree = PersistentBTree(system, t=4)
    committed = {}

    timing_rows = []
    for round_no in range(args.rounds):
        # Insert a batch; each insert is one failure-atomic transaction.
        crash_after = rng.randrange(1, args.batch)
        for i in range(args.batch):
            key = rng.randrange(100_000)
            value = rng.getrandbits(63)
            with system.transaction() as tx:
                tree.insert(tx, key, value)
            committed[key] = value
            if i == crash_after:
                break

        # Pull the plug.
        system.crash()
        threads = 1 << (round_no % 5)
        report = system.recover(threads=threads)
        timing_rows.append(
            [
                round_no,
                threads,
                report.committed_transactions,
                report.elapsed_ns / 1e6,
            ]
        )

        # The recovered tree must be a valid B-tree holding every
        # committed key.
        total = tree.check_invariants()
        assert total >= len(committed) * 0  # structure intact
        with system.transaction() as tx:
            for key, value in committed.items():
                found = tree.search(tx, key)
                assert found == value, (
                    f"round {round_no}: key {key} lost or stale"
                )
        print(
            f"round {round_no}: crash after {crash_after} inserts,"
            f" {len(committed)} committed keys verified,"
            f" recovery({threads} threads) = "
            f"{report.elapsed_ns / 1e6:.3f} ms"
        )

    print()
    print(
        format_table(
            ["round", "threads", "txs replayed", "recovery ms"], timing_rows
        )
    )
    print("\nall committed data survived every crash")


if __name__ == "__main__":
    main()
