"""One set-associative, write-back, LRU cache level (tag store only).

Data is kept by the hierarchy (once per line, at LLC scope); this class
tracks presence, recency, and the per-line flag bits: ``dirty`` and the
``persistent`` bit HOOP adds to mark lines modified inside a transaction
(Section III-G).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.common.config import CacheConfig


@dataclass
class LineFlags:
    """Per-line metadata bits."""

    dirty: bool = False
    persistent: bool = False
    tx_id: int = 0


@dataclass(frozen=True)
class EvictedLine:
    """A line pushed out of a level by an insertion."""

    line_addr: int
    dirty: bool
    persistent: bool
    tx_id: int


class CacheLevel:
    """Tag store for one cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: Dict[int, "OrderedDict[int, LineFlags]"] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.config.line_size) % self.config.num_sets

    def _set_for(self, line_addr: int) -> "OrderedDict[int, LineFlags]":
        index = self._set_index(line_addr)
        bucket = self._sets.get(index)
        if bucket is None:
            bucket = OrderedDict()
            self._sets[index] = bucket
        return bucket

    def lookup(self, line_addr: int, *, touch: bool = True) -> Optional[LineFlags]:
        """Probe for a line; refresh LRU recency when ``touch``."""
        bucket = self._sets.get(self._set_index(line_addr))
        if bucket is None or line_addr not in bucket:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            bucket.move_to_end(line_addr)
        return bucket[line_addr]

    def contains(self, line_addr: int) -> bool:
        """Presence probe with no stats or recency side effects."""
        bucket = self._sets.get(self._set_index(line_addr))
        return bucket is not None and line_addr in bucket

    def insert(self, line_addr: int, flags: Optional[LineFlags] = None) -> Optional[EvictedLine]:
        """Insert (or refresh) a line; returns the LRU victim if one fell out."""
        bucket = self._set_for(line_addr)
        if line_addr in bucket:
            bucket.move_to_end(line_addr)
            if flags is not None:
                bucket[line_addr] = flags
            return None
        victim: Optional[EvictedLine] = None
        if len(bucket) >= self.config.ways:
            victim_addr, victim_flags = bucket.popitem(last=False)
            victim = EvictedLine(
                line_addr=victim_addr,
                dirty=victim_flags.dirty,
                persistent=victim_flags.persistent,
                tx_id=victim_flags.tx_id,
            )
            self.evictions += 1
        bucket[line_addr] = flags if flags is not None else LineFlags()
        return victim

    def invalidate(self, line_addr: int) -> Optional[LineFlags]:
        """Drop a line (inclusive-hierarchy back-invalidation)."""
        bucket = self._sets.get(self._set_index(line_addr))
        if bucket is None:
            return None
        return bucket.pop(line_addr, None)

    def iter_lines(self) -> Iterator[int]:
        """All resident line addresses (test/inspection helper)."""
        for bucket in self._sets.values():
            yield from bucket.keys()

    @property
    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets.values())

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def clear(self) -> None:
        self._sets.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
