"""One set-associative, write-back, LRU cache level (tag store only).

Data is kept by the hierarchy (once per line, at LLC scope); this class
tracks presence, recency, and the per-line flag bits: ``dirty`` and the
``persistent`` bit HOOP adds to mark lines modified inside a transaction
(Section III-G).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.common.config import CacheConfig


@dataclass(slots=True)
class LineFlags:
    """Per-line metadata bits."""

    dirty: bool = False
    persistent: bool = False
    tx_id: int = 0


@dataclass(frozen=True, slots=True)
class EvictedLine:
    """A line pushed out of a level by an insertion."""

    line_addr: int
    dirty: bool
    persistent: bool
    tx_id: int


# Shared placeholder for tag-only residency tracking (L1/L2): those
# levels never read their flag bits, so one immutable-by-convention
# instance serves every line instead of an allocation per insert.
_TAG = LineFlags()


class CacheLevel:
    """Tag store for one cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        # num_sets/ways are derived properties (divisions); snapshot them
        # once — set-index math runs on every cache probe.
        self._line_size = config.line_size
        self._num_sets = config.num_sets
        self._ways = config.ways
        # Every set bucket is preallocated so probes index straight into
        # the dict — no .get()/None branch on the hottest lookups.
        self._sets: Dict[int, "OrderedDict[int, LineFlags]"] = {
            index: OrderedDict() for index in range(self._num_sets)
        }
        # Power-of-two geometry (every preset) turns the set-index
        # division/modulo into a shift-and-mask.
        if (
            self._line_size & (self._line_size - 1) == 0
            and self._num_sets & (self._num_sets - 1) == 0
        ):
            self._shift = self._line_size.bit_length() - 1
            self._set_mask = self._num_sets - 1
        else:
            self._shift = -1
            self._set_mask = -1
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Sticky marker: did insert() ever store a real LineFlags (vs
        # the shared _TAG)?  Tag-only levels (L1/L2) clone by pure
        # C-level bucket copies with no per-line fixups.
        self._has_flags = False

    def _set_index(self, line_addr: int) -> int:
        if self._set_mask >= 0:
            return (line_addr >> self._shift) & self._set_mask
        return (line_addr // self._line_size) % self._num_sets

    def _set_for(self, line_addr: int) -> "OrderedDict[int, LineFlags]":
        return self._sets[self._set_index(line_addr)]

    def lookup(self, line_addr: int, *, touch: bool = True) -> Optional[LineFlags]:
        """Probe for a line; refresh LRU recency when ``touch``."""
        mask = self._set_mask
        if mask >= 0:
            index = (line_addr >> self._shift) & mask
        else:
            index = (line_addr // self._line_size) % self._num_sets
        bucket = self._sets[index]
        flags = bucket.get(line_addr)
        if flags is None:
            self.misses += 1
            return None
        self.hits += 1
        if touch:
            bucket.move_to_end(line_addr)
        return flags

    def probe(self, line_addr: int) -> bool:
        """Hot-path hit test: like ``lookup`` but returns a plain bool.

        Same stats and LRU-recency side effects; skips returning the flag
        object (which tag-only levels never read anyway).
        """
        mask = self._set_mask
        if mask >= 0:
            index = (line_addr >> self._shift) & mask
        else:
            index = (line_addr // self._line_size) % self._num_sets
        bucket = self._sets[index]
        if line_addr in bucket:
            self.hits += 1
            bucket.move_to_end(line_addr)
            return True
        self.misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        """Presence probe with no stats or recency side effects."""
        return line_addr in self._sets[self._set_index(line_addr)]

    def insert(self, line_addr: int, flags: Optional[LineFlags] = None) -> Optional[EvictedLine]:
        """Insert (or refresh) a line; returns the LRU victim if one fell out."""
        mask = self._set_mask
        if mask >= 0:
            index = (line_addr >> self._shift) & mask
        else:
            index = (line_addr // self._line_size) % self._num_sets
        self._has_flags = True
        bucket = self._sets[index]
        if line_addr in bucket:
            bucket.move_to_end(line_addr)
            if flags is not None:
                bucket[line_addr] = flags
            return None
        victim: Optional[EvictedLine] = None
        if len(bucket) >= self._ways:
            victim_addr, victim_flags = bucket.popitem(last=False)
            victim = EvictedLine(
                line_addr=victim_addr,
                dirty=victim_flags.dirty,
                persistent=victim_flags.persistent,
                tx_id=victim_flags.tx_id,
            )
            self.evictions += 1
        bucket[line_addr] = flags if flags is not None else LineFlags()
        return victim

    def tag_insert(self, line_addr: int) -> None:
        """Presence/recency-only insert for tag stores (L1/L2).

        Identical residency behavior to :meth:`insert` with no flags, but
        never materializes an :class:`EvictedLine` (inclusive hierarchies
        ignore L1/L2 victims) and shares one flag object across lines.
        """
        mask = self._set_mask
        if mask >= 0:
            index = (line_addr >> self._shift) & mask
        else:
            index = (line_addr // self._line_size) % self._num_sets
        bucket = self._sets[index]
        if line_addr in bucket:
            bucket.move_to_end(line_addr)
            return
        if len(bucket) >= self._ways:
            bucket.popitem(last=False)
            self.evictions += 1
        bucket[line_addr] = _TAG

    def invalidate(self, line_addr: int) -> Optional[LineFlags]:
        """Drop a line (inclusive-hierarchy back-invalidation)."""
        mask = self._set_mask
        if mask >= 0:
            index = (line_addr >> self._shift) & mask
        else:
            index = (line_addr // self._line_size) % self._num_sets
        return self._sets[index].pop(line_addr, None)

    def iter_lines(self) -> Iterator[int]:
        """All resident line addresses (test/inspection helper)."""
        for bucket in self._sets.values():
            yield from bucket.keys()

    @property
    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets.values())

    @property
    def miss_ratio(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def clear(self) -> None:
        for bucket in self._sets.values():
            bucket.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- snapshots -------------------------------------------------------------

    def __snapshot_clone__(self, memo: dict, clone) -> "CacheLevel":
        """Hand-rolled clone for :mod:`repro.snapshot`.

        The tag store is hundreds of small OrderedDict buckets whose
        values are either the shared ``_TAG`` marker or 3-field
        LineFlags records; rebuilding them inline (with memo entries so
        the hierarchy's flag index keeps aliasing the same LineFlags
        clones) is several times cheaper than generic engine dispatch
        per bucket and per flags object.
        """
        cls = self.__class__
        out = cls.__new__(cls)
        memo[id(self)] = out
        out.__dict__.update(self.__dict__)
        # C-level copies (shares values, keeps LRU order); tag-only
        # levels (never saw a real LineFlags) are done right there.
        new_sets = {
            index: bucket.copy() for index, bucket in self._sets.items()
        }
        out._sets = new_sets
        if self._has_flags:
            # Swap real flag records for their memoized twins so the
            # hierarchy's flag index keeps aliasing the same clones.
            for fresh in new_sets.values():
                for addr, flags in fresh.items():
                    if flags is not _TAG:
                        twin = memo.get(id(flags))
                        if twin is None:
                            twin = LineFlags(
                                flags.dirty, flags.persistent, flags.tx_id
                            )
                            memo[id(flags)] = twin
                        fresh[addr] = twin
        return out


# -- snapshot declarations ----------------------------------------------------
# LineFlags fields are scalars; the memo makes every bucket that shares a
# flags object (LLC set + hierarchy flag index, or the _TAG presence
# marker) share the single clone, preserving aliasing.  CacheLevel
# itself clones through __snapshot_clone__ above.
LineFlags.__snapshot_state__ = "__atoms__"
EvictedLine.__snapshot_state__ = "__shared__"
CacheLevel.__snapshot_state__ = "__all__"
