"""Cache hierarchy substrate.

A functional set-associative write-back hierarchy (per-core L1/L2, shared
inclusive LLC) that models what the persistence schemes actually need:

* hit level (for load/store latency),
* dirty evictions with real line data (delivered to the active scheme),
* the per-line **persistent bit** HOOP adds to every cache line (§III-G),
* total loss of contents on :meth:`CacheHierarchy.crash`.

Line *data* is stored once, alongside the inclusive LLC; L1/L2 track
presence for latency.  That keeps a single authoritative volatile copy per
line, which is exactly the property crash tests need.
"""

from repro.memhier.cache import CacheLevel, EvictedLine
from repro.memhier.hierarchy import AccessOutcome, CacheHierarchy

__all__ = ["CacheLevel", "EvictedLine", "CacheHierarchy", "AccessOutcome"]
