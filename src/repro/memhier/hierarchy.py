"""The three-level cache hierarchy (per-core L1/L2, shared inclusive LLC).

Design notes
------------

* **Single data copy.**  Line bytes live in one dict scoped to LLC
  residency.  L1/L2 are presence/recency tag stores used only for latency;
  dirty/persistent flags are kept on the LLC entry.  This collapses the
  coherence problem (the paper relies on conventional coherence and so do
  we) while preserving the two facts schemes care about: *which* lines are
  volatile, and *what bytes* leave the hierarchy on an eviction.

* **Inclusive LLC.**  An LLC eviction back-invalidates every core's L1/L2,
  matching the inclusive configuration in Table II.

* **Fill/evict delegation.**  On an LLC miss the active persistence scheme
  supplies the line (home region, OOP region, log, or shadow copy — that is
  the scheme's whole point); on a dirty eviction the scheme decides where
  the bytes go.  The hierarchy never touches NVM itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.common.addr import CACHE_LINE_BYTES, cache_line_base
from repro.common.config import SystemConfig
from repro.common.errors import AddressError
from repro.memhier.cache import CacheLevel, LineFlags

# fill_handler(line_addr, now_ns) -> (line_bytes, extra_latency_ns)
FillHandler = Callable[[int, float], Tuple[bytes, float]]
# evict_handler(line_addr, data, dirty, persistent, tx_id, now_ns) -> None
EvictHandler = Callable[[int, bytes, bool, bool, int, float], None]


@dataclass(frozen=True)
class AccessOutcome:
    """Where an access hit and what it cost."""

    hit_level: str  # "L1", "L2", "LLC", or "MEM"
    latency_ns: float

    @property
    def llc_miss(self) -> bool:
        return self.hit_level == "MEM"


@dataclass
class HierarchyStats:
    loads: int = 0
    stores: int = 0
    llc_misses: int = 0
    llc_accesses: int = 0
    dirty_evictions: int = 0

    @property
    def llc_miss_ratio(self) -> float:
        if not self.llc_accesses:
            return 0.0
        return self.llc_misses / self.llc_accesses


class CacheHierarchy:
    """Per-core L1/L2 over a shared, inclusive LLC."""

    def __init__(
        self,
        config: SystemConfig,
        fill_handler: FillHandler,
        evict_handler: EvictHandler,
    ) -> None:
        self.config = config
        self._fill = fill_handler
        self._evict = evict_handler
        self._l1 = [CacheLevel(config.l1) for _ in range(config.num_cores)]
        self._l2 = [CacheLevel(config.l2) for _ in range(config.num_cores)]
        self._llc = CacheLevel(config.llc)
        self._data: Dict[int, bytearray] = {}
        self.stats = HierarchyStats()

    # -- internals -----------------------------------------------------------

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.config.num_cores:
            raise AddressError(f"core {core} out of range")

    def _back_invalidate(self, line_addr: int) -> None:
        for level in self._l1:
            level.invalidate(line_addr)
        for level in self._l2:
            level.invalidate(line_addr)

    def _evict_victim(self, victim, now_ns: float) -> None:
        data = self._data.pop(victim.line_addr, None)
        self._back_invalidate(victim.line_addr)
        if data is None:
            return
        if victim.dirty:
            self.stats.dirty_evictions += 1
        self._evict(
            victim.line_addr,
            bytes(data),
            victim.dirty,
            victim.persistent,
            victim.tx_id,
            now_ns,
        )

    def _ensure_resident(
        self, core: int, line_addr: int, now_ns: float
    ) -> Tuple[str, float]:
        """Bring a line into L1/L2/LLC; returns (hit level, latency)."""
        cfg = self.config
        latency = cfg.l1.latency_ns
        if self._l1[core].lookup(line_addr) is not None:
            return "L1", latency
        latency += cfg.l2.latency_ns
        if self._l2[core].lookup(line_addr) is not None:
            self._l1[core].insert(line_addr)
            return "L2", latency
        latency += cfg.llc.latency_ns
        self.stats.llc_accesses += 1
        if self._llc.lookup(line_addr) is not None:
            self._l2[core].insert(line_addr)
            self._l1[core].insert(line_addr)
            return "LLC", latency
        # LLC miss: the scheme supplies the line.
        self.stats.llc_misses += 1
        data, extra = self._fill(line_addr, now_ns)
        if len(data) != CACHE_LINE_BYTES:
            raise AddressError(
                f"fill handler returned {len(data)} bytes for a line"
            )
        victim = self._llc.insert(line_addr, LineFlags())
        if victim is not None:
            self._evict_victim(victim, now_ns)
        self._data[line_addr] = bytearray(data)
        self._l2[core].insert(line_addr)
        self._l1[core].insert(line_addr)
        return "MEM", latency + extra

    # -- public API ------------------------------------------------------------

    def load(
        self, core: int, addr: int, size: int, now_ns: float = 0.0
    ) -> Tuple[bytes, AccessOutcome]:
        """Read ``size`` bytes within one cache line."""
        self._check_core(core)
        line = cache_line_base(addr)
        if cache_line_base(addr + size - 1) != line:
            raise AddressError("load must not cross a cache-line boundary")
        self.stats.loads += 1
        level, latency = self._ensure_resident(core, line, now_ns)
        offset = addr - line
        data = bytes(self._data[line][offset : offset + size])
        return data, AccessOutcome(level, latency)

    def store(
        self,
        core: int,
        addr: int,
        data: bytes,
        now_ns: float = 0.0,
        *,
        persistent: bool = False,
        tx_id: int = 0,
    ) -> AccessOutcome:
        """Write bytes within one cache line (write-allocate)."""
        self._check_core(core)
        if not data:
            raise AddressError("empty store")
        line = cache_line_base(addr)
        if cache_line_base(addr + len(data) - 1) != line:
            raise AddressError("store must not cross a cache-line boundary")
        self.stats.stores += 1
        level, latency = self._ensure_resident(core, line, now_ns)
        offset = addr - line
        self._data[line][offset : offset + len(data)] = data
        flags = self._llc.lookup(line, touch=False)
        assert flags is not None, "line must be LLC-resident after fill"
        flags.dirty = True
        if persistent:
            flags.persistent = True
            flags.tx_id = tx_id
        return AccessOutcome(level, latency)

    def peek_line(self, line_addr: int) -> Optional[bytes]:
        """Current cached bytes of a line, or None if not resident."""
        data = self._data.get(cache_line_base(line_addr))
        return bytes(data) if data is not None else None

    def is_resident(self, line_addr: int) -> bool:
        return cache_line_base(line_addr) in self._data

    def line_flags(self, line_addr: int) -> Optional[LineFlags]:
        return self._llc.lookup(cache_line_base(line_addr), touch=False)

    def writeback_line(self, line_addr: int, now_ns: float = 0.0) -> bool:
        """clwb-style: push a dirty line to the scheme, keep it cached clean.

        Returns True when a writeback actually happened.
        """
        line = cache_line_base(line_addr)
        flags = self._llc.lookup(line, touch=False)
        if flags is None or not flags.dirty:
            return False
        self._evict(
            line,
            bytes(self._data[line]),
            True,
            flags.persistent,
            flags.tx_id,
            now_ns,
        )
        flags.dirty = False
        return True

    def flush_line(self, line_addr: int, now_ns: float = 0.0) -> bool:
        """clflush-style: write back if dirty, then invalidate everywhere."""
        line = cache_line_base(line_addr)
        flags = self._llc.invalidate(line)
        data = self._data.pop(line, None)
        self._back_invalidate(line)
        if flags is None or data is None:
            return False
        if flags.dirty:
            self._evict(
                line, bytes(data), True, flags.persistent, flags.tx_id, now_ns
            )
        return flags.dirty

    def dirty_lines(self) -> List[Tuple[int, bytes, LineFlags]]:
        """All dirty resident lines (inspection / commit-drain helper)."""
        out = []
        for line in list(self._data.keys()):
            flags = self._llc.lookup(line, touch=False)
            if flags is not None and flags.dirty:
                out.append((line, bytes(self._data[line]), flags))
        return out

    def crash(self) -> None:
        """Power failure: every volatile line vanishes."""
        self._data.clear()
        self._llc.clear()
        for level in self._l1:
            level.clear()
        for level in self._l2:
            level.clear()

    @property
    def llc(self) -> CacheLevel:
        return self._llc

    def reset_stats(self) -> None:
        self.stats = HierarchyStats()
        self._llc.reset_stats()
        for level in self._l1:
            level.reset_stats()
        for level in self._l2:
            level.reset_stats()
