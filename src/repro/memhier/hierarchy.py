"""The three-level cache hierarchy (per-core L1/L2, shared inclusive LLC).

Design notes
------------

* **Single data copy.**  Line bytes live in one dict scoped to LLC
  residency.  L1/L2 are presence/recency tag stores used only for latency;
  dirty/persistent flags are kept on the LLC entry.  This collapses the
  coherence problem (the paper relies on conventional coherence and so do
  we) while preserving the two facts schemes care about: *which* lines are
  volatile, and *what bytes* leave the hierarchy on an eviction.

* **Inclusive LLC.**  An LLC eviction back-invalidates every core's L1/L2,
  matching the inclusive configuration in Table II.

* **Fill/evict delegation.**  On an LLC miss the active persistence scheme
  supplies the line (home region, OOP region, log, or shadow copy — that is
  the scheme's whole point); on a dirty eviction the scheme decides where
  the bytes go.  The hierarchy never touches NVM itself.

* **Hot-path layout.**  ``load``/``store`` are the innermost functions of
  every simulation, so the common case (an L1 hit) is kept free of LLC
  probes: per-line flags are mirrored in a flat dict (``_flags``) whose
  lifetime exactly matches ``_data`` (LLC residency), and the per-level
  latencies are cached as plain floats at construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.common.addr import CACHE_LINE_BYTES
from repro.common.config import SystemConfig
from repro.common.errors import AddressError
from repro.memhier.cache import _TAG, CacheLevel, LineFlags

# fill_handler(line_addr, now_ns) -> (line_bytes, extra_latency_ns)
FillHandler = Callable[[int, float], Tuple[bytes, float]]
# evict_handler(line_addr, data, dirty, persistent, tx_id, now_ns) -> None
EvictHandler = Callable[[int, bytes, bool, bool, int, float], None]

_LINE_MASK = ~(CACHE_LINE_BYTES - 1)


class AccessOutcome(NamedTuple):
    """Where an access hit and what it cost."""

    hit_level: str  # "L1", "L2", "LLC", or "MEM"
    latency_ns: float

    @property
    def llc_miss(self) -> bool:
        return self.hit_level == "MEM"


@dataclass
class HierarchyStats:
    loads: int = 0
    stores: int = 0
    llc_misses: int = 0
    llc_accesses: int = 0
    dirty_evictions: int = 0

    @property
    def llc_miss_ratio(self) -> float:
        if not self.llc_accesses:
            return 0.0
        return self.llc_misses / self.llc_accesses


class CacheHierarchy:
    """Per-core L1/L2 over a shared, inclusive LLC."""

    def __init__(
        self,
        config: SystemConfig,
        fill_handler: FillHandler,
        evict_handler: EvictHandler,
    ) -> None:
        self.config = config
        self._fill = fill_handler
        self._evict = evict_handler
        self._l1 = [CacheLevel(config.l1) for _ in range(config.num_cores)]
        self._l2 = [CacheLevel(config.l2) for _ in range(config.num_cores)]
        # Back-invalidation sweeps every private level; one flat list
        # halves the loop bookkeeping on each LLC eviction.
        self._private_levels = self._l1 + self._l2
        self._llc = CacheLevel(config.llc)
        self._data: Dict[int, bytearray] = {}
        # Line buffers shared copy-on-write with snapshots: a member is
        # a line whose bytearray is aliased by at least one snapshot and
        # must be copied before the next in-place store.  Empty except
        # between a snapshot capture and the first store to the line.
        self._data_cow: set = set()
        # Flags mirror: same keys as _data, pointing at the LineFlags
        # objects stored in the LLC tag array.  Lets load/store reach a
        # line's flags by one dict probe instead of a set-associative
        # LLC lookup.
        self._flags: Dict[int, LineFlags] = {}
        # Per-level latencies as plain floats (dataclass attribute chains
        # are measurable on the hot path).
        self._l1_latency = config.l1.latency_ns
        self._l2_latency = config.l2.latency_ns
        self._llc_latency = config.llc.latency_ns
        self._num_cores = config.num_cores
        # Hit latencies never vary, so the three hit outcomes are shared
        # immutable singletons; only MEM outcomes (fill latency varies)
        # are built per miss.
        self._out_l1 = AccessOutcome("L1", self._l1_latency)
        self._out_l2 = AccessOutcome("L2", self._l1_latency + self._l2_latency)
        self._out_llc = AccessOutcome(
            "LLC", self._l1_latency + self._l2_latency + self._llc_latency
        )
        self.stats = HierarchyStats()

    # -- internals -----------------------------------------------------------

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.config.num_cores:
            raise AddressError(f"core {core} out of range")

    def _back_invalidate(self, line_addr: int) -> None:
        # CacheLevel.invalidate inlined (same set-index math, result
        # unused): this sweep runs per LLC eviction across 2*num_cores
        # tag stores.
        for level in self._private_levels:
            mask = level._set_mask
            if mask >= 0:
                index = (line_addr >> level._shift) & mask
            else:
                index = (line_addr // level._line_size) % level._num_sets
            level._sets[index].pop(line_addr, None)

    def _evict_victim(self, victim, now_ns: float) -> None:
        self._evict_victim_fields(
            victim.line_addr,
            victim.dirty,
            victim.persistent,
            victim.tx_id,
            now_ns,
        )

    def _evict_victim_fields(
        self,
        line_addr: int,
        dirty: bool,
        persistent: bool,
        tx_id: int,
        now_ns: float,
    ) -> None:
        # Same behavior as _evict_victim without requiring an EvictedLine
        # (the LLC-miss fill path passes the victim's fields directly).
        data = self._data.pop(line_addr, None)
        self._flags.pop(line_addr, None)
        self._back_invalidate(line_addr)
        if data is None:
            return
        if dirty:
            self.stats.dirty_evictions += 1
        self._evict(
            line_addr,
            bytes(data),
            dirty,
            persistent,
            tx_id,
            now_ns,
        )

    def _ensure_resident(
        self, core: int, line_addr: int, now_ns: float
    ) -> Tuple[str, float]:
        """Bring a line into L1/L2/LLC; returns (hit level, latency)."""
        if self._l1[core].probe(line_addr):
            return "L1", self._l1_latency
        outcome = self._miss_resident(core, line_addr, now_ns)
        return outcome.hit_level, outcome.latency_ns

    def _miss_resident(
        self, core: int, line_addr: int, now_ns: float
    ) -> AccessOutcome:
        """L1-missed path of residency: probe L2/LLC, fill on LLC miss.

        The L2/LLC probes are inlined from :meth:`CacheLevel.probe`
        (identical stats/LRU side effects) — this path runs on every L1
        miss and the probe-call overhead is measurable.
        """
        l1 = self._l1[core]
        l2 = self._l2[core]
        mask = l2._set_mask
        if mask >= 0:
            l2_index = (line_addr >> l2._shift) & mask
        else:
            l2_index = (line_addr // l2._line_size) % l2._num_sets
        l2_bucket = l2._sets[l2_index]
        if line_addr in l2_bucket:
            l2.hits += 1
            l2_bucket.move_to_end(line_addr)
            # CacheLevel.tag_insert inlined for the L1 refill (and below
            # for L2): this runs on every L1 miss.
            mask = l1._set_mask
            if mask >= 0:
                index = (line_addr >> l1._shift) & mask
            else:
                index = (line_addr // l1._line_size) % l1._num_sets
            bucket = l1._sets[index]
            if line_addr in bucket:
                bucket.move_to_end(line_addr)
            else:
                if len(bucket) >= l1._ways:
                    bucket.popitem(last=False)
                    l1.evictions += 1
                bucket[line_addr] = _TAG
            return self._out_l2
        l2.misses += 1
        stats = self.stats
        stats.llc_accesses += 1
        llc = self._llc
        mask = llc._set_mask
        if mask >= 0:
            index = (line_addr >> llc._shift) & mask
        else:
            index = (line_addr // llc._line_size) % llc._num_sets
        bucket = llc._sets[index]
        if line_addr in bucket:
            llc.hits += 1
            bucket.move_to_end(line_addr)
            if len(l2_bucket) >= l2._ways:
                l2_bucket.popitem(last=False)
                l2.evictions += 1
            l2_bucket[line_addr] = _TAG
            mask = l1._set_mask
            if mask >= 0:
                index = (line_addr >> l1._shift) & mask
            else:
                index = (line_addr // l1._line_size) % l1._num_sets
            bucket = l1._sets[index]
            if line_addr in bucket:
                bucket.move_to_end(line_addr)
            else:
                if len(bucket) >= l1._ways:
                    bucket.popitem(last=False)
                    l1.evictions += 1
                bucket[line_addr] = _TAG
            return self._out_llc
        llc.misses += 1
        # LLC miss: the scheme supplies the line.
        stats.llc_misses += 1
        data, extra = self._fill(line_addr, now_ns)
        if len(data) != CACHE_LINE_BYTES:
            raise AddressError(
                f"fill handler returned {len(data)} bytes for a line"
            )
        flags = LineFlags()
        # CacheLevel.insert inlined: the line just missed the LLC probe
        # above, so only the victim/insert arm can run.
        if len(bucket) >= llc._ways:
            victim_addr, victim_flags = bucket.popitem(last=False)
            llc.evictions += 1
            bucket[line_addr] = flags
            self._evict_victim_fields(
                victim_addr,
                victim_flags.dirty,
                victim_flags.persistent,
                victim_flags.tx_id,
                now_ns,
            )
        else:
            bucket[line_addr] = flags
        self._data[line_addr] = bytearray(data)
        self._flags[line_addr] = flags
        # tag_insert inlined for L2/L1 refill; eviction above can only
        # have removed the *victim's* line from these buckets, so the
        # missing-line arm still holds for line_addr.
        if len(l2_bucket) >= l2._ways:
            l2_bucket.popitem(last=False)
            l2.evictions += 1
        l2_bucket[line_addr] = _TAG
        mask = l1._set_mask
        if mask >= 0:
            index = (line_addr >> l1._shift) & mask
        else:
            index = (line_addr // l1._line_size) % l1._num_sets
        l1_bucket = l1._sets[index]
        if len(l1_bucket) >= l1._ways:
            l1_bucket.popitem(last=False)
            l1.evictions += 1
        l1_bucket[line_addr] = _TAG
        return AccessOutcome("MEM", self._out_llc.latency_ns + extra)

    # -- public API ------------------------------------------------------------

    def load(
        self, core: int, addr: int, size: int, now_ns: float = 0.0
    ) -> Tuple[bytes, AccessOutcome]:
        """Read ``size`` bytes within one cache line."""
        if not 0 <= core < self._num_cores:
            raise AddressError(f"core {core} out of range")
        line = addr & _LINE_MASK
        if (addr + size - 1) & _LINE_MASK != line:
            raise AddressError("load must not cross a cache-line boundary")
        self.stats.loads += 1
        if self._l1[core].probe(line):
            outcome = self._out_l1
        else:
            outcome = self._miss_resident(core, line, now_ns)
        offset = addr - line
        data = bytes(self._data[line][offset : offset + size])
        return data, outcome

    def load_u64(
        self, core: int, addr: int, now_ns: float = 0.0
    ) -> Tuple[int, float]:
        """Aligned 8-byte read; returns ``(value, latency_ns)``.

        Equivalent to :meth:`load` for an 8-aligned address (which can
        never cross a line) but skips bytes materialization and outcome
        construction — this is the pointer-chase innermost call of every
        tree/list workload.
        """
        if not 0 <= core < self._num_cores:
            raise AddressError(f"core {core} out of range")
        line = addr & _LINE_MASK
        self.stats.loads += 1
        if self._l1[core].probe(line):
            latency = self._l1_latency
        else:
            latency = self._miss_resident(core, line, now_ns).latency_ns
        offset = addr - line
        data = self._data[line]
        return int.from_bytes(data[offset : offset + 8], "little"), latency

    def store(
        self,
        core: int,
        addr: int,
        data: bytes,
        now_ns: float = 0.0,
        *,
        persistent: bool = False,
        tx_id: int = 0,
    ) -> AccessOutcome:
        """Write bytes within one cache line (write-allocate)."""
        if not 0 <= core < self._num_cores:
            raise AddressError(f"core {core} out of range")
        if not data:
            raise AddressError("empty store")
        line = addr & _LINE_MASK
        if (addr + len(data) - 1) & _LINE_MASK != line:
            raise AddressError("store must not cross a cache-line boundary")
        self.stats.stores += 1
        if self._l1[core].probe(line):
            outcome = self._out_l1
        else:
            outcome = self._miss_resident(core, line, now_ns)
        offset = addr - line
        cow = self._data_cow
        if cow and line in cow:
            # Line buffer is aliased by a snapshot: copy before writing.
            self._data[line] = bytearray(self._data[line])
            cow.discard(line)
        self._data[line][offset : offset + len(data)] = data
        # The flags mirror shares keys with _data, so the line is always
        # present after residency is ensured.
        flags = self._flags[line]
        flags.dirty = True
        if persistent:
            flags.persistent = True
            flags.tx_id = tx_id
        return outcome

    def peek_line(self, line_addr: int) -> Optional[bytes]:
        """Current cached bytes of a line, or None if not resident."""
        data = self._data.get(line_addr & _LINE_MASK)
        return bytes(data) if data is not None else None

    def is_resident(self, line_addr: int) -> bool:
        return line_addr & _LINE_MASK in self._data

    def line_flags(self, line_addr: int) -> Optional[LineFlags]:
        return self._flags.get(line_addr & _LINE_MASK)

    def writeback_line(self, line_addr: int, now_ns: float = 0.0) -> bool:
        """clwb-style: push a dirty line to the scheme, keep it cached clean.

        Returns True when a writeback actually happened.
        """
        line = line_addr & _LINE_MASK
        flags = self._flags.get(line)
        if flags is None or not flags.dirty:
            return False
        self._evict(
            line,
            bytes(self._data[line]),
            True,
            flags.persistent,
            flags.tx_id,
            now_ns,
        )
        flags.dirty = False
        return True

    def flush_line(self, line_addr: int, now_ns: float = 0.0) -> bool:
        """clflush-style: write back if dirty, then invalidate everywhere."""
        line = line_addr & _LINE_MASK
        flags = self._llc.invalidate(line)
        self._flags.pop(line, None)
        data = self._data.pop(line, None)
        self._back_invalidate(line)
        if flags is None or data is None:
            return False
        if flags.dirty:
            self._evict(
                line, bytes(data), True, flags.persistent, flags.tx_id, now_ns
            )
        return flags.dirty

    def dirty_lines(self) -> List[Tuple[int, bytes, LineFlags]]:
        """All dirty resident lines (inspection / commit-drain helper)."""
        out = []
        flags_map = self._flags
        for line, data in self._data.items():
            flags = flags_map.get(line)
            if flags is not None and flags.dirty:
                out.append((line, bytes(data), flags))
        return out

    def crash(self) -> None:
        """Power failure: every volatile line vanishes."""
        self._data.clear()
        self._data_cow.clear()
        self._flags.clear()
        self._llc.clear()
        for level in self._l1:
            level.clear()
        for level in self._l2:
            level.clear()

    @property
    def llc(self) -> CacheLevel:
        return self._llc

    def reset_stats(self) -> None:
        self.stats = HierarchyStats()
        self._llc.reset_stats()
        for level in self._l1:
            level.reset_stats()
        for level in self._l2:
            level.reset_stats()

    # -- snapshots -------------------------------------------------------------

    def __snapshot_clone__(self, memo: dict, clone) -> "CacheHierarchy":
        """Clone with copy-on-write line buffers.

        Every other attribute goes through the engine, but ``_data`` —
        one 64-byte bytearray per resident LLC line, the bulk of the
        hierarchy's mutable bytes — is shared: both sides mark every
        line in their ``_data_cow`` set and :meth:`store` copies a
        buffer on the first in-place write.  Rebinding sites (LLC fill,
        invalidation pops) never mutate a shared buffer, so they need
        no guard.
        """
        cls = self.__class__
        out = cls.__new__(cls)
        memo[id(self)] = out
        nd = out.__dict__
        for key, value in self.__dict__.items():
            if key == "_data":
                shared = dict(value)
                memo[id(value)] = shared
                nd[key] = shared
            elif key == "_data_cow":
                continue  # each side gets its own set, below
            else:
                nd[key] = clone(value)
        self._data_cow.update(self._data.keys())
        out._data_cow = set(self._data.keys())
        return out


# -- snapshot declarations ----------------------------------------------------
HierarchyStats.__snapshot_state__ = "__atoms__"
CacheHierarchy.__snapshot_state__ = "__all__"
AccessOutcome.__snapshot_state__ = "__atom__"
