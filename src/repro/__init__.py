"""HOOP reproduction: hardware-assisted out-of-place update for NVM.

A full-system, trace-driven functional + timing simulator reproducing
*HOOP: Efficient Hardware-Assisted Out-of-Place Update for Non-Volatile
Memory* (ISCA 2020): the HOOP memory-controller indirection layer, five
baseline crash-consistency schemes, the paper's workloads, and a harness
that regenerates every figure and table in the evaluation.

Quickstart::

    from repro import MemorySystem, SystemConfig

    system = MemorySystem(SystemConfig.small(), scheme="hoop")
    addr = system.allocate(64)
    with system.transaction() as tx:
        tx.store(addr, b"hello, persistent world!".ljust(64, b"\\0"))
    system.crash()
    system.recover(threads=4)
    assert system.durable_state(addr, 5) == b"hello"
"""

from repro.common.config import (
    CacheConfig,
    EnergyConfig,
    FaultConfig,
    GCConfig,
    HoopConfig,
    NVMConfig,
    SystemConfig,
)
from repro.txn.system import MemorySystem
from repro.txn.transaction import Transaction

__version__ = "1.0.0"

__all__ = [
    "MemorySystem",
    "Transaction",
    "SystemConfig",
    "CacheConfig",
    "NVMConfig",
    "EnergyConfig",
    "FaultConfig",
    "GCConfig",
    "HoopConfig",
    "__version__",
]
