"""Zipfian key-popularity generator (YCSB's request distribution).

Implements the Gray et al. rejection-free inverse-CDF approximation used
by the original YCSB client ("ScrambledZipfianGenerator" minus the
scrambling, which callers add by hashing).  The paper's YCSB runs follow
the Zipfian distribution [11]; theta defaults to YCSB's 0.99.
"""

from __future__ import annotations

import math
import random
from typing import Optional


class ZipfianGenerator:
    """Draws integers in ``[0, n)`` with Zipfian popularity skew."""

    def __init__(
        self,
        n: int,
        theta: float = 0.99,
        *,
        rng: Optional[random.Random] = None,
    ) -> None:
        if n <= 0:
            raise ValueError("population must be positive")
        if not 0.0 < theta < 1.0:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self.rng = rng or random.Random()
        self._alpha = 1.0 / (1.0 - theta)
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(2, theta)
        denominator = 1.0 - self._zeta2 / self._zetan
        # n <= 2 degenerates Gray et al.'s eta to 0/0; next() resolves
        # every draw in its first two branches there (u*zeta(n) never
        # exceeds 1 + 0.5**theta == zeta(2)), so eta is unreachable and
        # any finite value is correct.
        self._eta = (
            (1.0 - (2.0 / n) ** (1.0 - theta)) / denominator
            if denominator
            else 0.0
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        # Exact for small n; integral approximation keeps big populations
        # O(1) (the error is far below anything the experiments resolve).
        if n <= 10_000:
            return sum(1.0 / (i**theta) for i in range(1, n + 1))
        head = sum(1.0 / (i**theta) for i in range(1, 10_001))
        tail = (n ** (1.0 - theta) - 10_000 ** (1.0 - theta)) / (1.0 - theta)
        return head + tail

    def next(self) -> int:
        """Draw one rank (0 = most popular)."""
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)

    def next_scrambled(self, salt: int = 0x9E3779B97F4A7C15) -> int:
        """Rank hashed across the keyspace (hot keys spread out)."""
        rank = self.next()
        x = (rank + 1) * salt
        x ^= x >> 31
        x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 27
        return x % self.n

    def expected_top_fraction(self, k: int) -> float:
        """Analytic probability mass of the ``k`` most popular keys."""
        return self._zeta(min(k, self.n), self.theta) / self._zetan
