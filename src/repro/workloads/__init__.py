"""The paper's workloads (Table III).

Synthetic microbenchmarks — five persistent data structures implemented
against the transactional API, matching the paper's stores/transaction —
plus the two real-world workloads: YCSB and TPC-C new-order over an
N-Store-style tuple storage engine.

========  =======================  ===========  ===========
Workload  Structure                Stores/TX    Write/Read
========  =======================  ===========  ===========
vector    flat slot array           8            100%/0%
hashmap   chained hash table        8            100%/0%
queue     linked FIFO               4            100%/0%
rbtree    red-black tree            2–10         100%/0%
btree     B-tree                    2–12         100%/0%
ycsb      N-Store KV table          8–32         80%/20%
tpcc      N-Store new-order         10–35        40%/60%
========  =======================  ===========  ===========
"""

from repro.workloads.driver import (
    RunResult,
    WorkloadDriver,
    make_workload,
    WORKLOAD_NAMES,
)
from repro.workloads.zipfian import ZipfianGenerator

__all__ = [
    "WorkloadDriver",
    "RunResult",
    "make_workload",
    "WORKLOAD_NAMES",
    "ZipfianGenerator",
]
