"""Multi-threaded workload driver and the Table III workload registry.

Threads are simulated cores with independent clocks.  The driver always
runs the thread whose clock is furthest behind (min-clock scheduling), so
shared-resource state — above all the NVM channel's busy horizon — is
updated in nearly nondecreasing time order across threads, the standard
conservative approach for this kind of functional simulation.

:func:`make_workload` builds any paper workload by name; every workload
object exposes ``setup(core)`` and ``do_transaction(core, rng)``.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common import rng as rng_util
from repro.txn.system import MemorySystem
from repro.workloads.structures import (
    PersistentBTree,
    PersistentHashMap,
    PersistentQueue,
    PersistentRBTree,
    PersistentVector,
)
from repro.workloads.tpcc import TPCCNewOrderWorkload
from repro.workloads.ycsb import YCSBWorkload
from repro.workloads.zipfian import ZipfianGenerator

WORKLOAD_NAMES = (
    "vector",
    "hashmap",
    "queue",
    "rbtree",
    "btree",
    "ycsb",
    "tpcc",
)


# -- microbenchmark wrappers ----------------------------------------------------


class VectorWorkload:
    """Insert/update entries against a persistent vector (8 stores/TX)."""

    name = "vector"

    def __init__(
        self,
        system: MemorySystem,
        *,
        capacity: int = 32768,
        item_bytes: int = 64,
        seed: int = 0,
    ) -> None:
        self.system = system
        self.item_bytes = item_bytes
        self.vector = PersistentVector(system, capacity, item_bytes)
        self._setup_rng = rng_util.make_rng(rng_util.derive(seed, "setup"))
        self.prefill = max(1, capacity // 2)
        self._zipf = ZipfianGenerator(
            max(2, self.prefill),
            rng=rng_util.make_rng(rng_util.derive(seed, "slots")),
        )

    def setup(self, core: int = 0) -> None:
        for _ in range(self.prefill):
            item = rng_util.random_bytes(self._setup_rng, self.item_bytes)
            with self.system.transaction(core) as tx:
                self.vector.insert(tx, item)

    def do_transaction(self, core: int, rng: random.Random) -> None:
        item = rng_util.random_bytes(rng, self.item_bytes)
        with self.system.transaction(core) as tx:
            length = self.vector.length(tx)
            if length < self.vector.capacity and rng.random() < 0.5:
                self.vector.insert(tx, item)
            else:
                slot = self._zipf.next_scrambled() % length
                self.vector.update(tx, slot, item)


class HashmapWorkload:
    """Insert/update entries against a chained hash map (8 stores/TX)."""

    name = "hashmap"

    def __init__(
        self,
        system: MemorySystem,
        *,
        keyspace: int = 32768,
        buckets: int = 8192,
        value_bytes: int = 64,
        seed: int = 0,
    ) -> None:
        self.system = system
        self.keyspace = keyspace
        self.value_bytes = value_bytes
        self.map = PersistentHashMap(system, buckets, value_bytes)
        self._setup_rng = rng_util.make_rng(rng_util.derive(seed, "setup"))
        self._zipf = ZipfianGenerator(
            keyspace, rng=rng_util.make_rng(rng_util.derive(seed, "keys"))
        )

    def setup(self, core: int = 0) -> None:
        for key in range(self.keyspace // 2):
            value = rng_util.random_bytes(self._setup_rng, self.value_bytes)
            with self.system.transaction(core) as tx:
                self.map.insert(tx, key, value)

    def do_transaction(self, core: int, rng: random.Random) -> None:
        # Skewed key popularity: repeated updates of hot entries are what
        # the paper's GC coalescing numbers (Table IV) presuppose.
        key = self._zipf.next_scrambled()
        value = rng_util.random_bytes(rng, self.value_bytes)
        with self.system.transaction(core) as tx:
            self.map.insert(tx, key, value)


class QueueWorkload:
    """Enqueue/dequeue against a persistent FIFO (4 stores/TX)."""

    name = "queue"

    def __init__(
        self,
        system: MemorySystem,
        *,
        value_bytes: int = 16,
        seed: int = 0,
    ) -> None:
        self.system = system
        self.value_bytes = value_bytes
        self.queue = PersistentQueue(system, value_bytes)
        self._setup_rng = rng_util.make_rng(rng_util.derive(seed, "setup"))

    def setup(self, core: int = 0) -> None:
        for _ in range(64):
            value = rng_util.random_bytes(self._setup_rng, self.value_bytes)
            with self.system.transaction(core) as tx:
                self.queue.enqueue(tx, value)
                self.queue.update_count(tx, +1)

    def do_transaction(self, core: int, rng: random.Random) -> None:
        with self.system.transaction(core) as tx:
            if rng.random() < 0.6 or self.queue.length(tx) == 0:
                value = rng_util.random_bytes(rng, self.value_bytes)
                self.queue.enqueue(tx, value)
                self.queue.update_count(tx, +1)
            else:
                self.queue.dequeue(tx)
                self.queue.update_count(tx, -1)


class RBTreeWorkload:
    """Insert/update keys in a red-black tree (2–10 stores/TX)."""

    name = "rbtree"

    def __init__(
        self,
        system: MemorySystem,
        *,
        keyspace: int = 65536,
        seed: int = 0,
    ) -> None:
        self.system = system
        self.keyspace = keyspace
        self.tree = PersistentRBTree(system)
        self._setup_rng = rng_util.make_rng(rng_util.derive(seed, "setup"))
        self._zipf = ZipfianGenerator(
            keyspace, rng=rng_util.make_rng(rng_util.derive(seed, "keys"))
        )

    def setup(self, core: int = 0) -> None:
        for _ in range(self.keyspace // 2):
            key = self._setup_rng.randrange(self.keyspace)
            with self.system.transaction(core) as tx:
                self.tree.insert(tx, key, key * 3)

    def do_transaction(self, core: int, rng: random.Random) -> None:
        # 35% inserts / 65% in-place updates lands the per-transaction
        # store count in Table III's range for the tree workloads; keys
        # follow a Zipfian popularity so hot entries rewrite (Table IV).
        key = self._zipf.next_scrambled()
        with self.system.transaction(core) as tx:
            if rng.random() < 0.35:
                self.tree.insert(tx, key, rng.getrandbits(63))
            elif not self.tree.update(tx, key, rng.getrandbits(63)):
                self.tree.insert(tx, key, rng.getrandbits(63))


class BTreeWorkload:
    """Insert/update keys in a B-tree (2–12 stores/TX)."""

    name = "btree"

    def __init__(
        self,
        system: MemorySystem,
        *,
        keyspace: int = 65536,
        degree: int = 4,
        seed: int = 0,
    ) -> None:
        self.system = system
        self.keyspace = keyspace
        self.tree = PersistentBTree(system, t=degree)
        self._setup_rng = rng_util.make_rng(rng_util.derive(seed, "setup"))
        self._zipf = ZipfianGenerator(
            keyspace, rng=rng_util.make_rng(rng_util.derive(seed, "keys"))
        )

    def setup(self, core: int = 0) -> None:
        for _ in range(self.keyspace // 2):
            key = self._setup_rng.randrange(self.keyspace)
            with self.system.transaction(core) as tx:
                self.tree.insert(tx, key, key * 3)

    def do_transaction(self, core: int, rng: random.Random) -> None:
        # 35% inserts / 65% in-place updates lands the per-transaction
        # store count in Table III's range for the tree workloads; keys
        # follow a Zipfian popularity so hot entries rewrite (Table IV).
        key = self._zipf.next_scrambled()
        with self.system.transaction(core) as tx:
            if rng.random() < 0.35:
                self.tree.insert(tx, key, rng.getrandbits(63))
            elif not self.tree.update(tx, key, rng.getrandbits(63)):
                self.tree.insert(tx, key, rng.getrandbits(63))


def make_workload(
    name: str,
    system: MemorySystem,
    *,
    item_bytes: int = 64,
    seed: int = 0,
    **overrides,
):
    """Build a Table III workload by name.

    ``item_bytes`` selects the dataset variant (the paper uses 64 B and
    1 KB items for the synthetic workloads and 512 B / 1 KB values for
    YCSB); extra keyword arguments reach the workload constructor.
    """
    if name == "vector":
        return VectorWorkload(
            system, item_bytes=item_bytes, seed=seed, **overrides
        )
    if name == "hashmap":
        return HashmapWorkload(
            system, value_bytes=item_bytes, seed=seed, **overrides
        )
    if name == "queue":
        return QueueWorkload(system, seed=seed, **overrides)
    if name == "rbtree":
        return RBTreeWorkload(system, seed=seed, **overrides)
    if name == "btree":
        return BTreeWorkload(system, seed=seed, **overrides)
    if name == "ycsb":
        return YCSBWorkload(
            system, value_bytes=max(item_bytes, 512), seed=seed, **overrides
        )
    if name == "tpcc":
        return TPCCNewOrderWorkload(system, seed=seed, **overrides)
    raise KeyError(
        f"unknown workload {name!r}; known: {', '.join(WORKLOAD_NAMES)}"
    )


# -- the driver ------------------------------------------------------------------


@dataclass
class RunResult:
    """One measured run of one workload under one scheme."""

    scheme: str
    workload: str
    threads: int
    transactions: int
    makespan_ns: float
    mean_latency_ns: float
    max_latency_ns: float
    bytes_written: int
    bytes_read: int
    energy_pj: float
    llc_miss_ratio: float
    extras: Dict[str, float] = field(default_factory=dict)
    # Populated only when the system runs with a live Telemetry hub: the
    # hub's summary() dict (histograms, counters, series).  Stays None on
    # plain runs so cached results from older code round-trip unchanged.
    telemetry: Optional[Dict] = None

    @property
    def throughput_tx_per_ms(self) -> float:
        if self.makespan_ns <= 0:
            return 0.0
        return self.transactions / (self.makespan_ns / 1e6)

    @property
    def bytes_per_tx(self) -> float:
        if not self.transactions:
            return 0.0
        return self.bytes_written / self.transactions


class WorkloadDriver:
    """Runs a workload across simulated threads in min-clock order."""

    def __init__(
        self, system: MemorySystem, *, threads: int = 8, seed: int = 0
    ) -> None:
        if threads < 1 or threads > system.config.num_cores:
            raise ValueError(
                f"threads must be 1..{system.config.num_cores}"
            )
        self.system = system
        self.threads = threads
        self.seed = seed

    def run(
        self,
        workload,
        transactions: int,
        *,
        setup: bool = True,
        warmup: int = 0,
        quiesce: bool = True,
        reset_measurement: bool = True,
    ) -> RunResult:
        """Execute ``transactions`` total transactions; returns metrics."""
        system = self.system
        if setup:
            workload.setup(core=0)
        system.sync_clocks()
        rngs = [
            rng_util.make_rng(rng_util.derive(self.seed, "thread", t))
            for t in range(self.threads)
        ]
        heap = [
            (system.clocks[t], t) for t in range(self.threads)
        ]

        def step(count: int) -> None:
            heap[:] = [(system.clocks[t], t) for t in range(self.threads)]
            heapq.heapify(heap)
            remaining = count
            while remaining > 0:
                _, thread = heapq.heappop(heap)
                workload.do_transaction(thread, rngs[thread])
                heapq.heappush(heap, (system.clocks[thread], thread))
                remaining -= 1

        if warmup:
            step(warmup)
            system.sync_clocks()
        if reset_measurement:
            system.reset_measurement()
        start_ns = max(system.clocks[:self.threads])
        start_tx = system.committed_transactions
        step(transactions)
        if quiesce:
            system.scheme.quiesce(system.now_ns)
        end_ns = max(system.clocks[:self.threads])
        executed = system.committed_transactions - start_tx
        device = system.device
        telemetry = (
            system.telemetry.summary() if system.telemetry.enabled else None
        )
        return RunResult(
            scheme=system.scheme.name,
            workload=getattr(workload, "name", type(workload).__name__),
            threads=self.threads,
            transactions=executed,
            makespan_ns=max(end_ns - start_ns, 1e-9),
            mean_latency_ns=system.mean_latency_ns,
            max_latency_ns=system.latency_max_ns,
            bytes_written=device.stats.bytes_written,
            bytes_read=device.stats.bytes_read,
            energy_pj=device.energy.total_pj,
            llc_miss_ratio=system.hierarchy.stats.llc_miss_ratio,
            telemetry=telemetry,
        )
