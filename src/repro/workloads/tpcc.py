"""TPC-C new-order transactions over the N-Store backend (paper §IV-A).

"In TPC-C, we use its new order transactions which are the most write
intensive workloads" — Table III characterizes them as 10–35 stores per
transaction with a roughly 40/60 write/read operation mix.  The schema
keeps the tables a new-order transaction actually touches:

* ``district``   — D_NEXT_O_ID read-modify-write;
* ``customer``   — discount/credit read;
* ``item``       — price and data reads per order line;
* ``stock``      — quantity read-modify-write + ytd read per line;
* ``orders``     — one 32-byte record insert;
* ``order_line`` — one 16-byte record insert per line.

Line counts are drawn uniformly from 2–10 so the per-transaction store
count lands exactly in Table III's 10–35 window (word stores: 1 district
+ 4 order + 3 per line); reads land at ~60% of operations.  TPC-C's
nominal 5–15 lines would push the store count past the paper's own
characterization, so we match the characterization — the quantity the
evaluation actually exercises.
"""

from __future__ import annotations

import random

from repro.common import rng as rng_util
from repro.txn.system import MemorySystem
from repro.workloads.nstore import Table

# Tuple layouts (bytes, word multiples).
_DISTRICT_BYTES = 64
_CUSTOMER_BYTES = 64
_ITEM_BYTES = 64
_STOCK_BYTES = 64
_ORDER_BYTES = 32  # o_id, d_id, c_id, ol_cnt
_ORDER_LINE_BYTES = 16  # item id, quantity

_NEXT_O_ID_OFF = 0
_STOCK_QTY_OFF = 0
_STOCK_YTD_OFF = 8

_MIN_LINES = 2
_MAX_LINES = 10


class TPCCNewOrderWorkload:
    """New-order transactions against one warehouse."""

    name = "tpcc"

    def __init__(
        self,
        system: MemorySystem,
        *,
        districts: int = 10,
        items: int = 8192,
        customers_per_district: int = 128,
        seed: int = 0,
    ) -> None:
        self.system = system
        self.districts = districts
        self.items = items
        self.customers = customers_per_district
        self.district = Table(system, "district", _DISTRICT_BYTES)
        self.customer = Table(system, "customer", _CUSTOMER_BYTES)
        self.item = Table(system, "item", _ITEM_BYTES)
        self.stock = Table(system, "stock", _STOCK_BYTES)
        self.orders = Table(system, "orders", _ORDER_BYTES)
        self.order_line = Table(system, "order_line", _ORDER_LINE_BYTES)
        self._setup_rng = rng_util.make_rng(rng_util.derive(seed, "setup"))
        self.new_orders = 0

    # -- lifecycle -----------------------------------------------------------------

    def setup(self, core: int = 0) -> None:
        """Load districts, customers, items, and stock."""
        for d_id in range(self.districts):
            with self.system.transaction(core) as tx:
                row = bytearray(
                    rng_util.random_bytes(self._setup_rng, _DISTRICT_BYTES)
                )
                row[_NEXT_O_ID_OFF : _NEXT_O_ID_OFF + 8] = (1).to_bytes(
                    8, "little"
                )
                self.district.insert(tx, d_id, bytes(row))
            for c_id in range(self.customers):
                with self.system.transaction(core) as tx:
                    self.customer.insert(
                        tx,
                        (d_id << 32) | c_id,
                        rng_util.random_bytes(
                            self._setup_rng, _CUSTOMER_BYTES
                        ),
                    )
        for i_id in range(self.items):
            with self.system.transaction(core) as tx:
                self.item.insert(
                    tx,
                    i_id,
                    rng_util.random_bytes(self._setup_rng, _ITEM_BYTES),
                )
            with self.system.transaction(core) as tx:
                row = bytearray(
                    rng_util.random_bytes(self._setup_rng, _STOCK_BYTES)
                )
                row[_STOCK_QTY_OFF : _STOCK_QTY_OFF + 8] = (100).to_bytes(
                    8, "little"
                )
                row[_STOCK_YTD_OFF : _STOCK_YTD_OFF + 8] = (0).to_bytes(
                    8, "little"
                )
                self.stock.insert(tx, i_id, bytes(row))

    # -- one new-order transaction -----------------------------------------------------

    def do_transaction(self, core: int, rng: random.Random) -> None:
        d_id = rng.randrange(self.districts)
        c_id = rng.randrange(self.customers)
        ol_cnt = rng.randint(_MIN_LINES, _MAX_LINES)
        lines = [
            (rng.randrange(self.items), rng.randint(1, 10))
            for _ in range(ol_cnt)
        ]
        with self.system.transaction(core) as tx:
            # Customer: discount/credit read.
            self.customer.read_slice(tx, (d_id << 32) | c_id, 0, 16)
            # District: read and advance the order id (1 RMW store).
            o_id = self.district.read_u64(tx, d_id, _NEXT_O_ID_OFF)
            self.district.update_u64(tx, d_id, _NEXT_O_ID_OFF, o_id + 1)
            # Orders: one record insert (4 word stores).
            order_key = (d_id << 32) | o_id
            header = (
                o_id.to_bytes(8, "little")
                + d_id.to_bytes(8, "little")
                + c_id.to_bytes(8, "little")
                + ol_cnt.to_bytes(8, "little")
            )
            self.orders.insert(tx, order_key, header)
            # Lines: item reads, stock RMW, order-line insert.
            for number, (i_id, qty) in enumerate(lines):
                self.item.read_slice(tx, i_id, 0, 8)  # price
                self.item.read_slice(tx, i_id, 8, 8)  # data
                s_qty = self.stock.read_u64(tx, i_id, _STOCK_QTY_OFF)
                self.stock.read_u64(tx, i_id, _STOCK_YTD_OFF)
                new_qty = (
                    s_qty - qty if s_qty >= qty + 10 else s_qty - qty + 91
                )
                self.stock.update_u64(tx, i_id, _STOCK_QTY_OFF, new_qty)
                line = i_id.to_bytes(8, "little") + qty.to_bytes(8, "little")
                self.order_line.insert(tx, (order_key << 8) | number, line)
        self.new_orders += 1
