"""Persistent vector: a flat slot array with a length header.

The simplest Table III structure: ``insert`` appends an item (8 word
stores for the default 64-byte item) and bumps the length word; ``update``
overwrites a slot in place.  Matches the paper's "Vector [23] —
insert/update entries, 8 stores/TX".
"""

from __future__ import annotations

from repro.common.errors import CapacityError
from repro.txn.system import MemorySystem
from repro.txn.transaction import Transaction
from repro.workloads.structures.util import load_item, store_item

_HEADER_BYTES = 64  # length word + padding, on its own cache line


class PersistentVector:
    """Fixed-capacity persistent array of fixed-size items."""

    def __init__(
        self, system: MemorySystem, capacity: int, item_bytes: int = 64
    ) -> None:
        if capacity <= 0 or item_bytes <= 0:
            raise ValueError("capacity and item size must be positive")
        self.system = system
        self.capacity = capacity
        self.item_bytes = item_bytes
        self.base = system.allocate(_HEADER_BYTES + capacity * item_bytes)
        self._slots = self.base + _HEADER_BYTES
        with system.transaction() as tx:
            tx.store_u64(self.base, 0)  # length = 0

    def _slot_addr(self, index: int) -> int:
        if not 0 <= index < self.capacity:
            raise IndexError(f"slot {index} out of range")
        return self._slots + index * self.item_bytes

    # -- operations (each runs inside the caller's transaction) ----------------

    def length(self, tx: Transaction) -> int:
        return tx.load_u64(self.base)

    def insert(self, tx: Transaction, item: bytes) -> int:
        """Append ``item``; returns its slot index."""
        if len(item) != self.item_bytes:
            raise ValueError(
                f"item must be exactly {self.item_bytes} bytes"
            )
        length = tx.load_u64(self.base)
        if length >= self.capacity:
            raise CapacityError("vector full")
        store_item(tx, self._slot_addr(length), item)
        tx.store_u64(self.base, length + 1)
        return length

    def update(self, tx: Transaction, index: int, item: bytes) -> None:
        """Overwrite slot ``index`` in place."""
        if len(item) != self.item_bytes:
            raise ValueError(
                f"item must be exactly {self.item_bytes} bytes"
            )
        store_item(tx, self._slot_addr(index), item)

    def get(self, tx: Transaction, index: int) -> bytes:
        return load_item(tx, self._slot_addr(index), self.item_bytes)
