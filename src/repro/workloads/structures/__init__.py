"""Persistent data structures for the microbenchmarks (Table III).

Each structure lives entirely in the simulated persistent heap and issues
all of its reads and writes through a :class:`~repro.txn.transaction
.Transaction`, so every pointer chase and field update flows through the
cache hierarchy and active persistence scheme exactly like the paper's
C++ structures flowed through McSimA+.
"""

from repro.workloads.structures.btree import PersistentBTree
from repro.workloads.structures.hashmap import PersistentHashMap
from repro.workloads.structures.queue import PersistentQueue
from repro.workloads.structures.rbtree import PersistentRBTree
from repro.workloads.structures.vector import PersistentVector

__all__ = [
    "PersistentVector",
    "PersistentHashMap",
    "PersistentQueue",
    "PersistentRBTree",
    "PersistentBTree",
]
