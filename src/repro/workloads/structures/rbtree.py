"""Persistent red-black tree (Table III "RB-tree [40]": 2–10 stores/TX).

A textbook (CLRS) red-black tree whose nodes live in persistent memory:
``[key | value | left | right | parent | color]``.  Every pointer chase
is a transactional load and every relink/recolor a transactional store,
so an insert's store count varies with the fixup work — from 2 (leaf
recolor-free insert: child link + parent backlink) up to ~10 when
rotations cascade, exactly the paper's range.

Deletion (CLRS transplant + delete-fixup) is included beyond the paper's
microbenchmark scope so the structure is complete for downstream use;
:meth:`check_invariants` walks the tree read-only and verifies the
red-black properties for the test suite.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.txn.system import MemorySystem
from repro.txn.transaction import Transaction
from repro.workloads.structures.util import NULL

_KEY = 0
_VALUE = 8
_LEFT = 16
_RIGHT = 24
_PARENT = 32
_COLOR = 40
_NODE_BYTES = 64

_BLACK = 0
_RED = 1


class PersistentRBTree:
    """Red-black tree with 8-byte keys and 8-byte values."""

    def __init__(self, system: MemorySystem) -> None:
        self.system = system
        self.base = system.allocate(64)  # header: root pointer
        with system.transaction() as tx:
            tx.store_u64(self.base, NULL)

    # -- field helpers ------------------------------------------------------------

    @staticmethod
    def _get(tx: Transaction, node: int, field: int) -> int:
        return tx.load_u64(node + field)

    @staticmethod
    def _set(tx: Transaction, node: int, field: int, value: int) -> None:
        tx.store_u64(node + field, value)

    def _root(self, tx: Transaction) -> int:
        return tx.load_u64(self.base)

    def _set_root(self, tx: Transaction, node: int) -> None:
        tx.store_u64(self.base, node)

    # -- search --------------------------------------------------------------------

    def search(self, tx: Transaction, key: int) -> Optional[int]:
        """Value for ``key``, or None."""
        node = self._root(tx)
        while node != NULL:
            node_key = self._get(tx, node, _KEY)
            if key == node_key:
                return self._get(tx, node, _VALUE)
            node = self._get(tx, node, _LEFT if key < node_key else _RIGHT)
        return None

    def update(self, tx: Transaction, key: int, value: int) -> bool:
        """Overwrite an existing key's value; returns False when absent."""
        node = self._root(tx)
        while node != NULL:
            node_key = self._get(tx, node, _KEY)
            if key == node_key:
                self._set(tx, node, _VALUE, value)
                return True
            node = self._get(tx, node, _LEFT if key < node_key else _RIGHT)
        return False

    # -- insertion -------------------------------------------------------------------

    def insert(self, tx: Transaction, key: int, value: int) -> None:
        """Insert ``key`` (overwrites value if present)."""
        parent = NULL
        node = self._root(tx)
        while node != NULL:
            node_key = self._get(tx, node, _KEY)
            if key == node_key:
                self._set(tx, node, _VALUE, value)
                return
            parent = node
            node = self._get(tx, node, _LEFT if key < node_key else _RIGHT)
        fresh = self.system.allocate(_NODE_BYTES)
        self._set(tx, fresh, _KEY, key)
        self._set(tx, fresh, _VALUE, value)
        self._set(tx, fresh, _LEFT, NULL)
        self._set(tx, fresh, _RIGHT, NULL)
        self._set(tx, fresh, _PARENT, parent)
        self._set(tx, fresh, _COLOR, _RED)
        if parent == NULL:
            self._set_root(tx, fresh)
        elif key < self._get(tx, parent, _KEY):
            self._set(tx, parent, _LEFT, fresh)
        else:
            self._set(tx, parent, _RIGHT, fresh)
        self._insert_fixup(tx, fresh)

    def _insert_fixup(self, tx: Transaction, node: int) -> None:
        while True:
            parent = self._get(tx, node, _PARENT)
            if parent == NULL or self._get(tx, parent, _COLOR) == _BLACK:
                break
            grand = self._get(tx, parent, _PARENT)
            if grand == NULL:
                break
            if parent == self._get(tx, grand, _LEFT):
                uncle = self._get(tx, grand, _RIGHT)
                if uncle != NULL and self._get(tx, uncle, _COLOR) == _RED:
                    self._set(tx, parent, _COLOR, _BLACK)
                    self._set(tx, uncle, _COLOR, _BLACK)
                    self._set(tx, grand, _COLOR, _RED)
                    node = grand
                    continue
                if node == self._get(tx, parent, _RIGHT):
                    node = parent
                    self._rotate_left(tx, node)
                    parent = self._get(tx, node, _PARENT)
                    grand = self._get(tx, parent, _PARENT)
                self._set(tx, parent, _COLOR, _BLACK)
                self._set(tx, grand, _COLOR, _RED)
                self._rotate_right(tx, grand)
            else:
                uncle = self._get(tx, grand, _LEFT)
                if uncle != NULL and self._get(tx, uncle, _COLOR) == _RED:
                    self._set(tx, parent, _COLOR, _BLACK)
                    self._set(tx, uncle, _COLOR, _BLACK)
                    self._set(tx, grand, _COLOR, _RED)
                    node = grand
                    continue
                if node == self._get(tx, parent, _LEFT):
                    node = parent
                    self._rotate_right(tx, node)
                    parent = self._get(tx, node, _PARENT)
                    grand = self._get(tx, parent, _PARENT)
                self._set(tx, parent, _COLOR, _BLACK)
                self._set(tx, grand, _COLOR, _RED)
                self._rotate_left(tx, grand)
        root = self._root(tx)
        if root != NULL and self._get(tx, root, _COLOR) != _BLACK:
            self._set(tx, root, _COLOR, _BLACK)

    # -- deletion --------------------------------------------------------------------

    def delete(self, tx: Transaction, key: int) -> bool:
        """Remove ``key``; returns False when absent.

        Classic CLRS: transplant the node (or its in-order successor),
        then restore the red-black properties when a black node left the
        tree.  The freed node returns to the persistent heap.
        """
        node = self._root(tx)
        while node != NULL:
            node_key = self._get(tx, node, _KEY)
            if key == node_key:
                break
            node = self._get(tx, node, _LEFT if key < node_key else _RIGHT)
        if node == NULL:
            return False

        # y is the node physically removed; x takes its place.
        removed_color = self._get(tx, node, _COLOR)
        left = self._get(tx, node, _LEFT)
        right = self._get(tx, node, _RIGHT)
        if left == NULL:
            fix_at, fix_parent = right, self._get(tx, node, _PARENT)
            self._transplant(tx, node, right)
        elif right == NULL:
            fix_at, fix_parent = left, self._get(tx, node, _PARENT)
            self._transplant(tx, node, left)
        else:
            successor = right
            while self._get(tx, successor, _LEFT) != NULL:
                successor = self._get(tx, successor, _LEFT)
            removed_color = self._get(tx, successor, _COLOR)
            fix_at = self._get(tx, successor, _RIGHT)
            if self._get(tx, successor, _PARENT) == node:
                fix_parent = successor
                if fix_at != NULL:
                    self._set(tx, fix_at, _PARENT, successor)
            else:
                fix_parent = self._get(tx, successor, _PARENT)
                self._transplant(tx, successor, fix_at)
                self._set(tx, successor, _RIGHT, right)
                self._set(tx, right, _PARENT, successor)
            self._transplant(tx, node, successor)
            self._set(tx, successor, _LEFT, left)
            self._set(tx, left, _PARENT, successor)
            self._set(
                tx, successor, _COLOR, self._get(tx, node, _COLOR)
            )
        if removed_color == _BLACK:
            self._delete_fixup(tx, fix_at, fix_parent)
        self.system.free(node, _NODE_BYTES)
        return True

    def _transplant(self, tx: Transaction, old: int, new: int) -> None:
        parent = self._get(tx, old, _PARENT)
        if parent == NULL:
            self._set_root(tx, new)
        elif old == self._get(tx, parent, _LEFT):
            self._set(tx, parent, _LEFT, new)
        else:
            self._set(tx, parent, _RIGHT, new)
        if new != NULL:
            self._set(tx, new, _PARENT, parent)

    def _delete_fixup(self, tx: Transaction, node: int, parent: int) -> None:
        # ``node`` may be NULL (a phantom black leaf); ``parent`` anchors it.
        while (
            node != self._root(tx)
            and (node == NULL or self._get(tx, node, _COLOR) == _BLACK)
        ):
            if parent == NULL:
                break
            if node == self._get(tx, parent, _LEFT):
                sibling = self._get(tx, parent, _RIGHT)
                if sibling != NULL and (
                    self._get(tx, sibling, _COLOR) == _RED
                ):
                    self._set(tx, sibling, _COLOR, _BLACK)
                    self._set(tx, parent, _COLOR, _RED)
                    self._rotate_left(tx, parent)
                    sibling = self._get(tx, parent, _RIGHT)
                if sibling == NULL:
                    node, parent = parent, self._get(tx, parent, _PARENT)
                    continue
                s_left = self._get(tx, sibling, _LEFT)
                s_right = self._get(tx, sibling, _RIGHT)
                left_black = s_left == NULL or (
                    self._get(tx, s_left, _COLOR) == _BLACK
                )
                right_black = s_right == NULL or (
                    self._get(tx, s_right, _COLOR) == _BLACK
                )
                if left_black and right_black:
                    self._set(tx, sibling, _COLOR, _RED)
                    node, parent = parent, self._get(tx, parent, _PARENT)
                else:
                    if right_black:
                        if s_left != NULL:
                            self._set(tx, s_left, _COLOR, _BLACK)
                        self._set(tx, sibling, _COLOR, _RED)
                        self._rotate_right(tx, sibling)
                        sibling = self._get(tx, parent, _RIGHT)
                    self._set(
                        tx, sibling, _COLOR,
                        self._get(tx, parent, _COLOR),
                    )
                    self._set(tx, parent, _COLOR, _BLACK)
                    s_right = self._get(tx, sibling, _RIGHT)
                    if s_right != NULL:
                        self._set(tx, s_right, _COLOR, _BLACK)
                    self._rotate_left(tx, parent)
                    node = self._root(tx)
                    parent = NULL
            else:
                sibling = self._get(tx, parent, _LEFT)
                if sibling != NULL and (
                    self._get(tx, sibling, _COLOR) == _RED
                ):
                    self._set(tx, sibling, _COLOR, _BLACK)
                    self._set(tx, parent, _COLOR, _RED)
                    self._rotate_right(tx, parent)
                    sibling = self._get(tx, parent, _LEFT)
                if sibling == NULL:
                    node, parent = parent, self._get(tx, parent, _PARENT)
                    continue
                s_left = self._get(tx, sibling, _LEFT)
                s_right = self._get(tx, sibling, _RIGHT)
                left_black = s_left == NULL or (
                    self._get(tx, s_left, _COLOR) == _BLACK
                )
                right_black = s_right == NULL or (
                    self._get(tx, s_right, _COLOR) == _BLACK
                )
                if left_black and right_black:
                    self._set(tx, sibling, _COLOR, _RED)
                    node, parent = parent, self._get(tx, parent, _PARENT)
                else:
                    if left_black:
                        if s_right != NULL:
                            self._set(tx, s_right, _COLOR, _BLACK)
                        self._set(tx, sibling, _COLOR, _RED)
                        self._rotate_left(tx, sibling)
                        sibling = self._get(tx, parent, _LEFT)
                    self._set(
                        tx, sibling, _COLOR,
                        self._get(tx, parent, _COLOR),
                    )
                    self._set(tx, parent, _COLOR, _BLACK)
                    s_left = self._get(tx, sibling, _LEFT)
                    if s_left != NULL:
                        self._set(tx, s_left, _COLOR, _BLACK)
                    self._rotate_right(tx, parent)
                    node = self._root(tx)
                    parent = NULL
        if node != NULL:
            self._set(tx, node, _COLOR, _BLACK)

    # -- rotations --------------------------------------------------------------------

    def _rotate_left(self, tx: Transaction, node: int) -> None:
        pivot = self._get(tx, node, _RIGHT)
        child = self._get(tx, pivot, _LEFT)
        self._set(tx, node, _RIGHT, child)
        if child != NULL:
            self._set(tx, child, _PARENT, node)
        parent = self._get(tx, node, _PARENT)
        self._set(tx, pivot, _PARENT, parent)
        if parent == NULL:
            self._set_root(tx, pivot)
        elif node == self._get(tx, parent, _LEFT):
            self._set(tx, parent, _LEFT, pivot)
        else:
            self._set(tx, parent, _RIGHT, pivot)
        self._set(tx, pivot, _LEFT, node)
        self._set(tx, node, _PARENT, pivot)

    def _rotate_right(self, tx: Transaction, node: int) -> None:
        pivot = self._get(tx, node, _LEFT)
        child = self._get(tx, pivot, _RIGHT)
        self._set(tx, node, _LEFT, child)
        if child != NULL:
            self._set(tx, child, _PARENT, node)
        parent = self._get(tx, node, _PARENT)
        self._set(tx, pivot, _PARENT, parent)
        if parent == NULL:
            self._set_root(tx, pivot)
        elif node == self._get(tx, parent, _RIGHT):
            self._set(tx, parent, _RIGHT, pivot)
        else:
            self._set(tx, parent, _LEFT, pivot)
        self._set(tx, pivot, _RIGHT, node)
        self._set(tx, node, _PARENT, pivot)

    # -- validation (tests) --------------------------------------------------------------

    def check_invariants(self) -> Tuple[int, int]:
        """Verify red-black properties; returns (node count, black height).

        Raises AssertionError on violation.  Read-only; runs in its own
        transaction.
        """
        with self.system.transaction() as tx:
            root = self._root(tx)
            if root == NULL:
                return 0, 0
            assert self._get(tx, root, _COLOR) == _BLACK, "root must be black"
            count, black_height = self._check_subtree(tx, root, None, None)
            return count, black_height

    def _check_subtree(
        self,
        tx: Transaction,
        node: int,
        low: Optional[int],
        high: Optional[int],
    ) -> Tuple[int, int]:
        if node == NULL:
            return 0, 1
        key = self._get(tx, node, _KEY)
        if low is not None:
            assert key > low, "BST order violated"
        if high is not None:
            assert key < high, "BST order violated"
        color = self._get(tx, node, _COLOR)
        left = self._get(tx, node, _LEFT)
        right = self._get(tx, node, _RIGHT)
        if color == _RED:
            for child in (left, right):
                if child != NULL:
                    assert (
                        self._get(tx, child, _COLOR) == _BLACK
                    ), "red node with red child"
        lcount, lblack = self._check_subtree(tx, left, low, key)
        rcount, rblack = self._check_subtree(tx, right, key, high)
        assert lblack == rblack, "black heights differ"
        return lcount + rcount + 1, lblack + (1 if color == _BLACK else 0)

    def keys_in_order(self) -> List[int]:
        """All keys via in-order traversal (read-only transaction)."""
        out: List[int] = []
        with self.system.transaction() as tx:
            self._inorder(tx, self._root(tx), out)
        return out

    def _inorder(self, tx: Transaction, node: int, out: List[int]) -> None:
        if node == NULL:
            return
        self._inorder(tx, self._get(tx, node, _LEFT), out)
        out.append(self._get(tx, node, _KEY))
        self._inorder(tx, self._get(tx, node, _RIGHT), out)
