"""Persistent B-tree (Table III "B-tree [40]": 2–12 stores/TX).

A CLRS B-tree with preemptive splits (one downward pass per insert).
Node layout, all 8-byte words::

    [ header | keys[2t-1] | values[2t-1] | children[2t] ]

where the header packs ``nkeys`` and a leaf flag.  Key shifts during
sorted insertion and the key/child moves during splits are individual
word stores — which is precisely why the paper's B-tree transaction
touches 2–12 words depending on luck.

Updates overwrite the value word in place; search walks the tree with
transactional loads.  ``check_invariants`` verifies ordering, occupancy
bounds, and uniform leaf depth for the test suite.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.txn.system import MemorySystem
from repro.txn.transaction import Transaction
from repro.workloads.structures.util import NULL

_HDR = 0


class PersistentBTree:
    """B-tree with 8-byte keys and values, min degree ``t``."""

    def __init__(self, system: MemorySystem, t: int = 4) -> None:
        if t < 2:
            raise ValueError("minimum degree must be >= 2")
        self.system = system
        self.t = t
        self.max_keys = 2 * t - 1
        self._keys_off = 8
        self._vals_off = self._keys_off + self.max_keys * 8
        self._kids_off = self._vals_off + self.max_keys * 8
        self.node_bytes = self._kids_off + 2 * t * 8
        self.base = system.allocate(64)  # header: root pointer
        with system.transaction() as tx:
            root = self._new_node(tx, leaf=True)
            tx.store_u64(self.base, root)

    # -- node field helpers ----------------------------------------------------

    def _new_node(self, tx: Transaction, *, leaf: bool) -> int:
        node = self.system.allocate(self.node_bytes)
        self._set_header(tx, node, 0, leaf)
        return node

    @staticmethod
    def _unpack_header(word: int) -> Tuple[int, bool]:
        return word & 0xFFFFFFFF, bool(word >> 32)

    def _header(self, tx: Transaction, node: int) -> Tuple[int, bool]:
        return self._unpack_header(tx.load_u64(node + _HDR))

    def _set_header(
        self, tx: Transaction, node: int, nkeys: int, leaf: bool
    ) -> None:
        tx.store_u64(node + _HDR, nkeys | (1 << 32 if leaf else 0))

    def _key(self, tx: Transaction, node: int, i: int) -> int:
        return tx.load_u64(node + self._keys_off + i * 8)

    def _set_key(self, tx: Transaction, node: int, i: int, key: int) -> None:
        tx.store_u64(node + self._keys_off + i * 8, key)

    def _val(self, tx: Transaction, node: int, i: int) -> int:
        return tx.load_u64(node + self._vals_off + i * 8)

    def _set_val(self, tx: Transaction, node: int, i: int, val: int) -> None:
        tx.store_u64(node + self._vals_off + i * 8, val)

    def _kid(self, tx: Transaction, node: int, i: int) -> int:
        return tx.load_u64(node + self._kids_off + i * 8)

    def _set_kid(self, tx: Transaction, node: int, i: int, kid: int) -> None:
        tx.store_u64(node + self._kids_off + i * 8, kid)

    # -- search ------------------------------------------------------------------

    def search(self, tx: Transaction, key: int) -> Optional[int]:
        node = tx.load_u64(self.base)
        while True:
            nkeys, leaf = self._header(tx, node)
            i = 0
            while i < nkeys and key > self._key(tx, node, i):
                i += 1
            if i < nkeys and key == self._key(tx, node, i):
                return self._val(tx, node, i)
            if leaf:
                return None
            node = self._kid(tx, node, i)

    def update(self, tx: Transaction, key: int, value: int) -> bool:
        """Overwrite an existing key's value; returns False when absent."""
        node = tx.load_u64(self.base)
        while True:
            nkeys, leaf = self._header(tx, node)
            i = 0
            while i < nkeys and key > self._key(tx, node, i):
                i += 1
            if i < nkeys and key == self._key(tx, node, i):
                self._set_val(tx, node, i, value)
                return True
            if leaf:
                return False
            node = self._kid(tx, node, i)

    # -- insertion ------------------------------------------------------------------

    def insert(self, tx: Transaction, key: int, value: int) -> None:
        root = tx.load_u64(self.base)
        nkeys, _ = self._header(tx, root)
        if nkeys == self.max_keys:
            new_root = self._new_node(tx, leaf=False)
            self._set_kid(tx, new_root, 0, root)
            self._split_child(tx, new_root, 0)
            tx.store_u64(self.base, new_root)
            root = new_root
        self._insert_nonfull(tx, root, key, value)

    def _split_child(self, tx: Transaction, parent: int, index: int) -> None:
        t = self.t
        child = self._kid(tx, parent, index)
        child_nkeys, child_leaf = self._header(tx, child)
        assert child_nkeys == self.max_keys
        sibling = self._new_node(tx, leaf=child_leaf)
        # Move the upper t-1 keys (and children) into the sibling.
        for j in range(t - 1):
            self._set_key(tx, sibling, j, self._key(tx, child, j + t))
            self._set_val(tx, sibling, j, self._val(tx, child, j + t))
        if not child_leaf:
            for j in range(t):
                self._set_kid(tx, sibling, j, self._kid(tx, child, j + t))
        self._set_header(tx, sibling, t - 1, child_leaf)
        self._set_header(tx, child, t - 1, child_leaf)
        # Shift the parent's keys/children right and hoist the median.
        parent_nkeys, parent_leaf = self._header(tx, parent)
        for j in range(parent_nkeys, index, -1):
            self._set_key(tx, parent, j, self._key(tx, parent, j - 1))
            self._set_val(tx, parent, j, self._val(tx, parent, j - 1))
            self._set_kid(tx, parent, j + 1, self._kid(tx, parent, j))
        self._set_kid(tx, parent, index + 1, sibling)
        self._set_key(tx, parent, index, self._key(tx, child, t - 1))
        self._set_val(tx, parent, index, self._val(tx, child, t - 1))
        self._set_header(tx, parent, parent_nkeys + 1, parent_leaf)

    def _insert_nonfull(
        self, tx: Transaction, node: int, key: int, value: int
    ) -> None:
        while True:
            nkeys, leaf = self._header(tx, node)
            # Overwrite in place when the key already exists at this level.
            i = 0
            while i < nkeys and key > self._key(tx, node, i):
                i += 1
            if i < nkeys and key == self._key(tx, node, i):
                self._set_val(tx, node, i, value)
                return
            if leaf:
                j = nkeys
                while j > i:
                    self._set_key(tx, node, j, self._key(tx, node, j - 1))
                    self._set_val(tx, node, j, self._val(tx, node, j - 1))
                    j -= 1
                self._set_key(tx, node, i, key)
                self._set_val(tx, node, i, value)
                self._set_header(tx, node, nkeys + 1, True)
                return
            child = self._kid(tx, node, i)
            child_nkeys, _ = self._header(tx, child)
            if child_nkeys == self.max_keys:
                self._split_child(tx, node, i)
                if key > self._key(tx, node, i):
                    child = self._kid(tx, node, i + 1)
                elif key == self._key(tx, node, i):
                    self._set_val(tx, node, i, value)
                    return
            node = child

    # -- validation (tests) --------------------------------------------------------

    def check_invariants(self) -> int:
        """Verify ordering/occupancy/depth; returns total key count."""
        with self.system.transaction() as tx:
            root = tx.load_u64(self.base)
            count, _ = self._check_node(tx, root, None, None, is_root=True)
            return count

    def _check_node(
        self,
        tx: Transaction,
        node: int,
        low: Optional[int],
        high: Optional[int],
        *,
        is_root: bool,
    ) -> Tuple[int, int]:
        nkeys, leaf = self._header(tx, node)
        if not is_root:
            assert nkeys >= self.t - 1, "underfull node"
        assert nkeys <= self.max_keys, "overfull node"
        keys = [self._key(tx, node, i) for i in range(nkeys)]
        assert keys == sorted(keys), "keys out of order"
        for key in keys:
            if low is not None:
                assert key > low, "key below subtree bound"
            if high is not None:
                assert key < high, "key above subtree bound"
        if leaf:
            return nkeys, 1
        total = nkeys
        depth: Optional[int] = None
        bounds = [low] + keys
        upper = keys + [high]
        for i in range(nkeys + 1):
            child = self._kid(tx, node, i)
            child_count, child_depth = self._check_node(
                tx, child, bounds[i], upper[i], is_root=False
            )
            total += child_count
            if depth is None:
                depth = child_depth
            assert depth == child_depth, "leaves at different depths"
        return total, (depth or 0) + 1

    def keys_in_order(self) -> List[int]:
        out: List[int] = []
        with self.system.transaction() as tx:
            self._collect(tx, tx.load_u64(self.base), out)
        return out

    def _collect(self, tx: Transaction, node: int, out: List[int]) -> None:
        nkeys, leaf = self._header(tx, node)
        if leaf:
            out.extend(self._key(tx, node, i) for i in range(nkeys))
            return
        for i in range(nkeys):
            self._collect(tx, self._kid(tx, node, i), out)
            out.append(self._key(tx, node, i))
        self._collect(tx, self._kid(tx, node, nkeys), out)
