"""Persistent chained hash map (Table III "Hashmap [24]").

Layout: a bucket array of head pointers, nodes of
``[key | next | value…]``.  ``insert`` allocates a node, fills it, and
splices it at the bucket head (the bucket-pointer store is last, so a
torn transaction never exposes a half-written node — though with any of
the real schemes the whole transaction is atomic anyway).  ``update``
walks the chain and overwrites the value words in place.
"""

from __future__ import annotations

from typing import Optional

from repro.txn.system import MemorySystem
from repro.txn.transaction import Transaction
from repro.workloads.structures.util import NULL, load_item, store_item

_KEY = 0
_NEXT = 8
_VALUE = 16


class PersistentHashMap:
    """Fixed-bucket-count chained hash map with fixed-size values."""

    def __init__(
        self,
        system: MemorySystem,
        buckets: int = 1024,
        value_bytes: int = 64,
    ) -> None:
        if buckets <= 0 or value_bytes <= 0:
            raise ValueError("buckets and value size must be positive")
        self.system = system
        self.buckets = buckets
        self.value_bytes = value_bytes
        self.node_bytes = _VALUE + value_bytes
        self.base = system.allocate(buckets * 8)
        with system.transaction() as tx:
            for b in range(buckets):
                tx.store_u64(self.base + b * 8, NULL)

    def _bucket_addr(self, key: int) -> int:
        # Fibonacci hashing spreads sequential keys across buckets.
        h = (key * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        return self.base + (h % self.buckets) * 8

    def _find_node(self, tx: Transaction, key: int) -> Optional[int]:
        node = tx.load_u64(self._bucket_addr(key))
        while node != NULL:
            if tx.load_u64(node + _KEY) == key:
                return node
            node = tx.load_u64(node + _NEXT)
        return None

    # -- operations -----------------------------------------------------------

    def insert(self, tx: Transaction, key: int, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        if len(value) != self.value_bytes:
            raise ValueError(f"value must be {self.value_bytes} bytes")
        existing = self._find_node(tx, key)
        if existing is not None:
            store_item(tx, existing + _VALUE, value)
            return
        node = self.system.allocate(self.node_bytes)
        bucket = self._bucket_addr(key)
        head = tx.load_u64(bucket)
        tx.store_u64(node + _KEY, key)
        tx.store_u64(node + _NEXT, head)
        store_item(tx, node + _VALUE, value)
        tx.store_u64(bucket, node)

    def update(self, tx: Transaction, key: int, value: bytes) -> bool:
        """Overwrite ``key``'s value; returns False when absent."""
        if len(value) != self.value_bytes:
            raise ValueError(f"value must be {self.value_bytes} bytes")
        node = self._find_node(tx, key)
        if node is None:
            return False
        store_item(tx, node + _VALUE, value)
        return True

    def get(self, tx: Transaction, key: int) -> Optional[bytes]:
        node = self._find_node(tx, key)
        if node is None:
            return None
        return load_item(tx, node + _VALUE, self.value_bytes)

    def remove(self, tx: Transaction, key: int) -> bool:
        """Unlink ``key``'s node; returns False when absent."""
        bucket = self._bucket_addr(key)
        prev = NULL
        node = tx.load_u64(bucket)
        while node != NULL:
            nxt = tx.load_u64(node + _NEXT)
            if tx.load_u64(node + _KEY) == key:
                if prev == NULL:
                    tx.store_u64(bucket, nxt)
                else:
                    tx.store_u64(prev + _NEXT, nxt)
                self.system.free(node, self.node_bytes)
                return True
            prev = node
            node = nxt
        return False
