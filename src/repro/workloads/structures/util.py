"""Shared helpers for persistent structures: word-granularity item IO.

The paper tracks updates at word granularity (Fig. 3), and Table III's
stores/transaction counts are word stores.  ``store_item`` therefore
writes payloads as a sequence of 8-byte stores — a 64-byte item is 8
stores, a 1 KB item is 128 — which is also how a compiler emits the copy.
"""

from __future__ import annotations

from repro.txn.transaction import Transaction

NULL = 0  # null pointer sentinel (the heap never hands out address 0)


def store_item(tx: Transaction, addr: int, payload: bytes) -> None:
    """Write ``payload`` as word stores (padded to a word multiple)."""
    if not payload:
        raise ValueError("empty item")
    padded = payload
    if len(padded) % 8:
        padded = padded + b"\0" * (8 - len(padded) % 8)
    for offset in range(0, len(padded), 8):
        tx.store(addr + offset, padded[offset : offset + 8])


def load_item(tx: Transaction, addr: int, size: int) -> bytes:
    """Read ``size`` bytes (line-sized chunks; the hierarchy splits)."""
    return tx.load(addr, size)
