"""Persistent linked FIFO queue (Table III "Queue [47]": 4 stores/TX).

Layout: a header line holding head/tail/count words, nodes of
``[next | value…]``.  An enqueue with the default 16-byte value issues
exactly four word stores (two value words, the predecessor's next link,
the tail pointer) plus the count — matching the paper's store count for
its queue microbenchmark.
"""

from __future__ import annotations

from typing import Optional

from repro.txn.system import MemorySystem
from repro.txn.transaction import Transaction
from repro.workloads.structures.util import NULL, load_item, store_item

_HEAD = 0
_TAIL = 8
_COUNT = 16
_HEADER_BYTES = 64

_NEXT = 0
_VALUE = 8


class PersistentQueue:
    """Singly-linked persistent FIFO with fixed-size values."""

    def __init__(self, system: MemorySystem, value_bytes: int = 16) -> None:
        if value_bytes <= 0:
            raise ValueError("value size must be positive")
        self.system = system
        self.value_bytes = value_bytes
        self.node_bytes = _VALUE + value_bytes
        self.base = system.allocate(_HEADER_BYTES)
        with system.transaction() as tx:
            tx.store_u64(self.base + _HEAD, NULL)
            tx.store_u64(self.base + _TAIL, NULL)
            tx.store_u64(self.base + _COUNT, 0)

    # -- operations --------------------------------------------------------------

    def enqueue(self, tx: Transaction, value: bytes) -> None:
        if len(value) != self.value_bytes:
            raise ValueError(f"value must be {self.value_bytes} bytes")
        node = self.system.allocate(self.node_bytes)
        tx.store_u64(node + _NEXT, NULL)
        store_item(tx, node + _VALUE, value)
        tail = tx.load_u64(self.base + _TAIL)
        if tail == NULL:
            tx.store_u64(self.base + _HEAD, node)
        else:
            tx.store_u64(tail + _NEXT, node)
        tx.store_u64(self.base + _TAIL, node)

    def dequeue(self, tx: Transaction) -> Optional[bytes]:
        head = tx.load_u64(self.base + _HEAD)
        if head == NULL:
            return None
        value = load_item(tx, head + _VALUE, self.value_bytes)
        nxt = tx.load_u64(head + _NEXT)
        tx.store_u64(self.base + _HEAD, nxt)
        if nxt == NULL:
            tx.store_u64(self.base + _TAIL, NULL)
        self.system.free(head, self.node_bytes)
        return value

    def update_count(self, tx: Transaction, delta: int) -> int:
        """Maintain the count word (its own store, per the 4-stores mix)."""
        count = tx.load_u64(self.base + _COUNT)
        count = max(0, count + delta)
        tx.store_u64(self.base + _COUNT, count)
        return count

    def length(self, tx: Transaction) -> int:
        return tx.load_u64(self.base + _COUNT)

    def peek(self, tx: Transaction) -> Optional[bytes]:
        head = tx.load_u64(self.base + _HEAD)
        if head == NULL:
            return None
        return load_item(tx, head + _VALUE, self.value_bytes)
