"""A minimal N-Store-style tuple storage engine.

The paper's YCSB and TPC-C runs use an N-Store database as the back-end
store [7], with each thread executing transactions against its tables.
What the memory-system evaluation needs from the database is its *data
plane*: fixed-size tuples in persistent memory, updated inside failure-
atomic transactions.  ``Table`` provides exactly that.

The primary-key index is DRAM-resident (a Python dict), mirroring how
N-Store and LSNVMM keep indexes in volatile memory and rebuild them on
recovery; index maintenance therefore costs no NVM traffic, and
``rebuild_index`` reconstructs it from a persistent catalog row scan
after a crash.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.common.errors import AllocationError
from repro.txn.system import MemorySystem
from repro.txn.transaction import Transaction
from repro.workloads.structures.util import load_item, store_item


class Table:
    """Fixed-size-tuple table with a volatile primary-key index."""

    def __init__(
        self, system: MemorySystem, name: str, tuple_bytes: int
    ) -> None:
        if tuple_bytes <= 0 or tuple_bytes % 8:
            raise ValueError("tuple size must be a positive word multiple")
        self.system = system
        self.name = name
        self.tuple_bytes = tuple_bytes
        self._index: Dict[int, int] = {}
        self.inserts = 0
        self.updates = 0
        self.reads = 0

    # -- operations --------------------------------------------------------------

    def insert(self, tx: Transaction, key: int, payload: bytes) -> int:
        """Insert a tuple; returns its address."""
        if key in self._index:
            raise AllocationError(
                f"duplicate key {key} in table {self.name!r}"
            )
        if len(payload) != self.tuple_bytes:
            raise ValueError(
                f"payload must be {self.tuple_bytes} bytes"
            )
        addr = self.system.allocate(self.tuple_bytes)
        store_item(tx, addr, payload)
        self._index[key] = addr
        self.inserts += 1
        return addr

    def update(self, tx: Transaction, key: int, payload: bytes) -> None:
        """Overwrite a whole tuple."""
        if len(payload) != self.tuple_bytes:
            raise ValueError(f"payload must be {self.tuple_bytes} bytes")
        store_item(tx, self._addr(key), payload)
        self.updates += 1

    def update_slice(
        self, tx: Transaction, key: int, offset: int, data: bytes
    ) -> None:
        """Overwrite part of a tuple (a field update)."""
        if offset < 0 or offset + len(data) > self.tuple_bytes:
            raise ValueError("slice outside tuple")
        store_item(tx, self._addr(key) + offset, data)
        self.updates += 1

    def read(self, tx: Transaction, key: int) -> bytes:
        self.reads += 1
        return load_item(tx, self._addr(key), self.tuple_bytes)

    def read_slice(
        self, tx: Transaction, key: int, offset: int, size: int
    ) -> bytes:
        if offset < 0 or offset + size > self.tuple_bytes:
            raise ValueError("slice outside tuple")
        self.reads += 1
        return load_item(tx, self._addr(key) + offset, size)

    def read_u64(self, tx: Transaction, key: int, offset: int) -> int:
        return int.from_bytes(self.read_slice(tx, key, offset, 8), "little")

    def update_u64(
        self, tx: Transaction, key: int, offset: int, value: int
    ) -> None:
        self.update_slice(tx, key, offset, int(value).to_bytes(8, "little"))

    # -- index -----------------------------------------------------------------

    def _addr(self, key: int) -> int:
        addr = self._index.get(key)
        if addr is None:
            raise KeyError(f"key {key} not in table {self.name!r}")
        return addr

    def contains(self, key: int) -> bool:
        return key in self._index

    def address_of(self, key: int) -> int:
        return self._addr(key)

    def keys(self) -> Iterator[int]:
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._index)

    def crash(self) -> None:
        """The DRAM index dies with the power."""
        self._index.clear()

    def rebuild_index(self, mapping: Dict[int, int]) -> None:
        """Restore the index (from a catalog scan the harness performs)."""
        self._index = dict(mapping)

    def snapshot_index(self) -> Dict[int, int]:
        """Catalog view for crash tests: key -> tuple address."""
        return dict(self._index)
