"""YCSB over the N-Store backend (paper §IV-A).

The paper's configuration: 80% updates / 20% reads, keys drawn from a
Zipfian distribution [11], key-value pairs of 512 bytes and 1 KB, eight
worker threads, each thread running transactions against its database
table.

An *update* transaction overwrites a contiguous field slice of the tuple
(8–32 words, matching Table III's stores/TX for YCSB — applications
update fields, not whole records); a *read* transaction reads the whole
value.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.common import rng as rng_util
from repro.txn.system import MemorySystem
from repro.workloads.nstore import Table
from repro.workloads.zipfian import ZipfianGenerator


class YCSBWorkload:
    """One thread-set of the YCSB benchmark."""

    name = "ycsb"

    def __init__(
        self,
        system: MemorySystem,
        *,
        records: int = 8192,
        value_bytes: int = 512,
        update_fraction: float = 0.8,
        theta: float = 0.99,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= update_fraction <= 1.0:
            raise ValueError("update fraction must be in [0, 1]")
        if value_bytes % 8:
            raise ValueError("value size must be a word multiple")
        self.system = system
        self.records = records
        self.value_bytes = value_bytes
        self.update_fraction = update_fraction
        self.table = Table(system, "usertable", value_bytes)
        self._zipf = ZipfianGenerator(
            records, theta, rng=rng_util.make_rng(rng_util.derive(seed, "zipf"))
        )
        self._setup_rng = rng_util.make_rng(rng_util.derive(seed, "setup"))
        # The record schema: a fixed set of 1-2-word fields scattered over
        # the tuple.  Every record shares it (one table, one schema).
        layout_rng = rng_util.make_rng(rng_util.derive(seed, "schema"))
        word_slots = value_bytes // 8
        self._fields = []
        slot = 0
        while slot < word_slots:
            width = min(layout_rng.randint(1, 2), word_slots - slot)
            self._fields.append((slot * 8, width))
            slot += width + layout_rng.randint(0, 2)
        self.update_txs = 0
        self.read_txs = 0

    # -- lifecycle -----------------------------------------------------------------

    def setup(self, core: int = 0) -> None:
        """Load phase: populate the table (one insert per transaction)."""
        for key in range(self.records):
            payload = rng_util.random_bytes(self._setup_rng, self.value_bytes)
            with self.system.transaction(core) as tx:
                self.table.insert(tx, key, payload)

    # -- one transaction -------------------------------------------------------------

    def do_transaction(self, core: int, rng: random.Random) -> None:
        key = self._zipf.next_scrambled()
        if rng.random() < self.update_fraction:
            self._update(core, key, rng)
        else:
            self._read(core, key)

    def _update(self, core: int, key: int, rng: random.Random) -> None:
        # Field updates: 8-32 words total, written to the record's *field*
        # offsets — applications rewrite named fields, not random bytes,
        # which is both the fine-granularity pattern HOOP's word-level
        # packing exploits (§III-C cites [9], [53]) and what makes
        # repeated updates to hot Zipfian records coalesce in GC
        # (Table IV's YCSB reduction ratios).
        total_words = rng.randint(8, min(32, self.value_bytes // 8))
        with self.system.transaction(core) as tx:
            remaining = total_words
            while remaining > 0:
                field_index = rng.randrange(len(self._fields))
                offset, words = self._fields[field_index]
                words = min(words, remaining)
                data = rng_util.random_bytes(rng, words * 8)
                self.table.update_slice(tx, key, offset, data)
                remaining -= words
        self.update_txs += 1

    def _read(self, core: int, key: int) -> None:
        with self.system.transaction(core) as tx:
            self.table.read(tx, key)
        self.read_txs += 1
