"""Fault-plan and crash-artifact (de)serialization.

A *fault plan* is just a :class:`~repro.common.config.FaultConfig` — a
pure value object — rendered to/from a JSON-safe dict.  A *crash
artifact* bundles a plan with everything else needed to replay one
crash-sweep case exactly: the scheme, the generated workload's
parameters, the recovery thread count, and the observed outcome.  The
sweep harness writes an artifact for every failing case; ``python -m
repro.crashtest --replay <artifact.json>`` re-runs it bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field
from typing import Optional

from repro.common.config import FaultConfig

# Version 2 added the nested-fault fields (phase / nested_after_ops /
# nested_torn / idempotence_k); version-1 artifacts still load, with the
# nested stage absent (a plain forward-crash case).
ARTIFACT_VERSION = 2


def plan_to_dict(plan: FaultConfig) -> dict:
    """JSON-safe dict of a fault plan (tuples become lists)."""
    return dataclasses.asdict(plan)


def plan_from_dict(payload: dict) -> FaultConfig:
    """Rebuild a :class:`FaultConfig` from :func:`plan_to_dict` output."""
    known = {f.name for f in dataclasses.fields(FaultConfig)}
    unknown = set(payload) - known
    if unknown:
        raise ValueError(f"unknown fault-plan fields: {sorted(unknown)}")
    kwargs = dict(payload)
    if "stuck_blocks" in kwargs:
        kwargs["stuck_blocks"] = tuple(kwargs["stuck_blocks"])
    return FaultConfig(**kwargs)


@dataclass
class CrashArtifact:
    """A minimal, exactly-replayable crash-sweep case."""

    scheme: str
    faults: FaultConfig
    workload_seed: int = 7
    transactions: int = 80
    addresses: int = 12
    recovery_threads: int = 2
    # What the original run observed: None = passed, else the failure
    # message.  Replay checks it reproduces the same outcome.
    failure: Optional[str] = None
    fingerprint: str = ""
    # Nested-fault stage (version 2): which sweep phase produced the
    # case ("forward", "recovery", "gc", or "gc-media"), the recovery-op
    # boundary of the second cut (None = no nested fault), whether that
    # cut was torn, and how many extra crash+recover cycles the
    # idempotence oracle ran.
    phase: str = "forward"
    nested_after_ops: Optional[int] = None
    nested_torn: bool = False
    idempotence_k: int = 0
    version: int = ARTIFACT_VERSION
    notes: list = field(default_factory=list)

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["faults"] = plan_to_dict(self.faults)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "CrashArtifact":
        payload = dict(payload)
        version = payload.get("version", ARTIFACT_VERSION)
        if version > ARTIFACT_VERSION:
            raise ValueError(
                f"artifact version {version} is newer than supported "
                f"{ARTIFACT_VERSION}"
            )
        payload["faults"] = plan_from_dict(payload["faults"])
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


def save_artifact(artifact: CrashArtifact, path) -> pathlib.Path:
    """Write one artifact as pretty JSON; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(artifact.to_dict(), indent=1, sort_keys=True) + "\n"
    )
    return path


def load_artifact(path) -> CrashArtifact:
    return CrashArtifact.from_dict(json.loads(pathlib.Path(path).read_text()))
