"""The fault injector and the device subclass that consults it.

:class:`FaultyNVMDevice` extends :class:`~repro.nvm.device.NVMDevice`
without touching its hot paths: the plain device class is still what
every fault-free simulation runs, so disabling injection perturbs
nothing.  The subclass intercepts the four access entry points
(``read``/``write``/``peek``/``poke``) and routes each through the
:class:`FaultInjector`, which owns all mutable fault state:

* an armed **power-loss budget** over timed writes (and, separately,
  over untimed pokes), plus a unified **recovery budget** counting both
  mutation planes in program order — how a *nested* crash during
  recovery is injected, since recovery interleaves home-region pokes
  with timed metadata writes (log headers, slot rewrites, region
  clears);
* the seeded PRNG behind **torn-write** word selection and **transient
  read** faults;
* the **bad-block remap table** — the one piece of injector state that
  survives ``restore_power()``, like a real DIMM's firmware remap table.

Timing/energy honesty: a faulted read attempt still charges its channel
occupancy and energy (the bits moved, they were just wrong); a remap
charges the block copy's energy and a fixed penalty on the triggering
write's completion; the fatal (power-cut) write charges nothing — the
machine is dead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.config import FaultConfig, NVMConfig, SystemConfig
from repro.common.errors import (
    AddressError,
    MediaError,
    PowerLossError,
    TransientReadError,
)
from repro.nvm.device import AccessResult, NVMDevice
from repro.telemetry.hub import NULL_TELEMETRY

_WORD = 8

# Verdicts of FaultInjector.on_timed_write().
_WRITE_OK = 0
_WRITE_FATAL = 1  # this write is the power-cut instant
_WRITE_DEAD = 2  # power already lost


@dataclass
class FaultStats:
    """Observable outcome counters of one injector (reset never)."""

    __snapshot_state__ = "__atoms__"

    power_cuts: int = 0  # fatal writes (power-loss instants)
    writes_lost: int = 0  # writes refused because power was out
    torn_writes: int = 0
    torn_words_applied: int = 0
    torn_words_dropped: int = 0
    transient_read_faults: int = 0
    # Mutation ops (timed writes + pokes) that crossed an armed recovery
    # budget — the nested-fault sweep's boundary population for
    # crash-during-recovery injection.
    recovery_ops: int = 0
    stuck_block_writes: int = 0
    remapped_blocks: int = 0
    remap_copy_bytes: int = 0
    remapped_accesses: int = 0


class FaultInjector:
    """All mutable fault state for one :class:`FaultyNVMDevice`."""

    # Snapshots deep-clone everything: the armed power-loss budgets and
    # the PRNG stream are plain attributes, so a snapshot captured
    # mid-fault replays the same remaining-writes countdown.
    __snapshot_state__ = "__all__"

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.stats = FaultStats()
        self._rng = random.Random(config.seed)
        self._write_budget: Optional[int] = config.power_loss_after_write
        self._poke_budget: Optional[int] = None
        # The *nested* fault budget: one counter over both mutation
        # planes (timed writes AND pokes) in program order.  Recovery
        # paths interleave pokes (home-region restore) with timed writes
        # (log-header persists, slot rewrites, region clears), so a
        # crash-during-recovery boundary must count both.
        self._recovery_budget: Optional[int] = None
        # Deadline-based power loss (simulated time): the first timed
        # write at or after this instant is the fatal one.  How the
        # serving layer kills a shard "at t ms into the run" without
        # having to predict its write count.
        self._deadline_ns: Optional[float] = None
        self._torn = config.torn
        self._power_lost = False

    # -- arming ------------------------------------------------------------------

    def arm_power_loss(
        self,
        *,
        after_writes: Optional[int] = None,
        after_pokes: Optional[int] = None,
        torn: Optional[bool] = None,
    ) -> None:
        """(Re-)arm a power-loss budget mid-run.

        ``after_writes`` counts timed device writes, ``after_pokes``
        counts functional pokes — the latter is how recovery itself is
        crashed, since recovery restores the home region with pokes.
        """
        if after_writes is not None:
            self._write_budget = after_writes
        if after_pokes is not None:
            self._poke_budget = after_pokes
        if torn is not None:
            self._torn = torn

    def arm_power_loss_at(
        self, deadline_ns: float, *, torn: Optional[bool] = None
    ) -> None:
        """Arm a wall-of-simulated-time power cut.

        The first *timed* write whose issue instant is at or after
        ``deadline_ns`` becomes the fatal write (untimed pokes carry no
        timestamp and never trip the deadline).  Used by
        :mod:`repro.serve` to kill one shard mid-traffic at a chosen
        point of the run; cleared by :meth:`restore_power` like every
        other budget, so recovery writes on restored power survive.
        """
        if deadline_ns < 0:
            raise ValueError("power-loss deadline must be >= 0")
        self._deadline_ns = deadline_ns
        if torn is not None:
            self._torn = torn

    def arm_recovery_fault(
        self, *, after_ops: int, torn: Optional[bool] = None
    ) -> None:
        """Arm the nested fault: die after ``after_ops`` more mutations.

        The budget counts timed writes and pokes together, in program
        order, because recovery mixes both planes (``after_ops=0`` means
        the very next mutation is the power-cut instant).  Arm it on the
        *crashed* system, before calling ``recover()`` — forward
        execution would consume it just the same.
        """
        if after_ops < 0:
            raise ValueError("recovery fault budget must be >= 0")
        self._recovery_budget = after_ops
        if torn is not None:
            self._torn = torn

    @property
    def pending_nested_fault(self) -> bool:
        """True when an armed poke/recovery budget has not fired yet."""
        return not self._power_lost and (
            self._poke_budget is not None
            or self._recovery_budget is not None
        )

    def restore_power(self) -> None:
        """Reboot: budgets disarm, the machine accepts writes again.

        The remap table (held by the device) and the PRNG stream
        survive — bad blocks are physical, and determinism requires the
        stream to continue rather than restart.
        """
        self._power_lost = False
        self._write_budget = None
        self._poke_budget = None
        self._recovery_budget = None
        self._deadline_ns = None

    @property
    def power_lost(self) -> bool:
        return self._power_lost

    # -- per-access decisions -----------------------------------------------------

    def on_timed_write(self, now_ns: float = 0.0) -> int:
        if self._power_lost:
            self.stats.writes_lost += 1
            return _WRITE_DEAD
        if self._recovery_budget is not None:
            return self._on_recovery_op()
        if self._deadline_ns is not None and now_ns >= self._deadline_ns:
            self._power_lost = True
            self.stats.power_cuts += 1
            return _WRITE_FATAL
        if self._write_budget is None:
            return _WRITE_OK
        if self._write_budget > 0:
            self._write_budget -= 1
            return _WRITE_OK
        self._power_lost = True
        self.stats.power_cuts += 1
        return _WRITE_FATAL

    def on_poke(self) -> int:
        if self._power_lost:
            self.stats.writes_lost += 1
            return _WRITE_DEAD
        if self._recovery_budget is not None:
            return self._on_recovery_op()
        if self._poke_budget is None:
            return _WRITE_OK
        if self._poke_budget > 0:
            self._poke_budget -= 1
            return _WRITE_OK
        self._power_lost = True
        self.stats.power_cuts += 1
        return _WRITE_FATAL

    def _on_recovery_op(self) -> int:
        """One mutation crossed the armed recovery budget (either plane)."""
        if self._recovery_budget > 0:
            self._recovery_budget -= 1
            self.stats.recovery_ops += 1
            return _WRITE_OK
        self._power_lost = True
        self.stats.power_cuts += 1
        return _WRITE_FATAL

    def read_faults(self) -> bool:
        rate = self.config.read_error_rate
        return rate > 0.0 and self._rng.random() < rate

    def torn_words_kept(self, num_words: int) -> set:
        """Word indices of the fatal write that reach the media.

        Real NVM persists 8-byte words atomically but in arbitrary
        order, so any subset of the write may survive; ``torn=False``
        models the cleaner all-or-nothing boundary (no word survives).
        """
        if not self._torn or num_words == 0:
            return set()
        self.stats.torn_writes += 1
        return {i for i in range(num_words) if self._rng.random() < 0.5}


class FaultyNVMDevice(NVMDevice):
    """NVM device with deterministic, seedable fault injection.

    Content/timing/energy/wear behaviour on fault-free accesses is the
    base class's own (the overrides delegate), with one exception:
    ``write_batch`` decomposes into per-write calls so every element
    crosses the power-loss budget individually — a GC migration burst
    can be cut mid-burst, which is exactly the crash window §III-E's
    argument has to survive.
    """

    def __init__(
        self,
        config: Optional[NVMConfig] = None,
        faults: Optional[FaultConfig] = None,
        *,
        wear_block_bytes: int = 2 * 1024 * 1024,
    ) -> None:
        super().__init__(config, wear_block_bytes=wear_block_bytes)
        self.faults = faults or FaultConfig(enabled=True)
        self.injector = FaultInjector(self.faults)
        self._fault_block = self.faults.fault_block_bytes
        self._visible_capacity = self._capacity
        # Spare capacity is hidden above the visible address space; the
        # base class's bounds checks are widened so translated accesses
        # land, while the overrides enforce the visible bound first.
        spare_bytes = self.faults.spare_blocks * self._fault_block
        self._spare_base = (
            (self._visible_capacity + self._fault_block - 1)
            // self._fault_block
            * self._fault_block
        )
        self._capacity = self._spare_base + spare_bytes
        self._stuck = set(self.faults.stuck_blocks)
        self._remap: Dict[int, int] = {}  # fault block -> spare index
        self._spares_used = 0
        # Fault instants land on the shared "faults" track when a hub is
        # attached (MemorySystem wires it).  Poke-plane power cuts are
        # not emitted: pokes carry no simulated timestamp.
        self.telemetry = NULL_TELEMETRY

    # -- address translation ------------------------------------------------------

    def _check_visible(self, addr: int, size: int) -> None:
        if addr < 0 or size <= 0 or addr + size > self._visible_capacity:
            raise AddressError(
                f"access [{addr:#x}, +{size}) outside device of "
                f"{self._visible_capacity} bytes"
            )

    def _translate(
        self, addr: int, size: int
    ) -> List[Tuple[int, int, int]]:
        """Split ``[addr, addr+size)`` into translated segments.

        Returns ``[(translated_addr, data_offset, chunk_size), ...]``;
        a single identity segment in the common unremapped case.
        """
        if not self._remap:
            return [(addr, 0, size)]
        block = addr // self._fault_block
        if (addr + size - 1) // self._fault_block == block:
            spare = self._remap.get(block)
            if spare is None:
                return [(addr, 0, size)]
            base = self._spare_base + spare * self._fault_block
            return [(base + addr % self._fault_block, 0, size)]
        segments: List[Tuple[int, int, int]] = []
        cursor, offset, remaining = addr, 0, size
        while remaining:
            block = cursor // self._fault_block
            room = (block + 1) * self._fault_block - cursor
            chunk = min(room, remaining)
            spare = self._remap.get(block)
            if spare is None:
                target = cursor
            else:
                target = (
                    self._spare_base
                    + spare * self._fault_block
                    + cursor % self._fault_block
                )
            segments.append((target, offset, chunk))
            cursor += chunk
            offset += chunk
            remaining -= chunk
        return segments

    def _remap_block(self, block: int) -> None:
        """Retire a stuck block onto a spare, copying live content."""
        if self._spares_used >= self.faults.spare_blocks:
            raise MediaError(
                f"block {block} is stuck and all "
                f"{self.faults.spare_blocks} spare blocks are in use"
            )
        spare = self._spares_used
        self._spares_used += 1
        self._remap[block] = spare
        stats = self.injector.stats
        stats.remapped_blocks += 1
        src_base = block * self._fault_block
        dst_base = self._spare_base + spare * self._fault_block
        # Copy only materialized pages (sparse device); the media-side
        # copy charges write energy but no channel time — it never
        # crosses the external bus.
        page = 4096
        for page_base in list(self._pages):
            if src_base <= page_base < src_base + self._fault_block:
                data = bytes(self._pages[page_base])
                super().poke(dst_base + (page_base - src_base), data)
                stats.remap_copy_bytes += len(data)
                self.energy.record_write(len(data), False)

    def _prepare_write_target(
        self, addr: int, size: int, now_ns: float = 0.0
    ) -> None:
        """Trigger remap for any stuck, not-yet-remapped target block."""
        if not self._stuck:
            return
        first = addr // self._fault_block
        last = (addr + size - 1) // self._fault_block
        for block in range(first, last + 1):
            if block in self._stuck and block not in self._remap:
                self.injector.stats.stuck_block_writes += 1
                self._remap_block(block)
                if self.telemetry.enabled:
                    self.telemetry.emit(
                        now_ns, "block_remap", "faults", {"block": block}
                    )

    # -- functional plane ---------------------------------------------------------

    def peek(self, addr: int, size: int) -> bytes:
        if not self._remap:
            # No remapped blocks: translation is the identity and the
            # slow path has no other side effects — delegate directly.
            # (Recovery issues hundreds of small peeks per crash case;
            # this wrapper is measurable.)
            if addr < 0 or size <= 0 or addr + size > self._visible_capacity:
                self._check_visible(addr, size)
            return NVMDevice.peek(self, addr, size)
        self._check_visible(addr, size)
        segments = self._translate(addr, size)
        if len(segments) == 1:
            return super().peek(segments[0][0], size)
        return b"".join(
            super().peek(target, chunk) for target, _, chunk in segments
        )

    def poke(self, addr: int, data: bytes) -> None:
        injector = self.injector
        if (
            injector._poke_budget is None
            and injector._recovery_budget is None
            and not injector._power_lost
            and not self._remap
            and not self._stuck
        ):
            # Healthy device, no poke budget armed: on_poke() would
            # return OK without touching stats, translation is the
            # identity, and no stuck block can trigger — bit-identical
            # to the slow path, minus its call overhead.
            size = max(1, len(data))
            if addr < 0 or addr + size > self._visible_capacity:
                self._check_visible(addr, size)
            NVMDevice.poke(self, addr, data)
            return
        self._check_visible(addr, max(1, len(data)))
        verdict = self.injector.on_poke()
        if verdict == _WRITE_DEAD:
            raise PowerLossError("poke after power loss")
        size = len(data)
        self._prepare_write_target(addr, max(1, size))
        segments = self._translate(addr, max(1, size))
        if verdict == _WRITE_FATAL:
            self._apply_torn(segments, data)
            raise PowerLossError("power lost during poke")
        for target, offset, chunk in segments:
            super().poke(target, data[offset : offset + chunk])

    # -- timed plane --------------------------------------------------------------

    def read(self, addr: int, size: int, now_ns: float = 0.0):
        if not self._remap and self.faults.read_error_rate == 0.0:
            # Identity translation and read_faults() short-circuits at
            # rate 0.0 without consuming the PRNG — delegating straight
            # to the base class is bit-identical.
            if addr < 0 or size <= 0 or addr + size > self._visible_capacity:
                self._check_visible(addr, size)
            return NVMDevice.read(self, addr, size, now_ns)
        self._check_visible(addr, size)
        segments = self._translate(addr, size)
        if len(segments) == 1:
            data, result = super().read(segments[0][0], size, now_ns)
            if segments[0][0] != addr:
                self.injector.stats.remapped_accesses += 1
        else:
            self.injector.stats.remapped_accesses += 1
            parts = []
            completion = now_ns
            hit = False
            for target, _, chunk in segments:
                part, seg_result = super().read(target, chunk, now_ns)
                parts.append(part)
                completion = max(completion, seg_result.completion_ns)
                hit = seg_result.row_buffer_hit
            data = b"".join(parts)
            result = AccessResult(now_ns, completion, hit)
        if self.injector.read_faults():
            self.injector.stats.transient_read_faults += 1
            if self.telemetry.enabled:
                self.telemetry.emit(
                    result.completion_ns,
                    "read_fault",
                    "faults",
                    {"addr": addr},
                )
            raise TransientReadError(addr, result.completion_ns)
        return data, result

    def write(
        self,
        addr: int,
        data: bytes,
        now_ns: float = 0.0,
        *,
        queued: bool = True,
    ) -> AccessResult:
        if not data:
            return AccessResult(now_ns, now_ns, True)
        size = len(data)
        if addr < 0 or addr + size > self._visible_capacity:
            self._check_visible(addr, size)
        verdict = self.injector.on_timed_write(now_ns)
        if verdict == _WRITE_OK and not self._stuck and not self._remap:
            # Healthy path: no stuck block to remap, identity translation
            # and no remap penalty — the base-class write is equivalent.
            return NVMDevice.write(self, addr, data, now_ns, queued=queued)
        if verdict == _WRITE_DEAD:
            raise PowerLossError("write after power loss")
        remapped_before = len(self._remap)
        self._prepare_write_target(addr, size, now_ns)
        penalty = (
            (len(self._remap) - remapped_before)
            * self.faults.remap_penalty_ns
        )
        segments = self._translate(addr, size)
        if verdict == _WRITE_FATAL:
            if self.telemetry.enabled:
                self.telemetry.emit(
                    now_ns,
                    "power_cut",
                    "faults",
                    {"addr": addr, "torn": self.injector._torn},
                )
            self._apply_torn(segments, data)
            raise PowerLossError(
                f"power lost during write at {addr:#x}"
            )
        if len(segments) == 1:
            target = segments[0][0]
            if target != addr:
                self.injector.stats.remapped_accesses += 1
            result = super().write(target, data, now_ns, queued=queued)
        else:
            self.injector.stats.remapped_accesses += 1
            completion = now_ns
            hit = False
            for target, offset, chunk in segments:
                seg = super().write(
                    target, data[offset : offset + chunk], now_ns,
                    queued=queued,
                )
                completion = max(completion, seg.completion_ns)
                hit = seg.row_buffer_hit
            result = AccessResult(now_ns, completion, hit)
        if penalty:
            result = AccessResult(
                result.start_ns,
                result.completion_ns + penalty,
                result.row_buffer_hit,
            )
        return result

    def write_batch(self, writes, now_ns: float = 0.0) -> None:
        # Decomposed so each element crosses the power-loss budget; the
        # channel sees the same queued bytes, so fault-free timing stays
        # equivalent in aggregate.
        for addr, data in writes:
            if data:
                self.write(addr, data, now_ns, queued=True)

    def _apply_torn(
        self, segments: List[Tuple[int, int, int]], data: bytes
    ) -> None:
        """Persist a seeded word subset of the fatal write, drop the rest."""
        size = len(data)
        num_words = (size + _WORD - 1) // _WORD
        kept = self.injector.torn_words_kept(num_words)
        stats = self.injector.stats
        stats.torn_words_applied += len(kept)
        stats.torn_words_dropped += num_words - len(kept)
        if not kept:
            return
        for index in sorted(kept):
            lo = index * _WORD
            hi = min(lo + _WORD, size)
            for target, offset, chunk in segments:
                seg_lo = max(lo, offset)
                seg_hi = min(hi, offset + chunk)
                if seg_lo < seg_hi:
                    super().poke(
                        target + (seg_lo - offset), data[seg_lo:seg_hi]
                    )

    # -- power state --------------------------------------------------------------

    def restore_power(self) -> None:
        self.injector.restore_power()

    def rearm(self, faults: FaultConfig) -> None:
        """Install a fresh fault plan on a restored snapshot.

        The incremental crash sweep restores a checkpoint taken with an
        *unarmed* injector and then arms the residual write budget for
        one boundary.  A fresh :class:`FaultInjector` (fresh PRNG seeded
        from ``faults.seed``) makes the replay bit-identical to a cold
        run with that config, because the cold injector's PRNG is
        untouched until the cut.  Device geometry (spare layout, fault
        block size) is fixed at construction and must match; the remap
        table is physical state and survives, like ``restore_power``.

        Tripwire: replacing the injector while a nested fault (poke or
        recovery budget) is armed but has not fired would silently
        disarm it — the sweep would then count a vacuous pass.  That
        holds regardless of the residual budget in ``faults`` (zero
        residual budgets are legal and arm the very next write).
        """
        if self.injector.pending_nested_fault:
            raise AssertionError(
                "rearm would silently disarm a pending nested fault "
                "(poke/recovery budget armed but unfired); let it fire "
                "or restore_power() first"
            )
        self.faults = faults
        self.injector = FaultInjector(faults)
        self._stuck = set(faults.stuck_blocks)

    @property
    def fault_stats(self) -> FaultStats:
        return self.injector.stats


def make_device(config: SystemConfig) -> NVMDevice:
    """Build the NVM device a :class:`SystemConfig` asks for.

    The plain :class:`NVMDevice` when fault injection is disabled —
    guaranteeing zero perturbation of fault-free simulations — and a
    :class:`FaultyNVMDevice` otherwise.
    """
    if config.faults.enabled:
        return FaultyNVMDevice(config.nvm, config.faults)
    return NVMDevice(config.nvm)
