"""Deterministic fault injection for the NVM device.

This package is the first-class replacement for the ad-hoc
``device.write`` monkeypatching the failure tests used to do.  A
:class:`~repro.common.config.FaultConfig` on :class:`SystemConfig`
selects, at :class:`~repro.txn.system.MemorySystem` construction time,
between the plain :class:`~repro.nvm.device.NVMDevice` (faults disabled
— bit-identical to a build without this package) and
:class:`FaultyNVMDevice`, which layers four seeded fault models over the
same byte/timing planes:

* power loss after the Nth timed write (:class:`PowerLossError`),
* torn writes at 8-byte word granularity inside the fatal write,
* transient media read errors, retried with bounded exponential
  backoff in *simulated* time by :class:`~repro.memctrl.port.MemoryPort`,
* permanently stuck blocks, transparently remapped to hidden spare
  capacity with the copy charged to energy and latency.

Everything is driven by ``random.Random(config.seed)`` so a fault plan
replays exactly; :mod:`repro.faults.plan` serializes plans and the
crash-sweep repro artifacts built from them.
"""

from repro.common.errors import (
    MediaError,
    PowerLossError,
    ReadRetryExhaustedError,
    TransientReadError,
)
from repro.faults.injector import (
    FaultInjector,
    FaultStats,
    FaultyNVMDevice,
    make_device,
)
from repro.faults.plan import (
    CrashArtifact,
    load_artifact,
    plan_from_dict,
    plan_to_dict,
    save_artifact,
)

__all__ = [
    "FaultInjector",
    "FaultStats",
    "FaultyNVMDevice",
    "make_device",
    "CrashArtifact",
    "plan_to_dict",
    "plan_from_dict",
    "save_artifact",
    "load_artifact",
    "PowerLossError",
    "TransientReadError",
    "MediaError",
    "ReadRetryExhaustedError",
]
