"""Opt-Redo: hardware-assisted redo logging (WrAP [13] style).

At commit, every cache line the transaction updated is streamed to a redo
log through the memory controller's write queue as **two cache lines** on
NVM (data + metadata) — the model the paper uses ("Opt-Redo persists both
the data and metadata for a single update using two cache lines, which
wastes memory bandwidth").  The commit waits for the queued log writes to
drain, then persists a commit record.  The home region is updated lazily
by an asynchronous **checkpoint** that applies committed data in place and
truncates the log.

Reads pay for the redo indirection: every LLC miss first consults the
controller's victim table, and hits on committed-but-not-yet-checkpointed
data are served from a DRAM-resident shadow at DRAM latency — Table I's
"High" read latency for redo schemes.

Crash recovery replays the data entries of every transaction whose commit
record is durable, in commit order, and discards the rest.

Paper analogue: WrAP [13] (hardware redo logging through the controller
write queue).  Declared durability discipline: ``log-drain`` — queued
redo-log entries must be explicitly drained before the synchronous commit
record persists; the persist-ordering sanitizer (:mod:`repro.check`)
enforces exactly that edge on every committed transaction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.addr import CACHE_LINE_BYTES, cache_line_base
from repro.common.config import SystemConfig
from repro.memctrl.scheduler import PeriodicTrigger
from repro.nvm.device import NVMDevice
from repro.schemes.base import PersistenceScheme, RecoveryOutcome, SchemeTraits
from repro.schemes.logregion import KIND_COMMIT, KIND_DATA, AppendLog

# Each logged line occupies two cache lines on NVM (data + metadata).
_LOG_ENTRY_BYTES = 2 * CACHE_LINE_BYTES
# Victim-table probe charged on every LLC miss (the redo indirection).
_VICTIM_PROBE_NS = 12.0
# Serving a line from the DRAM-resident redo shadow.
_SHADOW_HIT_NS = 90.0
# Checkpoint before the log passes this fill level.
_LOG_PRESSURE = 0.85


class OptRedoScheme(PersistenceScheme):
    """Hardware redo logging with asynchronous checkpointing."""

    name = "opt-redo"
    traits = SchemeTraits(
        approach="Logging / Redo",
        read_latency="High",
        extra_writes_on_critical_path=True,
        requires_flush_fence=False,
        write_traffic="High",
        durability="log-drain",
    )

    def __init__(self, config: SystemConfig, device: NVMDevice) -> None:
        super().__init__(config, device)
        self.log = AppendLog(
            self.port, config.oop_region_base, config.oop_region_bytes
        )
        # Committed lines not yet checkpointed: line addr -> bytes.
        self._shadow: Dict[int, bytes] = {}
        # Open transactions' write sets: tx_id -> {line addr -> bytes}.
        self._write_sets: Dict[int, Dict[int, bytes]] = {}
        self._checkpoint = PeriodicTrigger(config.hoop.gc.period_ns)
        self.checkpoints = 0
        self.shadow_hits = 0

    # -- transactional API -------------------------------------------------------

    def tx_begin(self, core: int, now_ns: float) -> Tuple[int, float]:
        tx_id, now_ns = super().tx_begin(core, now_ns)
        self._write_sets[tx_id] = {}
        return tx_id, now_ns

    def on_store(
        self,
        core: int,
        tx_id: int,
        addr: int,
        size: int,
        line_addr: int,
        line_data: bytes,
        now_ns: float,
    ) -> float:
        self.stats.tx_stores += 1
        self._write_sets[tx_id][line_addr] = line_data
        return now_ns

    def tx_end(self, core: int, tx_id: int, now_ns: float) -> float:
        write_set = self._write_sets.pop(tx_id, {})
        if not write_set:
            return now_ns
        if self.log.fill_fraction >= _LOG_PRESSURE:
            now_ns = self._run_checkpoint(now_ns, blocking=True)
        # Stream the redo entries through the write queue, drain so every
        # entry is durable before the commit record, then persist it.
        check = self.check
        for line_addr, data in write_set.items():
            self.log.append(
                KIND_DATA,
                tx_id,
                line_addr,
                data,
                now_ns,
                sync=False,
                min_entry_bytes=_LOG_ENTRY_BYTES,
            )
            if check.active:
                check.note_persist(
                    tx_id, "log", line_addr, CACHE_LINE_BYTES, now_ns,
                    sync=False, port=self.port,
                )
        now_ns = self.port.drain(now_ns)
        _, now_ns = self.log.append(
            KIND_COMMIT, tx_id, 0, b"", now_ns, sync=True,
            min_entry_bytes=CACHE_LINE_BYTES,
        )
        if check.active:
            check.note_persist(
                tx_id, "commit", -1, 0, now_ns, sync=True, port=self.port
            )
        self._shadow.update(write_set)
        return now_ns

    # -- read path ---------------------------------------------------------------

    def fill_line(self, line_addr: int, now_ns: float) -> Tuple[bytes, float]:
        line_addr = cache_line_base(line_addr)
        for write_set in self._write_sets.values():
            if line_addr in write_set:
                self.shadow_hits += 1
                return write_set[line_addr], _SHADOW_HIT_NS
        shadow = self._shadow.get(line_addr)
        if shadow is not None:
            self.shadow_hits += 1
            return shadow, _SHADOW_HIT_NS
        data, completion = self.port.read(line_addr, CACHE_LINE_BYTES, now_ns)
        return data, (completion - now_ns) + _VICTIM_PROBE_NS

    def on_evict(
        self,
        line_addr: int,
        data: bytes,
        dirty: bool,
        persistent: bool,
        tx_id: int,
        now_ns: float,
    ) -> None:
        if not dirty:
            return
        if persistent:
            # Redo rule: in-place data must not reach home before commit;
            # the write set / shadow copy already holds these bytes and
            # the checkpoint will apply them.
            return
        self.port.async_write(line_addr, data, now_ns)

    # -- checkpoint ---------------------------------------------------------------

    def tick(self, now_ns: float) -> None:
        if self._checkpoint.due(now_ns):
            self._checkpoint.fire(now_ns)
            self._run_checkpoint(now_ns, blocking=False)

    def _run_checkpoint(self, now_ns: float, *, blocking: bool) -> float:
        """Apply committed shadow lines in place, then truncate the log.

        Open transactions have no log entries yet (redo entries appear at
        commit), so full truncation is always safe once the in-place
        writes are durable.
        """
        for line_addr, data in self._shadow.items():
            self.port.async_write(line_addr, data, now_ns)
        if self._shadow:
            self.checkpoints += 1
        self._shadow.clear()
        drain = self.port.drain(now_ns)
        truncate_done = self.log.truncate(drain)
        return truncate_done if blocking else now_ns

    def quiesce(self, now_ns: float) -> float:
        return self._run_checkpoint(now_ns, blocking=True)

    # -- crash & recovery -----------------------------------------------------------

    def crash(self) -> None:
        self._shadow.clear()
        self._write_sets.clear()

    def recover(
        self, *, threads: int = 1, bandwidth_gb_per_s: Optional[float] = None
    ) -> RecoveryOutcome:
        outcome = RecoveryOutcome(scheme=self.name)
        pending: Dict[int, List] = {}
        committed: List[int] = []
        for entry in self.log.rebuild_and_scan():
            outcome.bytes_scanned += entry.total_bytes
            if entry.kind == KIND_DATA:
                pending.setdefault(entry.tx_id, []).append(entry)
            elif entry.kind == KIND_COMMIT:
                committed.append(entry.tx_id)
        for tx_id in committed:
            for entry in pending.pop(tx_id, []):
                self.device.poke(entry.addr, entry.payload)
                outcome.bytes_written += len(entry.payload)
            outcome.committed_transactions += 1
        outcome.rolled_back_transactions = len(pending)
        self.log.reset()
        nvm = self.config.nvm
        bandwidth = bandwidth_gb_per_s or nvm.bandwidth_gb_per_s
        bytes_per_ns = bandwidth * (1024**3) / 1e9
        outcome.elapsed_ns = (
            outcome.bytes_scanned / max(bytes_per_ns, 1e-9)
            + outcome.bytes_written / max(bytes_per_ns, 1e-9)
            + outcome.committed_transactions * nvm.write_latency_ns
        )
        return outcome

# -- snapshot declarations ----------------------------------------------------
OptRedoScheme.__snapshot_state__ = "__all__"
