"""Opt-Undo: hardware-assisted undo logging (ATOM [24] style).

The defining cost is the **strict persist ordering**: before a line's
first in-place update within a transaction may become durable, a copy of
its *old* value must already be durable in the undo log.  ATOM enforces
the ordering in the memory controller — stores do not stall the CPU, and
log entries are compact (one pre-image line + small header, no fat
metadata line, which is the ~9% traffic edge over Opt-Redo the paper
measures) — but commit still serializes *log drain → in-place data
writes → data drain → commit record*, two full drains where redo pays
one.  That is exactly the Fig. 4a-vs-4b critical-path difference.

Recovery rolls back transactions with no commit record by re-applying
their undo images newest-first.

Paper analogue: ATOM [24] (controller-enforced undo-before-data
ordering).  Declared durability discipline: ``undo-inplace`` — the
``log-drain`` rules plus per-line pre-image ordering: each line's undo
entry must be durable (queued + drained) before its first in-place
write, and the in-place writes drained before the synchronous commit
record.  The persist-ordering sanitizer (:mod:`repro.check`) checks all
three edges per committed transaction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.common.addr import CACHE_LINE_BYTES, cache_line_base
from repro.common.config import SystemConfig
from repro.nvm.device import NVMDevice
from repro.schemes.base import PersistenceScheme, RecoveryOutcome, SchemeTraits
from repro.schemes.logregion import KIND_COMMIT, KIND_DATA, AppendLog

_LOG_ENTRY_BYTES = 2 * CACHE_LINE_BYTES
_LOG_PRESSURE = 0.85


class OptUndoScheme(PersistenceScheme):
    """Hardware undo logging with controller-enforced ordering."""

    name = "opt-undo"
    traits = SchemeTraits(
        approach="Logging / Undo",
        read_latency="Low",
        extra_writes_on_critical_path=True,
        requires_flush_fence=False,
        write_traffic="Medium",
        durability="undo-inplace",
    )

    def __init__(self, config: SystemConfig, device: NVMDevice) -> None:
        super().__init__(config, device)
        self.log = AppendLog(
            self.port, config.oop_region_base, config.oop_region_bytes
        )
        # Per open transaction: lines already undo-logged, and the current
        # (volatile) content of every line it has modified.
        self._logged_lines: Dict[int, Set[int]] = {}
        self._tx_lines: Dict[int, Dict[int, bytes]] = {}
        self._first_offset: Dict[int, int] = {}

    # -- transactional API -------------------------------------------------------

    def tx_begin(self, core: int, now_ns: float) -> Tuple[int, float]:
        tx_id, now_ns = super().tx_begin(core, now_ns)
        self._logged_lines[tx_id] = set()
        self._tx_lines[tx_id] = {}
        return tx_id, now_ns

    def on_store(
        self,
        core: int,
        tx_id: int,
        addr: int,
        size: int,
        line_addr: int,
        line_data: bytes,
        now_ns: float,
    ) -> float:
        self.stats.tx_stores += 1
        if self.log.fill_fraction >= _LOG_PRESSURE:
            # The log can only shrink when transactions commit; all we can
            # do under pressure is drain and truncate released entries.
            now_ns = self._truncate_released(now_ns)
        logged = self._logged_lines[tx_id]
        if line_addr not in logged:
            # Undo-before-data: the pre-image rides the write queue; the
            # memory controller (not the CPU) enforces that it drains
            # before any in-place write of the line — ATOM's core idea,
            # which is why the store itself does not stall.  The pre-image
            # is the durable home copy, snooped from the cache fill.
            old_line = self.device.peek(line_addr, CACHE_LINE_BYTES)
            offset, _ = self.log.append(
                KIND_DATA,
                tx_id,
                line_addr,
                old_line,
                now_ns,
                sync=False,
                min_entry_bytes=_LOG_ENTRY_BYTES,
            )
            self._first_offset.setdefault(tx_id, offset)
            logged.add(line_addr)
            self.stats.ordering_stalls += 1
            if self.check.active:
                self.check.note_persist(
                    tx_id, "undo", line_addr, CACHE_LINE_BYTES, now_ns,
                    sync=False, port=self.port,
                )
        self._tx_lines[tx_id][line_addr] = line_data
        return now_ns

    def tx_end(self, core: int, tx_id: int, now_ns: float) -> float:
        # Strict persist ordering, enforced by the controller: (1) every
        # undo entry durable, (2) then the in-place data writes, (3) then
        # the commit record.  Two drains back-to-back is what makes undo's
        # critical path longer than redo's single drain (Fig. 4a vs 4b).
        lines = self._tx_lines.pop(tx_id, {})
        check = self.check
        now_ns = self.port.drain(now_ns)  # logs-before-data
        for line_addr, data in lines.items():
            self.port.async_write(line_addr, data, now_ns)
            if check.active:
                check.note_persist(
                    tx_id, "data", line_addr, CACHE_LINE_BYTES, now_ns,
                    sync=False, port=self.port,
                )
        now_ns = self.port.drain(now_ns)  # data-before-commit
        _, now_ns = self.log.append(
            KIND_COMMIT, tx_id, 0, b"", now_ns, sync=True,
        )
        if check.active:
            check.note_persist(
                tx_id, "commit", -1, 0, now_ns, sync=True, port=self.port
            )
        self._logged_lines.pop(tx_id, None)
        self._first_offset.pop(tx_id, None)
        return now_ns

    def _truncate_released(self, now_ns: float) -> float:
        upto = min(self._first_offset.values()) if self._first_offset else None
        return self.log.truncate(now_ns, upto=upto)

    # -- read path -----------------------------------------------------------------

    def fill_line(self, line_addr: int, now_ns: float) -> Tuple[bytes, float]:
        line_addr = cache_line_base(line_addr)
        # In-place updates may still be cache-volatile; an evicted line's
        # newest value is in the open transaction's tracking table.
        for lines in self._tx_lines.values():
            if line_addr in lines:
                return lines[line_addr], 0.0
        data, completion = self.port.read(line_addr, CACHE_LINE_BYTES, now_ns)
        return data, completion - now_ns

    def on_evict(
        self,
        line_addr: int,
        data: bytes,
        dirty: bool,
        persistent: bool,
        tx_id: int,
        now_ns: float,
    ) -> None:
        if not dirty:
            return
        if persistent:
            # Mid-transaction: the open write set holds the bytes and the
            # commit writeback will persist them (the undo entry is already
            # durable, so even an eager write would be safe).  Post-commit:
            # home was updated at tx_end.  Either way, drop.
            return
        self.port.async_write(line_addr, data, now_ns)

    # -- background --------------------------------------------------------------

    def tick(self, now_ns: float) -> None:
        if self.log.fill_fraction >= 0.5:
            self._truncate_released(now_ns)

    def quiesce(self, now_ns: float) -> float:
        return self._truncate_released(self.port.drain(now_ns))

    # -- crash & recovery -----------------------------------------------------------

    def crash(self) -> None:
        self._logged_lines.clear()
        self._tx_lines.clear()
        self._first_offset.clear()

    def recover(
        self, *, threads: int = 1, bandwidth_gb_per_s: Optional[float] = None
    ) -> RecoveryOutcome:
        outcome = RecoveryOutcome(scheme=self.name)
        undo_images: Dict[int, List] = {}
        committed: Set[int] = set()
        for entry in self.log.rebuild_and_scan():
            outcome.bytes_scanned += entry.total_bytes
            if entry.kind == KIND_DATA:
                undo_images.setdefault(entry.tx_id, []).append(entry)
            elif entry.kind == KIND_COMMIT:
                committed.add(entry.tx_id)
        for tx_id, entries in undo_images.items():
            if tx_id in committed:
                outcome.committed_transactions += 1
                continue
            # Roll back newest-first so earlier pre-images win.
            for entry in reversed(entries):
                self.device.poke(entry.addr, entry.payload)
                outcome.bytes_written += len(entry.payload)
            outcome.rolled_back_transactions += 1
        self.log.reset()
        nvm = self.config.nvm
        bandwidth = bandwidth_gb_per_s or nvm.bandwidth_gb_per_s
        bytes_per_ns = bandwidth * (1024**3) / 1e9
        outcome.elapsed_ns = (
            outcome.bytes_scanned / max(bytes_per_ns, 1e-9)
            + outcome.bytes_written / max(bytes_per_ns, 1e-9)
        )
        return outcome

# -- snapshot declarations ----------------------------------------------------
OptUndoScheme.__snapshot_state__ = "__all__"
