"""A deterministic skip list, LSNVMM's address-mapping index.

LSNVMM maps virtual addresses to log offsets through a tree-shaped index;
the paper's LSM baseline implements it "using skip list [3], and cache[s]
it in DRAM for fast index lookup".  The performance-relevant property is
the **number of node hops per operation** — that is what turns into read
latency in the LSM scheme — so the implementation counts hops explicitly
and exposes them to the caller.

Determinism: node heights come from a per-instance xorshift PRNG seeded at
construction, so identical operation sequences build identical indexes and
experiments reproduce exactly.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, Tuple, TypeVar

V = TypeVar("V")

_MAX_LEVEL = 24


class _Node(Generic[V]):
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: int, value: Optional[V], level: int) -> None:
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node[V]"]] = [None] * level


class SkipList(Generic[V]):
    """Ordered int-keyed map with hop counting."""

    def __init__(self, seed: int = 0x5EED) -> None:
        self._head: _Node[V] = _Node(-1, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0
        self._state = (seed or 1) & 0xFFFFFFFF
        self.hops = 0  # total node traversals (the latency driver)

    # -- xorshift32: deterministic level choice ------------------------------------

    def _random_level(self) -> int:
        x = self._state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._state = x
        level = 1
        while x & 1 and level < _MAX_LEVEL:
            level += 1
            x >>= 1
        return level

    # -- core operations -----------------------------------------------------------

    def _find_path(self, key: int) -> List[_Node[V]]:
        """Predecessors at every level, counting hops."""
        update: List[_Node[V]] = [self._head] * _MAX_LEVEL
        node = self._head
        hops = 0
        for level in range(self._level - 1, -1, -1):
            nxt = node.forward[level]
            while nxt is not None and nxt.key < key:
                node = nxt
                nxt = node.forward[level]
                hops += 1
            update[level] = node
            hops += 1
        self.hops += hops
        return update

    def insert(self, key: int, value: V) -> int:
        """Insert or replace; returns hops spent."""
        before = self.hops
        update = self._find_path(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return self.hops - before
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for i in range(level):
            node.forward[i] = update[i].forward[i]
            update[i].forward[i] = node
        self._size += 1
        return self.hops - before

    def lookup(self, key: int) -> Tuple[Optional[V], int]:
        """Exact-match search; returns ``(value or None, hops spent)``."""
        before = self.hops
        update = self._find_path(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            return candidate.value, self.hops - before
        return None, self.hops - before

    def floor(self, key: int) -> Tuple[Optional[int], Optional[V], int]:
        """Largest key <= ``key``; returns ``(key, value, hops)``."""
        before = self.hops
        update = self._find_path(key)
        candidate = update[0].forward[0]
        if candidate is not None and candidate.key == key:
            return candidate.key, candidate.value, self.hops - before
        pred = update[0]
        if pred is self._head:
            return None, None, self.hops - before
        return pred.key, pred.value, self.hops - before

    def remove(self, key: int) -> Tuple[bool, int]:
        """Delete; returns ``(found, hops spent)``."""
        before = self.hops
        update = self._find_path(key)
        candidate = update[0].forward[0]
        if candidate is None or candidate.key != key:
            return False, self.hops - before
        for i in range(len(candidate.forward)):
            if update[i].forward[i] is candidate:
                update[i].forward[i] = candidate.forward[i]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._size -= 1
        return True, self.hops - before

    def range_items(
        self, low: int, high: int
    ) -> Tuple[List[Tuple[int, V]], int]:
        """All ``(key, value)`` with ``low <= key < high``; plus hops.

        One descent locates the range start; level-0 successor hops walk
        it — the extent-scan pattern LSNVMM's read path uses for a cache
        line's worth of words.
        """
        before = self.hops
        update = self._find_path(low)
        node = update[0].forward[0]
        out: List[Tuple[int, V]] = []
        while node is not None and node.key < high:
            out.append((node.key, node.value))
            node = node.forward[0]
            self.hops += 1
        return out, self.hops - before

    # -- iteration / inspection -----------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[Tuple[int, V]]:
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def keys(self) -> Iterator[int]:
        for key, _ in self:
            yield key

    def clear(self) -> None:
        self._head = _Node(-1, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0

    # -- snapshots -------------------------------------------------------------

    def __snapshot_clone__(self, memo: dict, clone) -> "SkipList":
        """Iterative clone for :mod:`repro.snapshot`.

        One level-0 walk recreates every node and wires all forward
        chains (a node of height ``h`` is the next element of chains
        ``0..h-1``), avoiding both per-node engine dispatch and the deep
        recursion a generic walk of the forward lists would need.
        """
        cls = self.__class__
        out = cls.__new__(cls)
        memo[id(self)] = out
        out._level = self._level
        out._size = self._size
        out._state = self._state
        out.hops = self.hops
        head = self._head
        new_head = _Node(-1, None, len(head.forward))
        memo[id(head)] = new_head
        out._head = new_head
        # Last cloned node seen per level; its forward[i] is patched when
        # the next node of height > i appears (tails stay None).
        prev: List[_Node] = [new_head] * len(head.forward)
        node = head.forward[0]
        while node is not None:
            height = len(node.forward)
            twin = _Node(node.key, clone(node.value), height)
            memo[id(node)] = twin
            for i in range(height):
                prev[i].forward[i] = twin
                prev[i] = twin
            node = node.forward[0]
        return out


# -- snapshot declarations ----------------------------------------------------
# _Node keeps a generic fallback spec: nodes are normally cloned by
# SkipList.__snapshot_clone__ above, but a node reached another way
# (tests) must still clone correctly.
_Node.__snapshot_state__ = "__all__"
