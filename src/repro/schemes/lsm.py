"""LSM: software log-structured NVM (LSNVMM [17]).

All transactional writes are appended to a log; a DRAM-cached skip list
maps home word addresses to their newest log location.  The decisive cost
is the **read path**: every LLC miss that hits logged data pays an
O(log N) index walk — the paper's "multiple memory accesses to obtain the
data location" — plus the log read itself.  Writes are cheap-ish: one
log append per store (word data + software header, no packing), with a
commit record at ``Tx_end``.

GC runs at the same cadence as HOOP's (the paper equalizes the
frequencies for fairness): committed log entries are coalesced per word
and the newest versions migrated to their home addresses, after which
index entries are dropped and the log truncated.

Recovery scans the log, replays committed transactions in commit order,
and rebuilds an empty index (the DRAM index died with the power).

Paper analogue: LSNVMM [17] (log-structured NVM).  Declared durability
discipline: ``log-drain`` — here trivially satisfied: the whole
transaction is one synchronous checksummed log append that doubles as
the commit record, so data and commit become durable in a single fenced
persist.  The persist-ordering sanitizer (:mod:`repro.check`) still
checks coverage and the synchronous commit on every transaction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.common.addr import (
    CACHE_LINE_BYTES,
    WORD_BYTES,
    cache_line_base,
    iter_words,
)
from repro.common.config import SystemConfig
from repro.memctrl.scheduler import PeriodicTrigger
from repro.nvm.device import NVMDevice
from repro.schemes.base import PersistenceScheme, RecoveryOutcome, SchemeTraits
from repro.schemes.logregion import KIND_COMMIT, KIND_DATA, AppendLog
from repro.schemes.skiplist import SkipList

# DRAM access cost per skip-list hop: the index is a pointer chase through
# DRAM-resident nodes (upper levels are effectively cache-resident).
_HOP_NS = 5.0
# Software bookkeeping per logged store (allocation, header fill).
_APPEND_SW_NS = 2.0
_LOG_PRESSURE = 0.85


class LSMScheme(PersistenceScheme):
    """Append-everything log with a DRAM skip-list index."""

    name = "lsm"
    traits = SchemeTraits(
        approach="Log-structured NVM",
        read_latency="High",
        extra_writes_on_critical_path=False,
        requires_flush_fence=False,
        write_traffic="Medium",
        durability="log-drain",
    )

    def __init__(self, config: SystemConfig, device: NVMDevice) -> None:
        super().__init__(config, device)
        self.log = AppendLog(
            self.port, config.oop_region_base, config.oop_region_bytes
        )
        # word addr -> (value, commit seq, tx_id); the DRAM index.
        self.index: SkipList[Tuple[bytes, int, int]] = SkipList(seed=0xC0FFEE)
        self._open_words: Dict[int, Dict[int, bytes]] = {}
        # Streaming extents per open transaction: consecutive stores to
        # adjacent addresses coalesce into one log record, as a write()
        # style interface would see them; scattered stores do not.
        self._open_extents: Dict[int, List[List]] = {}
        self._first_offset: Dict[int, int] = {}
        self._committed_words: Dict[int, List[Tuple[int, bytes]]] = {}
        self._commit_order: List[int] = []
        self._commit_seq = 0
        self._gc_trigger = PeriodicTrigger(config.hoop.gc.period_ns)
        self.gc_passes = 0
        self.words_migrated = 0
        self.words_scanned = 0

    # -- transactional API -------------------------------------------------------

    def tx_begin(self, core: int, now_ns: float) -> Tuple[int, float]:
        tx_id, now_ns = super().tx_begin(core, now_ns)
        self._open_words[tx_id] = {}
        self._open_extents[tx_id] = []
        return tx_id, now_ns

    def on_store(
        self,
        core: int,
        tx_id: int,
        addr: int,
        size: int,
        line_addr: int,
        line_data: bytes,
        now_ns: float,
    ) -> float:
        self.stats.tx_stores += 1
        words = self._open_words[tx_id]
        extents = self._open_extents[tx_id]
        for word_addr in iter_words(addr, size):
            offset = word_addr - line_addr
            value = line_data[offset : offset + WORD_BYTES]
            words[word_addr] = value
            if extents and word_addr == (
                extents[-1][0] + 8 * len(extents[-1][1])
            ):
                extents[-1][1].append(value)
            else:
                extents.append([word_addr, [value]])
            now_ns += _APPEND_SW_NS
        return now_ns

    def tx_end(self, core: int, tx_id: int, now_ns: float) -> float:
        words_map = self._open_words.get(tx_id, {})
        if words_map:
            if self.log.fill_fraction >= _LOG_PRESSURE:
                now_ns = self._run_gc(now_ns, blocking=True)
            # LSNVMM batches a transaction's updates into one log entry of
            # *extents*: contiguous word runs, each behind a 32-byte
            # header (base address, length, version, index back-pointer —
            # the log node the DRAM skip list points at).  The entry's own
            # checksum makes the append the atomic commit record.
            payload = bytearray()
            for run_start, run_values in self._open_extents.get(tx_id, []):
                payload += run_start.to_bytes(8, "little")
                payload += len(run_values).to_bytes(8, "little")
                payload += bytes(16)  # version + index back-pointer
                payload += b"".join(run_values)
            _, now_ns = self.log.append(
                KIND_COMMIT, tx_id, 0, bytes(payload), now_ns, sync=True
            )
            if self.check.active:
                # One sync append carries every extent *and* is the commit
                # record — data and commit are durable together.
                for run_start, run_values in self._open_extents.get(
                    tx_id, []
                ):
                    self.check.note_persist(
                        tx_id, "log", run_start, 8 * len(run_values),
                        now_ns, sync=True, port=self.port,
                    )
                self.check.note_persist(
                    tx_id, "commit", -1, 0, now_ns, sync=True,
                    port=self.port,
                )
        words = self._open_words.pop(tx_id, {})
        self._open_extents.pop(tx_id, None)
        self._first_offset.pop(tx_id, None)
        if words:
            self._commit_seq += 1
            seq = self._commit_seq
            items = list(words.items())
            self._committed_words[tx_id] = items
            self._commit_order.append(tx_id)
            charged_descent = False
            for word_addr, value in items:
                hops = self.index.insert(word_addr, (value, seq, tx_id))
                if charged_descent:
                    now_ns += _HOP_NS  # neighbors: level-0 hops
                else:
                    now_ns += hops * _HOP_NS
                    charged_descent = True
        return now_ns

    # -- read path ---------------------------------------------------------------

    def fill_line(self, line_addr: int, now_ns: float) -> Tuple[bytes, float]:
        line_addr = cache_line_base(line_addr)
        overlays: List[Tuple[int, bytes]] = []
        extra = 0.0
        # Open transactions first (their words are not indexed yet).
        for words in self._open_words.values():
            for word_addr, value in words.items():
                if cache_line_base(word_addr) == line_addr:
                    overlays.append((word_addr, value))
        # The index walk: one full O(log N) descent finds the line's
        # extent; sibling words are reached by level-0 successor hops.
        items, hops = self.index.range_items(
            line_addr, line_addr + CACHE_LINE_BYTES
        )
        extra += hops * _HOP_NS
        for word_addr, value in items:
            overlays.append((word_addr, value[0]))
        data, completion = self.port.read(line_addr, CACHE_LINE_BYTES, now_ns)
        line = bytearray(data)
        for word_addr, value in overlays:
            offset = word_addr - line_addr
            line[offset : offset + WORD_BYTES] = value
        return bytes(line), (completion - now_ns) + extra

    def on_evict(
        self,
        line_addr: int,
        data: bytes,
        dirty: bool,
        persistent: bool,
        tx_id: int,
        now_ns: float,
    ) -> None:
        if not dirty:
            return
        if persistent:
            # Log-structured rule: data lives in the log until GC migrates
            # it; in-place eviction writes would race the log's authority.
            return
        self.port.async_write(line_addr, data, now_ns)

    # -- GC -----------------------------------------------------------------------

    def tick(self, now_ns: float) -> None:
        if self._gc_trigger.due(now_ns):
            self._gc_trigger.fire(now_ns)
            self._run_gc(now_ns, blocking=False)

    def quiesce(self, now_ns: float) -> float:
        return self._run_gc(now_ns, blocking=True)

    def _run_gc(self, now_ns: float, *, blocking: bool) -> float:
        """Coalesce committed words, migrate home, drop index entries."""
        if not self._commit_order:
            return now_ns
        self.gc_passes += 1
        winners: Dict[int, bytes] = {}
        migrated_txs = list(self._commit_order)
        for tx_id in reversed(migrated_txs):
            for word_addr, value in self._committed_words.pop(tx_id, []):
                self.words_scanned += 1
                if word_addr not in winners:
                    winners[word_addr] = value
        migrated_set = set(migrated_txs)
        for word_addr, value in winners.items():
            self.port.async_write(word_addr, value, now_ns)
            current, hops = self.index.lookup(word_addr)
            if current is not None and current[2] in migrated_set:
                self.index.remove(word_addr)
        self.words_migrated += len(winners)
        self._commit_order.clear()
        drained = self.port.drain(now_ns)
        upto = min(self._first_offset.values()) if self._first_offset else None
        done = self.log.truncate(drained, upto=upto)
        return done if blocking else now_ns

    # -- crash & recovery -----------------------------------------------------------

    def crash(self) -> None:
        self.index.clear()
        self._open_words.clear()
        self._open_extents.clear()
        self._first_offset.clear()
        self._committed_words.clear()
        self._commit_order.clear()

    def recover(
        self, *, threads: int = 1, bandwidth_gb_per_s: Optional[float] = None
    ) -> RecoveryOutcome:
        outcome = RecoveryOutcome(scheme=self.name)
        for entry in self.log.rebuild_and_scan():
            outcome.bytes_scanned += entry.total_bytes
            if entry.kind != KIND_COMMIT:
                continue
            # Batched extents; the entry's own checksum made its append
            # atomic, so a decoded entry is a committed transaction.
            payload = entry.payload
            i = 0
            while i + 32 <= len(payload):
                base = int.from_bytes(payload[i : i + 8], "little")
                count = int.from_bytes(payload[i + 8 : i + 16], "little")
                i += 32
                for w in range(count):
                    if i + 8 > len(payload):
                        break
                    self.device.poke(base + w * 8, payload[i : i + 8])
                    outcome.bytes_written += 8
                    i += 8
            outcome.committed_transactions += 1
        self.log.reset()
        nvm = self.config.nvm
        bandwidth = bandwidth_gb_per_s or nvm.bandwidth_gb_per_s
        bytes_per_ns = bandwidth * (1024**3) / 1e9
        outcome.elapsed_ns = (
            outcome.bytes_scanned + outcome.bytes_written
        ) / max(bytes_per_ns, 1e-9)
        return outcome

# -- snapshot declarations ----------------------------------------------------
LSMScheme.__snapshot_state__ = "__all__"
