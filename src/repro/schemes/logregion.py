"""A shared circular on-NVM append log for the logging baselines.

Opt-Redo, Opt-Undo, LSM, and OSP's flip log all need a durable,
sequentially-written log with crash-scannable entries.  ``AppendLog``
provides:

* fixed-format entries — ``(kind, tx_id, target addr, payload)`` with a
  magic byte and CRC so a post-crash scan stops at the first torn entry;
* a **circular** data area addressed by monotonically increasing
  *logical* offsets (physical position = offset mod capacity), so space
  reclaimed by truncation behind still-live entries is immediately
  reusable — exactly how hardware log buffers behave;
* a persistent header recording the logical start offset, advanced by
  truncation (checkpointing);
* per-lap magic salting, so a crash scan can never mistake an entry from
  a previous trip around the buffer for a live one;
* an explicit :class:`~repro.common.errors.CapacityError` when live data
  would overrun the buffer (a baseline outran its checkpointer).

The log lives in the same reserved NVM carve HOOP uses for its OOP
region, so every scheme pays for persistence metadata out of the same
capacity budget.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.addr import CACHE_LINE_BYTES, cache_line_base
from repro.common.errors import CapacityError, CorruptionError
from repro.memctrl.port import MemoryPort
from repro.memctrl.scheduler import PeriodicTrigger
from repro.schemes.base import PersistenceScheme, RecoveryOutcome, SchemeTraits

_MAGIC = 0xA7
# Entry kinds.
KIND_DATA = 1  # payload = new data (redo) or old data (undo)
KIND_COMMIT = 2  # transaction commit record
KIND_WRAP = 3  # tail filler: the next entry starts at physical 0

# header: magic B, kind B, stride(8B units) H, tx_id I, addr Q,
# payload size I, crc I  => 24 bytes, 8-aligned.
_ENTRY_HEADER = struct.Struct("<BBHIQII")
_LOG_HEADER = struct.Struct("<QQI")  # logical start, reserved, crc
_LOG_HEADER_BYTES = 64


@dataclass(frozen=True)
class LogEntry:
    kind: int
    tx_id: int
    addr: int
    payload: bytes
    offset: int  # logical byte offset within the log's data area

    @property
    def total_bytes(self) -> int:
        # Equals the append stride: header plus 8-padded payload.
        return _ENTRY_HEADER.size + _pad8(len(self.payload))


def _pad8(n: int) -> int:
    return (n + 7) & ~7


class AppendLog:
    """Circular append-only durable log with truncation and crash scan."""

    def __init__(self, port: MemoryPort, base: int, capacity: int) -> None:
        if capacity <= _LOG_HEADER_BYTES + 4 * _ENTRY_HEADER.size:
            raise CapacityError("log region too small")
        self.port = port
        self.base = base
        self.capacity = capacity
        self._data_base = base + _LOG_HEADER_BYTES
        self._data_bytes = (capacity - _LOG_HEADER_BYTES) & ~7
        self._start = 0  # logical offset of oldest live entry
        self._cursor = 0  # logical append offset
        self.appends = 0
        self.truncations = 0

    # -- geometry -----------------------------------------------------------------

    def _physical(self, logical: int) -> int:
        return self._data_base + (logical % self._data_bytes)

    def _magic_for(self, logical: int) -> int:
        lap = logical // self._data_bytes
        return _MAGIC ^ (lap & 0x0F)

    @property
    def live_bytes(self) -> int:
        return self._cursor - self._start

    @property
    def fill_fraction(self) -> float:
        return self.live_bytes / self._data_bytes

    # -- append path ----------------------------------------------------------------

    def _emit(self, raw: bytes, now_ns: float, *, sync: bool) -> float:
        target = self._physical(self._cursor)
        self._cursor += len(raw)
        if sync:
            return self.port.sync_write(target, raw, now_ns)
        return self.port.async_write(target, raw, now_ns)

    def _pack(
        self, logical: int, kind: int, tx_id: int, addr: int,
        payload: bytes, stride: int,
    ) -> bytes:
        magic = self._magic_for(logical)
        stride_units = stride // 8
        body = _ENTRY_HEADER.pack(
            magic, kind, stride_units, tx_id, addr, len(payload), 0
        )
        crc = zlib.crc32(body[:-4] + payload) & 0xFFFFFFFF
        body = _ENTRY_HEADER.pack(
            magic, kind, stride_units, tx_id, addr, len(payload), crc
        )
        raw = body + payload
        return raw + b"\0" * (stride - len(raw))

    def append(
        self,
        kind: int,
        tx_id: int,
        addr: int,
        payload: bytes,
        now_ns: float,
        *,
        sync: bool,
        min_entry_bytes: int = 0,
    ) -> Tuple[int, float]:
        """Write one entry; returns ``(logical offset, completion time)``.

        ``min_entry_bytes`` lets a baseline model its real hardware write
        granularity (e.g. Opt-Redo's two full cache lines per update) —
        the entry is padded to that size on NVM.
        """
        stride = max(
            _ENTRY_HEADER.size + _pad8(len(payload)), _pad8(min_entry_bytes)
        )
        tail_room = self._data_bytes - (self._cursor % self._data_bytes)
        wrap_pad = tail_room if tail_room < stride else 0
        if self.live_bytes + wrap_pad + stride > self._data_bytes:
            raise CapacityError(
                "log region full; checkpoint/truncate required"
            )
        if wrap_pad:
            if wrap_pad >= _ENTRY_HEADER.size:
                filler = self._pack(
                    self._cursor, KIND_WRAP, 0, 0, b"", wrap_pad
                )
                self._emit(filler, now_ns, sync=False)
            else:
                self._cursor += wrap_pad  # too small even for a header
        offset = self._cursor
        raw = self._pack(offset, kind, tx_id, addr, payload, stride)
        completion = self._emit(raw, now_ns, sync=sync)
        self.appends += 1
        return offset, completion

    def truncate(self, now_ns: float, upto: Optional[int] = None) -> float:
        """Advance the persistent start pointer.

        ``upto`` bounds the truncation (logical offset of the oldest entry
        that must survive — e.g. the first entry of a still-open
        transaction); the default reclaims everything appended so far.
        """
        target = self._cursor if upto is None else upto
        if target < self._start or target > self._cursor:
            raise CapacityError(
                f"truncate target {target} outside live range "
                f"[{self._start}, {self._cursor}]"
            )
        self._start = target
        self.truncations += 1
        return self._persist_header(now_ns)

    def _persist_header(self, now_ns: float) -> float:
        body = _LOG_HEADER.pack(self._start, 0, 0)
        crc = zlib.crc32(body[:-4]) & 0xFFFFFFFF
        body = _LOG_HEADER.pack(self._start, 0, crc)
        return self.port.sync_write(self.base, body, now_ns)

    # -- crash scanning ---------------------------------------------------------

    def crash(self) -> None:
        """Nothing volatile to lose: state is re-derived by scanning."""

    def rebuild_and_scan(self) -> Iterator[LogEntry]:
        """Post-crash: read the header, then yield live entries in order.

        Stops at the first entry whose magic or CRC fails — everything at
        and beyond it was mid-write (or from a previous lap) when power
        failed.
        """
        device = self.port.device
        header = device.peek(self.base, _LOG_HEADER.size)
        try:
            start, _, crc = _LOG_HEADER.unpack(header)
        except struct.error as exc:  # pragma: no cover - fixed-size read
            raise CorruptionError("log header unreadable") from exc
        body = _LOG_HEADER.pack(start, 0, 0)
        if crc != zlib.crc32(body[:-4]) & 0xFFFFFFFF:
            start = 0  # never persisted: log was empty at crash time
        cursor = start
        scanned = 0
        # Chunked reads: the scan walks the data area sequentially, so
        # per-entry peeks are batched into page-sized ones.  peek() has no
        # timing/stats/fault side effects, so over-reading past the live
        # tail changes nothing observable.
        data_end = self._data_base + self._data_bytes
        chunk_base = -1
        chunk = b""

        def _fetch(phys: int, size: int) -> bytes:
            nonlocal chunk_base, chunk
            offset = phys - chunk_base
            if chunk_base < 0 or offset < 0 or offset + size > len(chunk):
                span = max(size, 4096)
                span = min(span, data_end - phys)
                if span < size:  # corrupt size field past the wrap point
                    return device.peek(phys, size)
                chunk = device.peek(phys, span)
                chunk_base = phys
                offset = 0
            return chunk[offset : offset + size]

        # Hot loop: locals for every per-entry attribute/function lookup
        # (this scan runs once per crash case in the sweep).
        data_bytes = self._data_bytes
        data_base = self._data_base
        header_size = _ENTRY_HEADER.size
        unpack = _ENTRY_HEADER.unpack
        crc32 = zlib.crc32
        while scanned < data_bytes:
            logical = cursor % data_bytes
            tail_room = data_bytes - logical
            if tail_room < header_size:
                cursor += tail_room
                scanned += tail_room
                continue
            phys = data_base + logical
            raw = _fetch(phys, header_size)
            magic, kind, stride_units, tx_id, addr, size, crc = unpack(raw)
            if magic != _MAGIC ^ ((cursor // data_bytes) & 0x0F):
                break
            if stride_units == 0:
                break
            stride = stride_units * 8
            if stride > tail_room and kind != KIND_WRAP:
                break  # an entry never straddles the wrap point
            if size:
                payload = _fetch(phys + header_size, size)
            else:
                payload = b""
            # The crc occupies the header's last 4 bytes, so the
            # zero-crc header _pack() checksummed is just raw[:-4] —
            # no per-entry repack needed.
            if crc != crc32(raw[:-4] + payload) & 0xFFFFFFFF:
                break
            if kind != KIND_WRAP:
                yield LogEntry(kind, tx_id, addr, payload, cursor)
            cursor += stride
            scanned += stride
        self._start = start
        self._cursor = cursor

    def reset(self, now_ns: float = 0.0) -> None:
        """Post-recovery: restart the log empty (fresh lap).

        Idempotent: when the log is already empty at a lap boundary —
        the state every completed ``reset`` leaves behind, and what a
        re-run of recovery scans back — there is nothing stale reachable
        under this lap's magic salt, so advancing another lap would only
        dirty the durable header.  Recovery must be re-runnable with
        bit-identical durable state (the nested-fault sweep's
        idempotence oracle), so skip the rewrite.
        """
        if self._start == self._cursor and self._cursor % self._data_bytes == 0:
            return
        lap = self._cursor // self._data_bytes + 1
        self._start = self._cursor = lap * self._data_bytes
        self._persist_header(now_ns)


# -- the log-region scheme ---------------------------------------------------------

# Extra read latency for the log-region indirection: every LLC miss
# probes the overlay index before touching home.
_INDEX_PROBE_NS = 15.0
# Serving a line from the DRAM-resident overlay.
_OVERLAY_HIT_NS = 90.0
# Checkpoint before the log passes this fill level.
_LOG_PRESSURE = 0.85


class LogRegionScheme(PersistenceScheme):
    """Word-granular log-region persistence (eager redo streaming).

    The design point between Opt-Redo and LSM: like a software
    log-region allocator, every transactional store is streamed to the
    durable log *eagerly* at word granularity — a 32-byte entry for an
    8-byte store, not Opt-Redo's two full cache lines — so commit only
    has to drain the queue and persist a commit record.  The home region
    is updated lazily by a periodic checkpoint that applies committed
    words in place and truncates the log behind the oldest still-open
    transaction.

    Reads pay for the indirection: updated-but-not-checkpointed content
    is served from a DRAM-resident overlay, and every miss charges an
    index probe (Table I's "High" read latency for log-structured
    schemes).

    Recovery replays the data entries of every transaction whose commit
    record survived the crash scan, in commit order, and discards the
    rest — eagerly-streamed entries of uncommitted transactions are
    garbage the scan's CRC/commit filtering ignores.

    Paper analogue: a hybrid of WrAP-style hardware redo [13] and
    LSNVMM's word-granular log [17] (no single-paper counterpart).
    Declared durability discipline: ``log-drain`` — the eagerly queued
    word entries must be drained before the synchronous commit record;
    the persist-ordering sanitizer (:mod:`repro.check`) enforces that
    fence edge per committed transaction.
    """

    name = "logregion"
    traits = SchemeTraits(
        approach="Logging / word-granular log region",
        read_latency="High",
        extra_writes_on_critical_path=True,
        requires_flush_fence=False,
        write_traffic="Medium",
        durability="log-drain",
    )

    def __init__(self, config, device) -> None:
        super().__init__(config, device)
        self.log = AppendLog(
            self.port, config.oop_region_base, config.oop_region_bytes
        )
        # Latest full content of every line touched since its last
        # checkpoint (committed or in-flight) — the read overlay.
        self._overlay: Dict[int, bytes] = {}
        # Committed-but-not-checkpointed stores: addr -> bytes.
        self._home_pending: Dict[int, bytes] = {}
        # Open transactions: tx_id -> (first log offset, [(addr, data)]).
        self._open: Dict[int, Tuple[int, List[Tuple[int, bytes]]]] = {}
        self._checkpoint = PeriodicTrigger(config.hoop.gc.period_ns)
        self.checkpoints = 0
        self.overlay_hits = 0

    # -- transactional API -------------------------------------------------------

    def tx_begin(self, core: int, now_ns: float):
        tx_id, now_ns = super().tx_begin(core, now_ns)
        self._open[tx_id] = (-1, [])
        return tx_id, now_ns

    def on_store(
        self,
        core: int,
        tx_id: int,
        addr: int,
        size: int,
        line_addr: int,
        line_data: bytes,
        now_ns: float,
    ) -> float:
        self.stats.tx_stores += 1
        if self.log.fill_fraction >= _LOG_PRESSURE:
            now_ns = self._run_checkpoint(now_ns, blocking=True)
        payload = line_data[addr - line_addr : addr - line_addr + size]
        offset, _ = self.log.append(
            KIND_DATA, tx_id, addr, payload, now_ns, sync=False
        )
        if self.check.active:
            self.check.note_persist(
                tx_id, "log", addr, size, now_ns, sync=False,
                port=self.port,
            )
        first, writes = self._open[tx_id]
        if first < 0:
            first = offset
        writes.append((addr, payload))
        self._open[tx_id] = (first, writes)
        self._overlay[line_addr] = line_data
        return now_ns

    def tx_end(self, core: int, tx_id: int, now_ns: float) -> float:
        _, writes = self._open.pop(tx_id, (-1, []))
        if not writes:
            return now_ns
        # Data entries are already streaming through the write queue;
        # drain so they are durable before the commit record lands.
        now_ns = self.port.drain(now_ns)
        _, now_ns = self.log.append(
            KIND_COMMIT, tx_id, 0, b"", now_ns, sync=True
        )
        if self.check.active:
            self.check.note_persist(
                tx_id, "commit", -1, 0, now_ns, sync=True, port=self.port
            )
        self._home_pending.update(writes)
        return now_ns

    # -- read path ---------------------------------------------------------------

    def fill_line(self, line_addr: int, now_ns: float):
        line_addr = cache_line_base(line_addr)
        cached = self._overlay.get(line_addr)
        if cached is not None:
            self.overlay_hits += 1
            return cached, _OVERLAY_HIT_NS
        data, completion = self.port.read(
            line_addr, CACHE_LINE_BYTES, now_ns
        )
        return data, (completion - now_ns) + _INDEX_PROBE_NS

    def on_evict(
        self,
        line_addr: int,
        data: bytes,
        dirty: bool,
        persistent: bool,
        tx_id: int,
        now_ns: float,
    ) -> None:
        if not dirty:
            return
        if persistent:
            # Home must keep the pre-transaction content until the
            # checkpoint applies committed words; the overlay already
            # holds these bytes for re-fill.
            return
        self.port.async_write(line_addr, data, now_ns)

    # -- checkpoint ---------------------------------------------------------------

    def tick(self, now_ns: float) -> None:
        if self._checkpoint.due(now_ns):
            self._checkpoint.fire(now_ns)
            self._run_checkpoint(now_ns, blocking=False)

    def _run_checkpoint(self, now_ns: float, *, blocking: bool) -> float:
        """Apply committed stores home, truncate behind open transactions."""
        for addr, data in self._home_pending.items():
            self.port.async_write(addr, data, now_ns)
        if self._home_pending:
            self.checkpoints += 1
        self._home_pending.clear()
        self._overlay.clear()
        drain = self.port.drain(now_ns)
        open_firsts = [f for f, _ in self._open.values() if f >= 0]
        upto = min(open_firsts) if open_firsts else None
        truncate_done = self.log.truncate(drain, upto=upto)
        return truncate_done if blocking else now_ns

    def quiesce(self, now_ns: float) -> float:
        return self._run_checkpoint(now_ns, blocking=True)

    # -- crash & recovery -----------------------------------------------------------

    def crash(self) -> None:
        self._overlay.clear()
        self._home_pending.clear()
        self._open.clear()

    def recover(self, *, threads: int = 1, bandwidth_gb_per_s=None):
        outcome = RecoveryOutcome(scheme=self.name)
        pending: Dict[int, List[LogEntry]] = {}
        committed: List[int] = []
        for entry in self.log.rebuild_and_scan():
            outcome.bytes_scanned += entry.total_bytes
            if entry.kind == KIND_DATA:
                pending.setdefault(entry.tx_id, []).append(entry)
            elif entry.kind == KIND_COMMIT:
                committed.append(entry.tx_id)
        for tx_id in committed:
            for entry in pending.pop(tx_id, []):
                self.device.poke(entry.addr, entry.payload)
                outcome.bytes_written += len(entry.payload)
            outcome.committed_transactions += 1
        outcome.rolled_back_transactions = len(pending)
        self.log.reset()
        nvm = self.config.nvm
        bandwidth = bandwidth_gb_per_s or nvm.bandwidth_gb_per_s
        bytes_per_ns = bandwidth * (1024**3) / 1e9
        outcome.elapsed_ns = (
            outcome.bytes_scanned / max(bytes_per_ns, 1e-9)
            + outcome.bytes_written / max(bytes_per_ns, 1e-9)
            + outcome.committed_transactions * nvm.write_latency_ns
        )
        return outcome

# -- snapshot declarations ----------------------------------------------------
LogEntry.__snapshot_state__ = "__atom__"
AppendLog.__snapshot_state__ = "__all__"
LogRegionScheme.__snapshot_state__ = "__all__"
