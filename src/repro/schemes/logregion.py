"""A shared circular on-NVM append log for the logging baselines.

Opt-Redo, Opt-Undo, LSM, and OSP's flip log all need a durable,
sequentially-written log with crash-scannable entries.  ``AppendLog``
provides:

* fixed-format entries — ``(kind, tx_id, target addr, payload)`` with a
  magic byte and CRC so a post-crash scan stops at the first torn entry;
* a **circular** data area addressed by monotonically increasing
  *logical* offsets (physical position = offset mod capacity), so space
  reclaimed by truncation behind still-live entries is immediately
  reusable — exactly how hardware log buffers behave;
* a persistent header recording the logical start offset, advanced by
  truncation (checkpointing);
* per-lap magic salting, so a crash scan can never mistake an entry from
  a previous trip around the buffer for a live one;
* an explicit :class:`~repro.common.errors.CapacityError` when live data
  would overrun the buffer (a baseline outran its checkpointer).

The log lives in the same reserved NVM carve HOOP uses for its OOP
region, so every scheme pays for persistence metadata out of the same
capacity budget.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from repro.common.errors import CapacityError, CorruptionError
from repro.memctrl.port import MemoryPort

_MAGIC = 0xA7
# Entry kinds.
KIND_DATA = 1  # payload = new data (redo) or old data (undo)
KIND_COMMIT = 2  # transaction commit record
KIND_WRAP = 3  # tail filler: the next entry starts at physical 0

# header: magic B, kind B, stride(8B units) H, tx_id I, addr Q,
# payload size I, crc I  => 24 bytes, 8-aligned.
_ENTRY_HEADER = struct.Struct("<BBHIQII")
_LOG_HEADER = struct.Struct("<QQI")  # logical start, reserved, crc
_LOG_HEADER_BYTES = 64


@dataclass(frozen=True)
class LogEntry:
    kind: int
    tx_id: int
    addr: int
    payload: bytes
    offset: int  # logical byte offset within the log's data area

    @property
    def total_bytes(self) -> int:
        return _ENTRY_HEADER.size + _pad8(len(self.payload))


def _pad8(n: int) -> int:
    return (n + 7) & ~7


class AppendLog:
    """Circular append-only durable log with truncation and crash scan."""

    def __init__(self, port: MemoryPort, base: int, capacity: int) -> None:
        if capacity <= _LOG_HEADER_BYTES + 4 * _ENTRY_HEADER.size:
            raise CapacityError("log region too small")
        self.port = port
        self.base = base
        self.capacity = capacity
        self._data_base = base + _LOG_HEADER_BYTES
        self._data_bytes = (capacity - _LOG_HEADER_BYTES) & ~7
        self._start = 0  # logical offset of oldest live entry
        self._cursor = 0  # logical append offset
        self.appends = 0
        self.truncations = 0

    # -- geometry -----------------------------------------------------------------

    def _physical(self, logical: int) -> int:
        return self._data_base + (logical % self._data_bytes)

    def _magic_for(self, logical: int) -> int:
        lap = logical // self._data_bytes
        return _MAGIC ^ (lap & 0x0F)

    @property
    def live_bytes(self) -> int:
        return self._cursor - self._start

    @property
    def fill_fraction(self) -> float:
        return self.live_bytes / self._data_bytes

    # -- append path ----------------------------------------------------------------

    def _emit(self, raw: bytes, now_ns: float, *, sync: bool) -> float:
        target = self._physical(self._cursor)
        self._cursor += len(raw)
        if sync:
            return self.port.sync_write(target, raw, now_ns)
        return self.port.async_write(target, raw, now_ns)

    def _pack(
        self, logical: int, kind: int, tx_id: int, addr: int,
        payload: bytes, stride: int,
    ) -> bytes:
        magic = self._magic_for(logical)
        stride_units = stride // 8
        body = _ENTRY_HEADER.pack(
            magic, kind, stride_units, tx_id, addr, len(payload), 0
        )
        crc = zlib.crc32(body[:-4] + payload) & 0xFFFFFFFF
        body = _ENTRY_HEADER.pack(
            magic, kind, stride_units, tx_id, addr, len(payload), crc
        )
        raw = body + payload
        return raw + b"\0" * (stride - len(raw))

    def append(
        self,
        kind: int,
        tx_id: int,
        addr: int,
        payload: bytes,
        now_ns: float,
        *,
        sync: bool,
        min_entry_bytes: int = 0,
    ) -> Tuple[int, float]:
        """Write one entry; returns ``(logical offset, completion time)``.

        ``min_entry_bytes`` lets a baseline model its real hardware write
        granularity (e.g. Opt-Redo's two full cache lines per update) —
        the entry is padded to that size on NVM.
        """
        stride = max(
            _ENTRY_HEADER.size + _pad8(len(payload)), _pad8(min_entry_bytes)
        )
        tail_room = self._data_bytes - (self._cursor % self._data_bytes)
        wrap_pad = tail_room if tail_room < stride else 0
        if self.live_bytes + wrap_pad + stride > self._data_bytes:
            raise CapacityError(
                "log region full; checkpoint/truncate required"
            )
        if wrap_pad:
            if wrap_pad >= _ENTRY_HEADER.size:
                filler = self._pack(
                    self._cursor, KIND_WRAP, 0, 0, b"", wrap_pad
                )
                self._emit(filler, now_ns, sync=False)
            else:
                self._cursor += wrap_pad  # too small even for a header
        offset = self._cursor
        raw = self._pack(offset, kind, tx_id, addr, payload, stride)
        completion = self._emit(raw, now_ns, sync=sync)
        self.appends += 1
        return offset, completion

    def truncate(self, now_ns: float, upto: Optional[int] = None) -> float:
        """Advance the persistent start pointer.

        ``upto`` bounds the truncation (logical offset of the oldest entry
        that must survive — e.g. the first entry of a still-open
        transaction); the default reclaims everything appended so far.
        """
        target = self._cursor if upto is None else upto
        if target < self._start or target > self._cursor:
            raise CapacityError(
                f"truncate target {target} outside live range "
                f"[{self._start}, {self._cursor}]"
            )
        self._start = target
        self.truncations += 1
        return self._persist_header(now_ns)

    def _persist_header(self, now_ns: float) -> float:
        body = _LOG_HEADER.pack(self._start, 0, 0)
        crc = zlib.crc32(body[:-4]) & 0xFFFFFFFF
        body = _LOG_HEADER.pack(self._start, 0, crc)
        return self.port.sync_write(self.base, body, now_ns)

    # -- crash scanning ---------------------------------------------------------

    def crash(self) -> None:
        """Nothing volatile to lose: state is re-derived by scanning."""

    def rebuild_and_scan(self) -> Iterator[LogEntry]:
        """Post-crash: read the header, then yield live entries in order.

        Stops at the first entry whose magic or CRC fails — everything at
        and beyond it was mid-write (or from a previous lap) when power
        failed.
        """
        device = self.port.device
        header = device.peek(self.base, _LOG_HEADER.size)
        try:
            start, _, crc = _LOG_HEADER.unpack(header)
        except struct.error as exc:  # pragma: no cover - fixed-size read
            raise CorruptionError("log header unreadable") from exc
        body = _LOG_HEADER.pack(start, 0, 0)
        if crc != zlib.crc32(body[:-4]) & 0xFFFFFFFF:
            start = 0  # never persisted: log was empty at crash time
        cursor = start
        scanned = 0
        while scanned < self._data_bytes:
            tail_room = self._data_bytes - (cursor % self._data_bytes)
            if tail_room < _ENTRY_HEADER.size:
                cursor += tail_room
                scanned += tail_room
                continue
            raw = device.peek(self._physical(cursor), _ENTRY_HEADER.size)
            magic, kind, stride_units, tx_id, addr, size, crc = (
                _ENTRY_HEADER.unpack(raw)
            )
            if magic != self._magic_for(cursor) or stride_units == 0:
                break
            stride = stride_units * 8
            if stride > tail_room and kind != KIND_WRAP:
                break  # an entry never straddles the wrap point
            if size:
                payload = device.peek(
                    self._physical(cursor) + _ENTRY_HEADER.size, size
                )
            else:
                payload = b""
            check = _ENTRY_HEADER.pack(
                magic, kind, stride_units, tx_id, addr, size, 0
            )
            if crc != zlib.crc32(check[:-4] + payload) & 0xFFFFFFFF:
                break
            if kind != KIND_WRAP:
                yield LogEntry(kind, tx_id, addr, payload, cursor)
            cursor += stride
            scanned += stride
        self._start = start
        self._cursor = cursor

    def reset(self, now_ns: float = 0.0) -> None:
        """Post-recovery: restart the log empty (fresh lap)."""
        lap = self._cursor // self._data_bytes + 1
        self._start = self._cursor = lap * self._data_bytes
        self._persist_header(now_ns)
