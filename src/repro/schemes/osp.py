"""OSP: optimized shadow paging at cache-line granularity (SSP [38,39]).

Every virtual cache line is backed by **two** physical lines — the home
line and a shadow line — plus a *flip bit* choosing the current copy.  A
transaction's updates are eagerly flushed to the *inactive* copies at
commit, then the flip bits switch **atomically**: the commit persists one
flip record naming every flipped line (a single log append), after which
the per-line metadata slots are updated lazily.  Old data is never
overwritten in place, so there is no logging of data and no double data
write — Table I's "Low" write traffic for SSP.

The costs the paper calls out, all modeled here:

* **eager persistence** — one synchronous line flush per updated line at
  commit (no write-queue hiding);
* **TLB shootdown** — each commit's remap invalidates the mapping on
  every other core; charged per commit;
* **page consolidation** — heavily flipped pairs are periodically folded
  back to their home lines, costing extra copy traffic.

Recovery replays the flip log over the persisted slot records: committed
transactions' flips apply; a torn final record is discarded, leaving the
old copies current — exactly shadow paging's atomicity argument.  Our
``recover`` then consolidates every flipped line back to its home address
so post-recovery NVM state is directly comparable across schemes.

Paper analogue: SSP [38, 39] (cache-line shadow paging).  Declared
durability discipline: ``flush-fence`` — the eagerly persisted inactive
copies must be flushed and fenced (drained) before the synchronous flip
record commits; the persist-ordering sanitizer (:mod:`repro.check`)
enforces that fence edge on every committed transaction.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, List, Optional, Tuple

from repro.common.addr import CACHE_LINE_BYTES, cache_line_base
from repro.common.config import SystemConfig
from repro.common.errors import CapacityError
from repro.nvm.device import NVMDevice
from repro.schemes.base import PersistenceScheme, RecoveryOutcome, SchemeTraits
from repro.schemes.logregion import KIND_COMMIT, AppendLog

# Cost of invalidating stale translations on the other cores after a
# commit's remap ("frequent TLB shootdowns on multicore machines").
# Amortized per commit: shootdown IPIs overlap the commit's drain.
_TLB_SHOOTDOWN_NS = 250.0
# Consolidate a line pair after this many flips.
_CONSOLIDATE_FLIPS = 8

_META_RECORD = struct.Struct("<QQI")  # tagged line addr, shadow|flip, crc
_FLIP_TUPLE = struct.Struct("<QQB")  # line addr, shadow addr, new flip


class OSPScheme(PersistenceScheme):
    """Cache-line shadow paging with eager commit flushes."""

    name = "osp"
    traits = SchemeTraits(
        approach="Shadow paging / cache line",
        read_latency="Low",
        extra_writes_on_critical_path=True,
        requires_flush_fence=True,
        write_traffic="Low",
        durability="flush-fence",
    )

    def __init__(self, config: SystemConfig, device: NVMDevice) -> None:
        super().__init__(config, device)
        region_base = config.oop_region_base
        region_bytes = config.oop_region_bytes
        # Layout of the reserved region: flip log | metadata slots | shadows.
        log_bytes = max(64 * 1024, region_bytes // 64)
        # One 20-byte record per shadowed line: size the slot area for a
        # shadow pool of line pairs (20/64ths of the pool's line count).
        meta_bytes = max(64 * 1024, region_bytes // 4)
        self.fliplog = AppendLog(self.port, region_base, log_bytes)
        self._meta_base = region_base + log_bytes
        self._pool_base = self._meta_base + meta_bytes
        self._pool_limit = region_base + region_bytes
        self._pool_cursor = self._pool_base
        # line addr -> (shadow addr, flip); flip False = home is current.
        self._pairs: Dict[int, Tuple[int, bool]] = {}
        self._meta_slot: Dict[int, int] = {}
        self._slots_dirty: List[int] = []
        # Open transactions' updated lines: tx -> {line: data}.
        self._tx_lines: Dict[int, Dict[int, bytes]] = {}
        self._flip_counts: Dict[int, int] = {}
        self.commit_flushes = 0
        self.tlb_shootdowns = 0
        self.consolidations = 0

    # -- pair management -----------------------------------------------------------

    def _shadow_for(self, line_addr: int) -> Tuple[int, bool]:
        pair = self._pairs.get(line_addr)
        if pair is not None:
            return pair
        if self._pool_cursor + CACHE_LINE_BYTES > self._pool_limit:
            raise CapacityError("shadow pool exhausted")
        shadow = self._pool_cursor
        self._pool_cursor += CACHE_LINE_BYTES
        pair = (shadow, False)
        self._pairs[line_addr] = pair
        slot = len(self._meta_slot)
        if (
            self._meta_base + (slot + 1) * _META_RECORD.size
            > self._pool_base
        ):
            raise CapacityError("shadow metadata area exhausted")
        self._meta_slot[line_addr] = slot
        return pair

    def _write_slot(self, line_addr: int, now_ns: float) -> None:
        """Lazily persist a line's (shadow, flip) record (idempotent)."""
        shadow, flip = self._pairs[line_addr]
        slot = self._meta_slot[line_addr]
        addr_of_slot = self._meta_base + slot * _META_RECORD.size
        packed = shadow | (1 if flip else 0)
        body = _META_RECORD.pack(line_addr | 1, packed, 0)
        crc = zlib.crc32(body[:-4]) & 0xFFFFFFFF
        body = _META_RECORD.pack(line_addr | 1, packed, crc)
        self.port.async_write(addr_of_slot, body, now_ns)

    def _current_addr(self, line_addr: int) -> int:
        pair = self._pairs.get(line_addr)
        if pair is None:
            return line_addr
        shadow, flip = pair
        return shadow if flip else line_addr

    def _inactive_addr(self, line_addr: int) -> int:
        shadow, flip = self._pairs[line_addr]
        return line_addr if flip else shadow

    # -- transactional API ---------------------------------------------------------

    def tx_begin(self, core: int, now_ns: float) -> Tuple[int, float]:
        tx_id, now_ns = super().tx_begin(core, now_ns)
        self._tx_lines[tx_id] = {}
        return tx_id, now_ns

    def on_store(
        self,
        core: int,
        tx_id: int,
        addr: int,
        size: int,
        line_addr: int,
        line_data: bytes,
        now_ns: float,
    ) -> float:
        self.stats.tx_stores += 1
        self._tx_lines[tx_id][line_addr] = line_data
        return now_ns

    def tx_end(self, core: int, tx_id: int, now_ns: float) -> float:
        """Eagerly flush to inactive copies, then flip atomically."""
        lines = self._tx_lines.pop(tx_id, {})
        if not lines:
            return now_ns
        flips = []
        check = self.check
        for line_addr, data in lines.items():
            self._shadow_for(line_addr)
            target = self._inactive_addr(line_addr)
            # Eager persistence: all line flushes issue back-to-back and
            # the commit waits for the batch to drain.
            self.port.async_write(target, data, now_ns)
            self.commit_flushes += 1
            if check.active:
                # The shadow write covers the *home* line logically.
                check.note_persist(
                    tx_id, "data", line_addr, CACHE_LINE_BYTES, now_ns,
                    sync=False, port=self.port,
                )
            shadow, flip = self._pairs[line_addr]
            flips.append((line_addr, shadow, not flip))
        now_ns = self.port.drain(now_ns)
        # Atomic remap: one flip record covering the whole batch is the
        # commit point.
        payload = b"".join(
            _FLIP_TUPLE.pack(line, shadow, 1 if flip else 0)
            for line, shadow, flip in flips
        )
        _, now_ns = self.fliplog.append(
            KIND_COMMIT, tx_id, 0, payload, now_ns, sync=True
        )
        if check.active:
            check.note_persist(
                tx_id, "commit", -1, 0, now_ns, sync=True, port=self.port
            )
        for line_addr, shadow, flip in flips:
            self._pairs[line_addr] = (shadow, flip)
            self._write_slot(line_addr, now_ns)
        # Remapping invalidates stale translations on the other cores.
        now_ns += _TLB_SHOOTDOWN_NS
        self.tlb_shootdowns += 1
        self._maybe_consolidate([line for line, _, _ in flips], now_ns)
        return now_ns

    def _maybe_consolidate(self, lines: List[int], now_ns: float) -> None:
        """Fold heavily-flipped pairs back to home (page consolidation)."""
        for line_addr in lines:
            count = self._flip_counts.get(line_addr, 0) + 1
            if count >= _CONSOLIDATE_FLIPS:
                shadow, flip = self._pairs[line_addr]
                if flip:
                    data = self.device.peek(shadow, CACHE_LINE_BYTES)
                    self.port.async_write(line_addr, data, now_ns)
                    self._pairs[line_addr] = (shadow, False)
                    payload = _FLIP_TUPLE.pack(line_addr, shadow, 0)
                    self.fliplog.append(
                        KIND_COMMIT, 0, 0, payload, now_ns, sync=False
                    )
                    self._write_slot(line_addr, now_ns)
                self.consolidations += 1
                count = 0
            self._flip_counts[line_addr] = count

    # -- background ----------------------------------------------------------------

    def tick(self, now_ns: float) -> None:
        """Truncate the flip log once the lazy slot records caught up."""
        if self.fliplog.fill_fraction >= 0.5:
            drained = self.port.drain(now_ns)
            self.fliplog.truncate(drained)

    def quiesce(self, now_ns: float) -> float:
        drained = self.port.drain(now_ns)
        return self.fliplog.truncate(drained)

    # -- read path ---------------------------------------------------------------

    def fill_line(self, line_addr: int, now_ns: float) -> Tuple[bytes, float]:
        line_addr = cache_line_base(line_addr)
        for lines in self._tx_lines.values():
            if line_addr in lines:
                return lines[line_addr], 0.0
        source = self._current_addr(line_addr)
        data, completion = self.port.read(source, CACHE_LINE_BYTES, now_ns)
        return data, completion - now_ns

    def on_evict(
        self,
        line_addr: int,
        data: bytes,
        dirty: bool,
        persistent: bool,
        tx_id: int,
        now_ns: float,
    ) -> None:
        if not dirty:
            return
        if persistent:
            # Mid-transaction: the write set holds the bytes (they reach
            # the inactive copy at commit).  Post-commit: the current copy
            # was already flushed eagerly at tx_end.  Nothing to write.
            return
        # Non-transactional dirty data goes to the current copy.
        self.port.async_write(self._current_addr(line_addr), data, now_ns)

    # -- crash & recovery -----------------------------------------------------------

    def crash(self) -> None:
        self._tx_lines.clear()
        self._pairs.clear()
        self._meta_slot.clear()
        self._flip_counts.clear()

    def recover(
        self, *, threads: int = 1, bandwidth_gb_per_s: Optional[float] = None
    ) -> RecoveryOutcome:
        outcome = RecoveryOutcome(scheme=self.name)
        # Base state: the lazily persisted slot records.
        restored: Dict[int, Tuple[int, bool]] = {}
        limit = (self._pool_base - self._meta_base) // _META_RECORD.size
        for slot in range(limit):
            addr_of_slot = self._meta_base + slot * _META_RECORD.size
            raw = self.device.peek(addr_of_slot, _META_RECORD.size)
            outcome.bytes_scanned += _META_RECORD.size
            tagged, packed, crc = _META_RECORD.unpack(raw)
            if not tagged & 1:
                break  # slots are allocated densely; first empty ends scan
            body = _META_RECORD.pack(tagged, packed, 0)
            if crc != zlib.crc32(body[:-4]) & 0xFFFFFFFF:
                continue  # torn slot write: the flip log will correct it
            restored[tagged & ~1] = (packed & ~1, bool(packed & 1))
        # Replay the flip log over the base state (commit order).
        for entry in self.fliplog.rebuild_and_scan():
            outcome.bytes_scanned += entry.total_bytes
            outcome.committed_transactions += 1
            for i in range(0, len(entry.payload), _FLIP_TUPLE.size):
                line, shadow, flip = _FLIP_TUPLE.unpack_from(entry.payload, i)
                restored[line] = (shadow, bool(flip))
        # Consolidate flipped lines home so all schemes expose the same
        # post-recovery address space.
        for line_addr, (shadow, flip) in restored.items():
            if flip:
                data = self.device.peek(shadow, CACHE_LINE_BYTES)
                self.device.poke(line_addr, data)
                outcome.bytes_written += CACHE_LINE_BYTES
        self._pairs = {
            addr: (shadow, False) for addr, (shadow, _) in restored.items()
        }
        self._meta_slot = {addr: i for i, addr in enumerate(restored)}
        if restored:
            highest = max(shadow for shadow, _ in restored.values())
            self._pool_cursor = max(
                self._pool_cursor, highest + CACHE_LINE_BYTES
            )
        for addr in self._pairs:
            self._write_slot(addr, 0.0)
        self.fliplog.reset()
        nvm = self.config.nvm
        bandwidth = bandwidth_gb_per_s or nvm.bandwidth_gb_per_s
        bytes_per_ns = bandwidth * (1024**3) / 1e9
        outcome.elapsed_ns = (
            outcome.bytes_scanned + 2 * outcome.bytes_written
        ) / max(bytes_per_ns, 1e-9)
        return outcome

# -- snapshot declarations ----------------------------------------------------
OSPScheme.__snapshot_state__ = "__all__"
