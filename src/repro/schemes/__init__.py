"""Crash-consistency schemes: HOOP plus the paper's five comparison points.

Every scheme implements :class:`repro.schemes.base.PersistenceScheme` —
the contract the memory system uses to route fills, evictions, and
transaction events — and carries a :class:`repro.schemes.base.SchemeTraits`
describing its Table I row.

====================  ==========================================
``native``            no persistence (the Ideal bar)
``hoop``              hardware out-of-place update (this paper)
``opt-redo``          hardware redo logging (WrAP-style)
``opt-undo``          hardware undo logging (ATOM-style)
``osp``               optimized cache-line shadow paging (SSP)
``lsm``               software log-structured NVM (LSNVMM)
``lad``               logless atomic durability (LAD)
``logregion``         word-granular log region (eager redo streaming)
====================  ==========================================

Scheme classes are imported lazily by :func:`make_scheme` so importing the
transactional API never pays for schemes an experiment does not use.
"""

from repro.schemes.base import PersistenceScheme, SchemeTraits

_SCHEME_MODULES = {
    "native": ("repro.schemes.native", "NativeScheme"),
    "hoop": ("repro.core.controller", "HoopScheme"),
    "hoop-mc": ("repro.core.multi_controller", "MultiControllerHoopScheme"),
    "opt-redo": ("repro.schemes.redo", "OptRedoScheme"),
    "opt-undo": ("repro.schemes.undo", "OptUndoScheme"),
    "osp": ("repro.schemes.osp", "OSPScheme"),
    "lsm": ("repro.schemes.lsm", "LSMScheme"),
    "lad": ("repro.schemes.lad", "LADScheme"),
    "logregion": ("repro.schemes.logregion", "LogRegionScheme"),
}

ALL_SCHEME_NAMES = tuple(_SCHEME_MODULES)


def scheme_class(name: str):
    """Resolve a scheme name to its class."""
    try:
        module_name, class_name = _SCHEME_MODULES[name]
    except KeyError:
        known = ", ".join(sorted(_SCHEME_MODULES))
        raise KeyError(f"unknown scheme {name!r}; known: {known}") from None
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, class_name)


def make_scheme(name: str, config, device) -> PersistenceScheme:
    """Instantiate a scheme by registry name."""
    return scheme_class(name)(config, device)


__all__ = [
    "PersistenceScheme",
    "SchemeTraits",
    "ALL_SCHEME_NAMES",
    "scheme_class",
    "make_scheme",
]
