"""The persistence-scheme contract.

A scheme is the policy layer between the cache hierarchy and the NVM
device.  The memory system calls it:

* on the transactional API (``tx_begin`` / ``on_store`` / ``tx_end``) —
  each returns the caller's advanced clock, which is how a scheme charges
  critical-path latency (ordering stalls, commit drains, eager flushes);
* on LLC misses (``fill_line``) — where a scheme's read-path indirection
  (HOOP's mapping table, LSM's index walk, OSP's line-pair choice) lives;
* on LLC evictions (``on_evict``) — where write-back policy lives;
* between transactions (``tick``) — background work: GC, checkpointing,
  log truncation;
* at power failure (``crash``) and restart (``recover``).

Write-traffic accounting never goes through the scheme's own counters: the
device tallies every byte, so Fig. 8 comparisons are tamper-proof by
construction.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.check.sanitizer import NULL_CHECKER
from repro.common.config import SystemConfig
from repro.memctrl.port import MemoryPort
from repro.nvm.device import NVMDevice
from repro.telemetry.hub import NULL_TELEMETRY


@dataclass(frozen=True)
class SchemeTraits:
    """A scheme's Table I row (qualitative comparison)."""

    approach: str  # e.g. "Logging/Redo", "Shadow paging", "OOP update"
    read_latency: str  # "Low" / "High"
    extra_writes_on_critical_path: bool
    requires_flush_fence: bool
    write_traffic: str  # "Low" / "Medium" / "High"
    # Declared durability-ordering discipline, enforced at runtime by the
    # persist-ordering sanitizer (repro.check.sanitizer.DISCIPLINES keys):
    # "none", "controller-ordered", "persist-domain", "log-drain",
    # "flush-fence", or "undo-inplace".  The scheme's module docstring
    # must state the same discipline — docs and contract stay in sync
    # because both quote this field.
    durability: str = "flush-fence"


@dataclass
class RecoveryOutcome:
    """What a baseline's recovery pass did (HOOP returns its richer
    :class:`~repro.core.recovery.RecoveryReport` instead)."""

    scheme: str
    committed_transactions: int = 0
    rolled_back_transactions: int = 0
    bytes_scanned: int = 0
    bytes_written: int = 0
    elapsed_ns: float = 0.0


@dataclass
class SchemeStats:
    """Counters every scheme keeps the same way."""

    transactions: int = 0
    tx_stores: int = 0
    tx_loads: int = 0
    critical_path_ns: float = 0.0
    ordering_stalls: int = 0


class PersistenceScheme(abc.ABC):
    """Base class for all crash-consistency schemes."""

    name: str = "abstract"
    traits: SchemeTraits

    def __init__(self, config: SystemConfig, device: NVMDevice) -> None:
        self.config = config
        self.device = device
        self.port = MemoryPort(device)
        self.stats = SchemeStats()
        self._next_tx_id = 1
        self.telemetry = NULL_TELEMETRY
        self.check = NULL_CHECKER

    # -- telemetry ---------------------------------------------------------------

    def attach_telemetry(self, telemetry) -> None:
        """Install an event hub on this scheme and its memory port.

        Subclasses with more machinery (HOOP's controller tree) override
        to propagate the hub further; all overrides must stay purely
        observational so an attached-but-silent hub perturbs nothing.
        """
        self.telemetry = telemetry
        self.port.telemetry = telemetry
        self.port.track = "port"

    # -- checking ----------------------------------------------------------------

    def attach_checker(self, checker) -> None:
        """Install a persist-ordering sanitizer on this scheme + its port.

        The checker adopts this scheme's name and declared durability
        discipline (``traits.durability``); subclasses with more ports
        (HOOP's controller tree) override to propagate further.  Like
        telemetry, attachment is purely observational — instrumented runs
        are bit-identical to bare ones.
        """
        self.check = checker
        self.port.check = checker
        checker.bind_scheme(self.name, self.traits.durability)

    # -- transactional API -------------------------------------------------------

    def tx_begin(self, core: int, now_ns: float) -> Tuple[int, float]:
        """Open a transaction; returns ``(tx_id, now)``."""
        tx_id = self._next_tx_id
        self._next_tx_id += 1
        self.stats.transactions += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                now_ns, "txn_begin", f"core{core}", {"tx": tx_id}
            )
        return tx_id, now_ns

    @abc.abstractmethod
    def on_store(
        self,
        core: int,
        tx_id: int,
        addr: int,
        size: int,
        line_addr: int,
        line_data: bytes,
        now_ns: float,
    ) -> float:
        """A transactional store just updated the cache; charge the scheme.

        ``line_data`` is the post-store content of the affected line.
        Returns the caller's advanced clock.
        """

    @abc.abstractmethod
    def tx_end(self, core: int, tx_id: int, now_ns: float) -> float:
        """Commit; returns the clock after the commit is durable."""

    # -- hierarchy delegation ------------------------------------------------------

    @abc.abstractmethod
    def fill_line(self, line_addr: int, now_ns: float) -> Tuple[bytes, float]:
        """Produce a line on LLC miss; returns ``(bytes, extra_latency)``."""

    @abc.abstractmethod
    def on_evict(
        self,
        line_addr: int,
        data: bytes,
        dirty: bool,
        persistent: bool,
        tx_id: int,
        now_ns: float,
    ) -> None:
        """Handle an LLC eviction (write-back policy)."""

    # -- background, crash, recovery ------------------------------------------------

    def tick(self, now_ns: float) -> None:
        """Pump background work (GC, checkpoint).  Default: nothing."""

    def quiesce(self, now_ns: float) -> float:
        """Complete all deferred background work (end-of-measurement).

        Traffic comparisons (Fig. 8) must include the home-region writes a
        scheme has merely postponed — checkpointing for redo, GC migration
        for HOOP/LSM — otherwise deferral would masquerade as reduction.
        Returns the completion time.
        """
        return now_ns

    def crash(self) -> None:
        """Power failure: discard all scheme-volatile state."""

    def recover(self, *, threads: int = 1, bandwidth_gb_per_s: Optional[float] = None):
        """Restore a consistent home region; returns a scheme report."""
        return None

    # -- accounting ------------------------------------------------------------------

    @property
    def nvm_bytes_written(self) -> int:
        return self.device.stats.bytes_written

    @property
    def nvm_bytes_read(self) -> int:
        return self.device.stats.bytes_read

    def reset_measurement(self) -> None:
        """Zero traffic/energy counters (e.g. after warm-up)."""
        self.device.reset_stats()
        self.port.reset_stats()
        self.stats = SchemeStats()

# -- snapshot declarations ----------------------------------------------------
SchemeTraits.__snapshot_state__ = "__shared__"
RecoveryOutcome.__snapshot_state__ = "__atoms__"
SchemeStats.__snapshot_state__ = "__atoms__"
PersistenceScheme.__snapshot_state__ = "__all__"
