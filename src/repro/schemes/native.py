"""The Ideal baseline: a native system with no persistence support.

Figures 7–9 normalize against this scheme.  Stores live in the cache
hierarchy, dirty lines are written back to their home addresses on
eviction, and nothing is ordered, logged, or flushed.  Consequently a
crash loses whatever had not happened to be evicted — the crash-
consistency tests assert exactly that (Native is the one scheme allowed
to fail them).

Paper analogue: the paper's "Ideal" upper bound (no counterpart system).
Declared durability discipline: ``none`` — the persist-ordering
sanitizer (:mod:`repro.check`) checks nothing for this scheme, and the
differential oracle only includes it in pre-crash logical-state
convergence, never in crash-recovery comparisons.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.common.addr import CACHE_LINE_BYTES
from repro.schemes.base import PersistenceScheme, SchemeTraits


class NativeScheme(PersistenceScheme):
    """No crash consistency; the performance/traffic ideal."""

    name = "native"
    traits = SchemeTraits(
        approach="None (ideal)",
        read_latency="Low",
        extra_writes_on_critical_path=False,
        requires_flush_fence=False,
        write_traffic="Low",
        durability="none",
    )

    def on_store(
        self,
        core: int,
        tx_id: int,
        addr: int,
        size: int,
        line_addr: int,
        line_data: bytes,
        now_ns: float,
    ) -> float:
        self.stats.tx_stores += 1
        return now_ns

    def tx_end(self, core: int, tx_id: int, now_ns: float) -> float:
        return now_ns

    def fill_line(self, line_addr: int, now_ns: float) -> Tuple[bytes, float]:
        data, completion = self.port.read(line_addr, CACHE_LINE_BYTES, now_ns)
        return data, completion - now_ns

    def on_evict(
        self,
        line_addr: int,
        data: bytes,
        dirty: bool,
        persistent: bool,
        tx_id: int,
        now_ns: float,
    ) -> None:
        if dirty:
            self.port.async_write(line_addr, data, now_ns)

    def recover(
        self, *, threads: int = 1, bandwidth_gb_per_s: Optional[float] = None
    ):
        """Nothing to recover: whatever reached NVM is what you get."""
        return None

# -- snapshot declarations ----------------------------------------------------
NativeScheme.__snapshot_state__ = "__all__"
