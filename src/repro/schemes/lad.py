"""LAD: logless atomic durability (Gupta et al. [16]).

LAD buffers a transaction's updates in the memory controller's queues —
inside the persistence domain — until commit, then writes them to their
home addresses **in place**, with no log at all.  Atomicity comes from the
controller: once a transaction commits, its queued lines are guaranteed to
drain (battery-backed persist domain); if it never commits, its updates
never leave the controller.

Model:

* ``on_store`` parks the line in the controller queue — free, like HOOP;
* ``tx_end`` persists every updated line at **cache-line granularity**
  (the cost the paper dings LAD for versus HOOP's word packing) and waits
  for the drain plus a small commit handshake;
* the controller queue is bounded; a transaction larger than the queue
  forces early in-place writes protected by a mini undo area (rare; the
  paper's workloads fit);
* on crash, queued lines of *committed* transactions complete (persist
  domain semantics), everything else evaporates.

Write traffic is one line per updated line per transaction — no logging,
but no packing and no coalescing across transactions, which is exactly
how HOOP ends up ~12% lower (Fig. 8).

Paper analogue: LAD (Gupta et al. [16], logless atomic durability).
Declared durability discipline: ``persist-domain`` — queued in-place
writes sit inside the battery-backed persist domain, so no explicit
drain edge is required before the synchronous commit token; the
persist-ordering sanitizer (:mod:`repro.check`) checks coverage and the
synchronous commit record only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.common.addr import CACHE_LINE_BYTES, cache_line_base
from repro.common.config import SystemConfig
from repro.common.errors import CapacityError
from repro.nvm.device import NVMDevice
from repro.schemes.base import PersistenceScheme, RecoveryOutcome, SchemeTraits

# Controller queue budget per core, in cache lines (LAD uses the existing
# write-pending queues; keep it modest).
_QUEUE_LINES_PER_CORE = 64
# Commit handshake inside the controller (enqueue commit marker, ack).
_COMMIT_HANDSHAKE_NS = 30.0


class LADScheme(PersistenceScheme):
    """Logless atomic durability via controller-buffered commits."""

    name = "lad"
    traits = SchemeTraits(
        approach="Logless atomic durability",
        read_latency="High",
        extra_writes_on_critical_path=False,
        requires_flush_fence=False,
        write_traffic="Medium",
        durability="persist-domain",
    )

    def __init__(self, config: SystemConfig, device: NVMDevice) -> None:
        super().__init__(config, device)
        # tx -> {line addr: data}: the controller queue contents.
        self._queued: Dict[int, Dict[int, bytes]] = {}
        # Committed transactions whose drain is still in flight: these
        # lines are inside the persist domain and survive a crash.
        self._draining: List[Tuple[int, Dict[int, bytes]]] = []
        self.queue_overflows = 0

    # -- transactional API -------------------------------------------------------

    def tx_begin(self, core: int, now_ns: float) -> Tuple[int, float]:
        tx_id, now_ns = super().tx_begin(core, now_ns)
        self._queued[tx_id] = {}
        return tx_id, now_ns

    def on_store(
        self,
        core: int,
        tx_id: int,
        addr: int,
        size: int,
        line_addr: int,
        line_data: bytes,
        now_ns: float,
    ) -> float:
        self.stats.tx_stores += 1
        queue = self._queued[tx_id]
        if (
            line_addr not in queue
            and len(queue) >= _QUEUE_LINES_PER_CORE
        ):
            # Queue overflow: LAD must fall back to eagerly persisting the
            # oldest queued line (it can no longer be revoked, so the
            # transaction loses all-or-nothing only if the system also
            # crashes mid-transaction — counted, and avoided by sizing).
            self.queue_overflows += 1
            oldest = next(iter(queue))
            data = queue.pop(oldest)
            now_ns = self.port.sync_write(oldest, data, now_ns)
            if self.check.active:
                self.check.note_persist(
                    tx_id, "data", oldest, CACHE_LINE_BYTES, now_ns,
                    sync=True, port=self.port,
                )
        queue[line_addr] = line_data
        return now_ns

    def tx_end(self, core: int, tx_id: int, now_ns: float) -> float:
        """Persist queued lines in place at cache-line granularity."""
        queue = self._queued.pop(tx_id, {})
        if not queue:
            return now_ns
        # Commit marks the queue entries as persistent-domain: from this
        # instant the transaction is durable even if power fails, so the
        # *functional* content lands now; the *timing* charges the drain.
        self._draining.append((tx_id, dict(queue)))
        check = self.check
        for line_addr, data in queue.items():
            self.port.async_write(line_addr, data, now_ns)
            if check.active:
                check.note_persist(
                    tx_id, "data", line_addr, CACHE_LINE_BYTES, now_ns,
                    sync=False, port=self.port,
                )
        now_ns = self.port.drain(now_ns)
        # The commit token: LAD's controllers persist a per-transaction
        # commit record so the persist-domain guarantee survives power
        # loss mid-drain (one cache line, like its ordering messages).
        now_ns = self.port.sync_write(
            self._commit_slot(tx_id), b"\x01" * 64, now_ns
        )
        if check.active:
            check.note_persist(
                tx_id, "commit", -1, 0, now_ns, sync=True, port=self.port
            )
        now_ns += _COMMIT_HANDSHAKE_NS
        self._draining.pop()
        return now_ns

    def _commit_slot(self, tx_id: int) -> int:
        """Round-robin commit-record slots in the reserved region."""
        slots = (self.config.oop_region_bytes // 64) - 1
        return self.config.oop_region_base + (tx_id % slots) * 64

    # -- read path ---------------------------------------------------------------

    def fill_line(self, line_addr: int, now_ns: float) -> Tuple[bytes, float]:
        line_addr = cache_line_base(line_addr)
        for queue in self._queued.values():
            if line_addr in queue:
                return queue[line_addr], 0.0
        data, completion = self.port.read(line_addr, CACHE_LINE_BYTES, now_ns)
        return data, completion - now_ns

    def on_evict(
        self,
        line_addr: int,
        data: bytes,
        dirty: bool,
        persistent: bool,
        tx_id: int,
        now_ns: float,
    ) -> None:
        if not dirty:
            return
        if persistent:
            # Uncommitted content sits in the controller queue; committed
            # content was already written in place at tx_end.  Either way
            # the eviction itself writes nothing.
            return
        self.port.async_write(line_addr, data, now_ns)

    # -- crash & recovery -----------------------------------------------------------

    def crash(self) -> None:
        # Persist-domain semantics: committed transactions whose drain was
        # still in flight complete on the controller's backup energy — a
        # power cut mid-drain (fault injection) cannot tear them.  The
        # remaining lines land functionally here (the system restores
        # device power before invoking us, so the pokes are accepted);
        # re-poking lines that already drained is idempotent, and a torn
        # fatal write is overwritten with the full line.  Uncommitted
        # queues evaporate with the controller's volatile state.
        for _tx_id, lines in self._draining:
            for line_addr, data in lines.items():
                self.device.poke(line_addr, data)
        self._draining.clear()
        self._queued.clear()

    def recover(
        self, *, threads: int = 1, bandwidth_gb_per_s: Optional[float] = None
    ) -> RecoveryOutcome:
        """Nothing to replay: commits were in place and domain-protected."""
        return RecoveryOutcome(scheme=self.name)

# -- snapshot declarations ----------------------------------------------------
LADScheme.__snapshot_state__ = "__all__"
