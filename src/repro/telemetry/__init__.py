"""Telemetry: structured events, latency histograms, exportable timelines.

The subsystem has three layers:

* :mod:`repro.telemetry.hub` — the :class:`Telemetry` event hub and the
  shared :data:`NULL_TELEMETRY` no-op every simulator component holds by
  default.  Disabled telemetry costs one attribute check per
  instrumentation site and perturbs nothing (results stay bit-identical).
* :mod:`repro.telemetry.metrics` — bounded streaming sinks:
  :class:`Log2Histogram` (p50/p95/p99/max) and :class:`EpochSeries`
  (per-simulated-epoch throughput/traffic).
* :mod:`repro.telemetry.export` — Chrome/Perfetto ``trace_event`` JSON
  (open at https://ui.perfetto.dev) and greppable JSONL event logs, plus
  the summary/compare consumers behind ``python -m repro.telemetry``.

Enable by constructing a system with a hub::

    tel = Telemetry()
    system = MemorySystem(config, scheme="hoop", telemetry=tel)
    ...run a workload...
    write_perfetto(tel, "trace.json")
"""

from repro.telemetry.export import (
    compare_files,
    compare_summaries,
    load_trace,
    render_summary,
    summarize_file,
    to_perfetto,
    validate_perfetto,
    write_jsonl,
    write_perfetto,
)
from repro.telemetry.hub import (
    NULL_TELEMETRY,
    STALL_EVENT_NS,
    NullTelemetry,
    Telemetry,
)
from repro.telemetry.metrics import EpochSeries, Log2Histogram

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "STALL_EVENT_NS",
    "Log2Histogram",
    "EpochSeries",
    "to_perfetto",
    "write_perfetto",
    "write_jsonl",
    "load_trace",
    "validate_perfetto",
    "summarize_file",
    "render_summary",
    "compare_summaries",
    "compare_files",
]
