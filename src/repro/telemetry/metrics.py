"""Streaming metric primitives: log2 histograms and epoch time-series.

Both are O(1) per sample and strictly bounded in memory, so they can sit
on simulation hot paths for arbitrarily long runs.  The histogram tracks
latency distributions (p50/p95/p99/max) without retaining samples; the
epoch series tracks throughput-style rates per simulated-time epoch and
halves its own resolution when a run outgrows the epoch budget.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

# 2^63 ns is ~292 years of simulated time; 64 buckets cover everything.
_NUM_BUCKETS = 64


class Log2Histogram:
    """Fixed-bucket power-of-two latency histogram.

    Bucket 0 holds values in ``[0, 1]``; bucket ``i`` (i >= 1) holds
    values in ``(2^(i-1), 2^i]``.  Percentiles are resolved to the
    containing bucket: :meth:`percentile` returns the bucket's upper
    bound, so the true (brute-force) percentile of the recorded samples
    always lies inside :meth:`percentile_bounds`.
    """

    __slots__ = ("buckets", "count", "total", "max_value", "min_value")

    def __init__(self) -> None:
        self.buckets = [0] * _NUM_BUCKETS
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self.min_value = float("inf")

    @staticmethod
    def bucket_index(value: float) -> int:
        if value <= 1.0:
            return 0
        # int(ceil(log2(value))) without float-log wobble: bit_length of
        # the integer strictly below the value.
        iv = int(value)
        if iv == value:
            iv -= 1
        index = iv.bit_length()
        return index if index < _NUM_BUCKETS else _NUM_BUCKETS - 1

    @staticmethod
    def bucket_bounds(index: int) -> Tuple[float, float]:
        """``(exclusive lower, inclusive upper)`` of one bucket."""
        if index == 0:
            return (0.0, 1.0)
        return (float(2 ** (index - 1)), float(2 ** index))

    def record(self, value: float) -> None:
        if value < 0:
            value = 0.0
        self.buckets[self.bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if value < self.min_value:
            self.min_value = value

    # -- percentiles ----------------------------------------------------------

    def _percentile_bucket(self, fraction: float) -> int:
        """Bucket containing the nearest-rank percentile sample."""
        if self.count == 0:
            return 0
        rank = max(1, -(-int(fraction * self.count * 1_000_000) // 1_000_000))
        # nearest-rank: ceil(fraction * count), computed without floats
        # drifting just below an integer boundary.
        rank = min(rank, self.count)
        cumulative = 0
        for index, n in enumerate(self.buckets):
            cumulative += n
            if cumulative >= rank:
                return index
        return _NUM_BUCKETS - 1

    def percentile(self, fraction: float) -> float:
        """Upper bound of the bucket holding the percentile (0 if empty)."""
        if self.count == 0:
            return 0.0
        return self.bucket_bounds(self._percentile_bucket(fraction))[1]

    def percentile_bounds(self, fraction: float) -> Tuple[float, float]:
        if self.count == 0:
            return (0.0, 0.0)
        return self.bucket_bounds(self._percentile_bucket(fraction))

    def merge(self, other: "Log2Histogram") -> None:
        """Fold another histogram's samples into this one.

        Bucket counts, count, and total add; min/max combine.  Merging
        is associative over bucket counts and extrema, so any merge
        order yields the same percentiles — and merging single-writer
        histograms in a fixed (shard) order also makes the float
        ``total``/``mean`` deterministic, which is what lets the serve
        report stay byte-identical between sequential and parallel
        execution.
        """
        buckets = self.buckets
        for index, n in enumerate(other.buckets):
            buckets[index] += n
        self.count += other.count
        self.total += other.total
        if other.max_value > self.max_value:
            self.max_value = other.max_value
        if other.min_value < self.min_value:
            self.min_value = other.min_value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": self.max_value,
            "min": self.min_value if self.count else 0.0,
        }


class EpochSeries:
    """Bounded per-epoch accumulator over simulated time.

    ``add(ts_ns, value)`` folds ``value`` into the epoch containing
    ``ts_ns``.  When a timestamp lands beyond ``max_epochs`` the series
    coalesces adjacent epochs (doubling ``epoch_ns``), so memory stays
    bounded while the full time span remains covered — at coarser
    resolution, never by dropping data.
    """

    __slots__ = ("epoch_ns", "max_epochs", "values")

    def __init__(self, epoch_ns: float = 1e6, max_epochs: int = 2048) -> None:
        if epoch_ns <= 0 or max_epochs < 2:
            raise ValueError("epoch_ns must be positive, max_epochs >= 2")
        self.epoch_ns = float(epoch_ns)
        self.max_epochs = max_epochs
        self.values: List[float] = []

    def add(self, ts_ns: float, value: float = 1.0) -> None:
        index = int(ts_ns // self.epoch_ns) if ts_ns > 0 else 0
        while index >= self.max_epochs:
            self._coalesce()
            index = int(ts_ns // self.epoch_ns) if ts_ns > 0 else 0
        if index >= len(self.values):
            self.values.extend([0.0] * (index + 1 - len(self.values)))
        self.values[index] += value

    def _coalesce(self) -> None:
        self.epoch_ns *= 2.0
        merged = []
        for i in range(0, len(self.values), 2):
            pair = self.values[i : i + 2]
            merged.append(sum(pair))
        self.values = merged

    def merge(self, other: "EpochSeries") -> None:
        """Fold another series into this one, aligning resolutions.

        This series first coalesces until its ``epoch_ns`` is at least
        the other's (both only ever double, so they always align);
        every source epoch then lands wholly inside one destination
        epoch.  Zero-valued source epochs are folded too, so the merged
        epoch count matches what direct accumulation would have
        produced.
        """
        while self.epoch_ns < other.epoch_ns:
            self._coalesce()
        for index, value in enumerate(other.values):
            self.add(index * other.epoch_ns, value)

    @property
    def total(self) -> float:
        return sum(self.values)

    def summary(self) -> Dict[str, object]:
        return {
            "epoch_ns": self.epoch_ns,
            "epochs": len(self.values),
            "total": self.total,
            "values": list(self.values),
        }
