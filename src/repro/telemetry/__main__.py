"""Record, summarize, and diff telemetry traces.

Usage::

    # Record one workload under one scheme and export a Perfetto trace:
    python -m repro.telemetry --scheme hoop --workload ycsb_a --out t.json
                              [--jsonl t.jsonl] [--scale smoke] [--seed N]
                              [--threads N] [--transactions N]

    # Summarize a previously exported trace or JSONL event log:
    python -m repro.telemetry --summary t.json

    # Diff the latency histograms of two recorded traces:
    python -m repro.telemetry --compare a.json b.json

Workload names are the Table III registry plus the YCSB mix aliases
``ycsb_a`` (50% updates) and ``ycsb_b`` (5% updates).  The exported
``.json`` loads directly in https://ui.perfetto.dev or chrome://tracing.
"""

from __future__ import annotations

import argparse
import sys

from repro.telemetry.export import (
    compare_files,
    load_trace,
    summarize_file,
    validate_perfetto,
    write_jsonl,
    write_perfetto,
)
from repro.telemetry.hub import Telemetry

# CLI-only aliases: standard YCSB mixes expressed as update fractions of
# the repo's parameterized "ycsb" workload (the default ycsb is the
# paper's 80%-update configuration).
WORKLOAD_ALIASES = {
    "ycsb_a": ("ycsb", {"update_fraction": 0.5}),
    "ycsb_b": ("ycsb", {"update_fraction": 0.05}),
}


def record(args: argparse.Namespace) -> int:
    from repro.harness.experiments import get_scale
    from repro.txn.system import MemorySystem
    from repro.workloads.driver import WorkloadDriver, make_workload

    preset = get_scale(args.scale)
    name, overrides = WORKLOAD_ALIASES.get(
        args.workload, (args.workload, {})
    )
    telemetry = Telemetry(max_events=args.max_events)
    config = preset.system_config()
    system = MemorySystem(config, scheme=args.scheme, telemetry=telemetry)
    kwargs = dict(preset.kwargs_for(name))
    kwargs.update(overrides)
    workload = make_workload(name, system, seed=args.seed, **kwargs)
    threads = min(
        args.threads or preset.threads, config.num_cores
    )
    driver = WorkloadDriver(system, threads=threads, seed=args.seed)
    transactions = args.transactions or preset.transactions
    result = driver.run(workload, transactions, warmup=preset.warmup)

    trace = write_perfetto(telemetry, args.out)
    print(
        f"{args.out}: {len(trace['traceEvents'])} trace events from"
        f" {result.transactions} transactions"
        f" ({args.scheme}/{args.workload}, scale={args.scale})"
    )
    if args.jsonl:
        lines = write_jsonl(telemetry, args.jsonl)
        print(f"{args.jsonl}: {lines} JSONL event records")
    from repro.telemetry.export import render_summary

    print(render_summary(telemetry.summary()))
    print("open the .json at https://ui.perfetto.dev")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Record, summarize, and diff simulator telemetry.",
    )
    parser.add_argument(
        "--summary",
        metavar="TRACE",
        help="summarize an exported trace (.json) or event log (.jsonl)",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("A", "B"),
        help="diff the latency histograms of two exported traces",
    )
    parser.add_argument("--scheme", default="hoop", help="scheme to record")
    parser.add_argument(
        "--workload",
        default="ycsb_a",
        help="workload name or alias (ycsb_a/ycsb_b)",
    )
    parser.add_argument(
        "--out", default=None, help="Perfetto trace_event JSON output path"
    )
    parser.add_argument(
        "--jsonl", default=None, help="also write a JSONL event log here"
    )
    parser.add_argument(
        "--scale",
        default="smoke",
        help="experiment size preset (default: smoke)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--threads", type=int, default=0, help="0 = the scale's default"
    )
    parser.add_argument(
        "--transactions",
        type=int,
        default=0,
        help="0 = the scale's default",
    )
    parser.add_argument(
        "--max-events",
        type=int,
        default=500_000,
        help="event buffer bound (drops are counted, not silent)",
    )
    args = parser.parse_args(argv)

    if args.summary:
        print(summarize_file(args.summary))
        # Exit nonzero on structural problems so CI can gate on this.
        loaded = load_trace(args.summary)
        if loaded["format"] == "perfetto" and validate_perfetto(
            loaded["events"]
        ):
            return 1
        return 0
    if args.compare:
        print(compare_files(args.compare[0], args.compare[1]))
        return 0
    if not args.out:
        parser.error("--out is required when recording (or use --summary/--compare)")
    return record(args)


if __name__ == "__main__":
    sys.exit(main())
