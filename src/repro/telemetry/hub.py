"""The telemetry hub: typed, simulated-time-stamped structured events.

One :class:`Telemetry` instance observes one simulated machine.  Emitters
(the scheme base, HOOP controller, GC, commit log, eviction buffer,
memory port, fault injector) hold a reference and guard every emission
with a single ``if telemetry.enabled:`` check.  **When telemetry is off
the reference is the shared** :data:`NULL_TELEMETRY` **singleton**, whose
``enabled`` is a class-level ``False`` — the disabled hot-path cost is
exactly that one attribute check, and a telemetry-off simulation is
bit-identical to one built before this package existed (telemetry only
observes; it never advances a clock or touches device content).

Event taxonomy (``kind`` strings, greppable in the JSONL export):

===================  ==============================================
``txn_begin``        transaction opened (core track)
``txn_commit``       commit durable; payload carries latency_ns
``gc_start/gc_end``  one GC pass; end payload: scanned/migrated/
                     reclaimed/txs, stamped at the pass horizon
``ondemand_gc``      SRAM/region pressure forced GC onto the
                     store critical path
``oop_evict``        GC parked a migrated line in the eviction buffer
``commit_log_append`` address-slice entry recorded (committed flag)
``mapping_insert``   store-side mapping-table update
``mapping_evict``    GC pruned a migrated mapping entry
``port_stall``       a synchronous NVM write stalled longer than
                     :data:`STALL_EVENT_NS`
``power_cut``/``torn_write``/``read_fault``/``block_remap``
                     fault-injection instants (``faults`` track)
``crash``            power failure instant (global)
===================  ==============================================

Ordering contract: events are appended in emission order.  Within one
track, *start/instant* timestamps are nondecreasing for a
single-threaded run; ``*_end`` events are stamped at their async
completion horizon and may overlap the next pass.  Exporters sort by
timestamp, so consumers always see a time-ordered stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry.metrics import EpochSeries, Log2Histogram

# A sync NVM write that stalls at least this long becomes a visible
# ``port_stall`` event (shorter stalls only feed the histogram).
STALL_EVENT_NS = 1000.0

# One recorded event: (ts_ns, kind, track, payload-or-None).
Event = Tuple[float, str, str, Optional[dict]]


class NullTelemetry:
    """The do-nothing hub every component holds when telemetry is off.

    A shared singleton (:data:`NULL_TELEMETRY`): constructing systems
    never allocates per-system telemetry state while disabled.
    """

    __slots__ = ()
    enabled = False

    def emit(self, ts_ns, kind, track="sim", payload=None) -> None:
        pass

    def count(self, name, n=1) -> None:
        pass

    def record(self, name, value) -> None:
        pass

    def sample(self, name, ts_ns, value=1.0) -> None:
        pass

    def add_write_traffic(self, ts_ns, nbytes) -> None:
        pass

    def on_commit(self, core, tx_id, begin_ns, end_ns) -> None:
        pass

    def reset_metrics(self) -> None:
        pass

    def summary(self) -> dict:
        return {}


NULL_TELEMETRY = NullTelemetry()


class Telemetry(NullTelemetry):
    """Structured-event hub plus streaming metric sinks."""

    __slots__ = (
        "events",
        "max_events",
        "dropped_events",
        "counters",
        "histograms",
        "commit_series",
        "write_traffic_series",
        "named_series",
    )
    enabled = True

    def __init__(
        self,
        *,
        max_events: int = 500_000,
        epoch_ns: float = 1e6,
        max_epochs: int = 2048,
    ) -> None:
        self.events: List[Event] = []
        self.max_events = max_events
        self.dropped_events = 0
        self.counters: Dict[str, float] = {}
        self.histograms: Dict[str, Log2Histogram] = {}
        # Committed transactions and NVM bytes written per simulated epoch
        # (throughput and write-traffic time-series).
        self.commit_series = EpochSeries(epoch_ns, max_epochs)
        self.write_traffic_series = EpochSeries(epoch_ns, max_epochs)
        # Caller-named epoch series (e.g. per-shard admitted-request
        # rates from repro.serve), created on first sample().
        self.named_series: Dict[str, EpochSeries] = {}

    # -- events ---------------------------------------------------------------

    def emit(
        self,
        ts_ns: float,
        kind: str,
        track: str = "sim",
        payload: Optional[dict] = None,
    ) -> None:
        """Record one structured event (bounded; drops are counted)."""
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append((ts_ns, kind, track, payload))

    # -- counters & histograms ------------------------------------------------

    def count(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def hist(self, name: str) -> Log2Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Log2Histogram()
            self.histograms[name] = histogram
        return histogram

    def record(self, name: str, value: float) -> None:
        self.hist(name).record(value)

    def series(self, name: str) -> EpochSeries:
        """Get-or-create a named epoch series (same budget as commits)."""
        series = self.named_series.get(name)
        if series is None:
            series = EpochSeries(
                self.commit_series.epoch_ns, self.commit_series.max_epochs
            )
            self.named_series[name] = series
        return series

    def sample(self, name: str, ts_ns: float, value: float = 1.0) -> None:
        """Fold ``value`` into the named series' epoch at ``ts_ns``."""
        self.series(name).add(ts_ns, value)

    # -- composite hooks ------------------------------------------------------

    def on_commit(
        self, core: int, tx_id: int, begin_ns: float, end_ns: float
    ) -> None:
        """One durable commit: event + latency histogram + epoch series."""
        latency = end_ns - begin_ns
        self.hist("commit_latency_ns").record(latency)
        self.commit_series.add(end_ns)
        self.emit(
            end_ns,
            "txn_commit",
            f"core{core}",
            {"tx": tx_id, "latency_ns": latency},
        )

    def add_write_traffic(self, ts_ns: float, nbytes: int) -> None:
        self.write_traffic_series.add(ts_ns, nbytes)

    # -- cross-process merge --------------------------------------------------
    # The parallel serve engine runs one hub per worker process and
    # folds their observations back into the coordinator's hub: events
    # are drained per epoch (so worker memory stays bounded and the
    # master timeline interleaves deterministically in shard order),
    # metric sinks are exported once at completion and merged — names
    # with exactly one writer (per-shard "shardN/…" sinks) by adoption,
    # everything else additively.

    def drain_events(self) -> List[Event]:
        """Take and clear the buffered events (cross-process shipping)."""
        events, self.events = self.events, []
        return events

    def absorb_events(self, events: List[Event]) -> None:
        """Append shipped events, honouring this hub's own bound."""
        for event in events:
            if len(self.events) >= self.max_events:
                self.dropped_events += 1
            else:
                self.events.append(event)

    def export_metrics(self) -> dict:
        """Picklable snapshot of every metric sink (not the events)."""
        return {
            "counters": dict(self.counters),
            "histograms": dict(self.histograms),
            "commit_series": self.commit_series,
            "write_traffic_series": self.write_traffic_series,
            "named_series": dict(self.named_series),
            "dropped_events": self.dropped_events,
        }

    def merge_metrics(self, exported: dict, *, adopt=None) -> None:
        """Fold a worker hub's exported sinks into this hub.

        ``adopt`` is a predicate over sink names: a matching histogram
        or series is taken wholesale (correct — and exactly
        reproducible, float for float — when exactly one process ever
        wrote it, as with per-shard sinks); non-matching sinks merge
        additively and counters always add.
        """
        for name, n in exported["counters"].items():
            self.counters[name] = self.counters.get(name, 0) + n
        for name, histogram in exported["histograms"].items():
            if adopt is not None and adopt(name):
                self.histograms[name] = histogram
            else:
                self.hist(name).merge(histogram)
        self.commit_series.merge(exported["commit_series"])
        self.write_traffic_series.merge(exported["write_traffic_series"])
        for name, series in exported["named_series"].items():
            if adopt is not None and adopt(name):
                self.named_series[name] = series
            else:
                self.series(name).merge(series)
        self.dropped_events += exported["dropped_events"]

    # -- lifecycle ------------------------------------------------------------

    def reset_metrics(self) -> None:
        """Zero histograms/counters/series at a measurement boundary.

        The event timeline is deliberately kept: traces should show the
        warm-up too, while the summary metrics describe only the
        measured window (mirroring ``reset_measurement`` semantics).
        """
        self.counters = {}
        self.histograms = {}
        self.commit_series = EpochSeries(
            self.commit_series.epoch_ns, self.commit_series.max_epochs
        )
        self.write_traffic_series = EpochSeries(
            self.write_traffic_series.epoch_ns,
            self.write_traffic_series.max_epochs,
        )
        self.named_series = {}

    # -- summaries ------------------------------------------------------------

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for _, kind, _, _ in self.events:
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def tracks(self) -> List[str]:
        """Track names in order of first appearance."""
        seen: Dict[str, None] = {}
        for _, _, track, _ in self.events:
            if track not in seen:
                seen[track] = None
        return list(seen)

    def summary(self) -> dict:
        """The JSON-serializable aggregate carried into ``RunResult``."""
        return {
            "events": {
                "total": len(self.events),
                "dropped": self.dropped_events,
                "by_kind": self.event_counts(),
            },
            "counters": dict(self.counters),
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self.histograms.items())
            },
            "series": {
                "commits": self.commit_series.summary(),
                "write_bytes": self.write_traffic_series.summary(),
                **{
                    name: series.summary()
                    for name, series in sorted(self.named_series.items())
                },
            },
        }


# -- snapshot declarations ----------------------------------------------------
# Telemetry is observational by contract: snapshots share the hub (events
# from replays land on the live hub) rather than cloning event buffers.
NullTelemetry.__snapshot_state__ = "__shared__"
Telemetry.__snapshot_state__ = "__shared__"
