"""Exporters: Chrome/Perfetto ``trace_event`` JSON and greppable JSONL.

The Perfetto export renders the event timeline as one process with one
named thread (track) per emitter — ``core0..N`` for per-core transaction
spans, ``ctrl<i>``/``gc<i>``/``evict<i>`` for controller-side activity,
``faults`` for injected-fault instants.  Open the file directly at
https://ui.perfetto.dev (or chrome://tracing).  Span pairing happens
here, at export time: ``txn_begin``/``txn_commit`` and
``gc_start``/``gc_end`` become ``ph:"X"`` complete events; everything
else becomes an instant.  ``ts``/``dur`` are microseconds of *simulated*
time, per the trace_event spec.

The JSONL export writes one JSON object per line — ``{"ts_ns", "kind",
"track", ...payload}`` — for grep/jq-style forensics and for the
``--summary`` CLI.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Tuple, Union

from repro.telemetry.hub import Telemetry

_PID = 1

# kind of the opening event -> (kind of the closing event, span name,
# key field pairing open/close when tracks interleave spans).
_SPAN_PAIRS = {
    "txn_begin": ("txn_commit", "txn", "tx"),
    "gc_start": ("gc_end", "gc", None),
}
_SPAN_CLOSERS = {closer: opener for opener, (closer, _, _) in _SPAN_PAIRS.items()}

# Instants promoted to global scope (full-height markers in the UI).
_GLOBAL_INSTANTS = {"crash", "power_cut"}


def _track_ids(tracks: List[str]) -> Dict[str, int]:
    """Stable tid assignment: cores first (numeric order), then the rest."""
    cores = sorted(
        (t for t in tracks if t.startswith("core")),
        key=lambda t: (len(t), t),
    )
    others = sorted(t for t in tracks if not t.startswith("core"))
    return {track: tid for tid, track in enumerate(cores + others, start=1)}


def to_perfetto(
    telemetry: Telemetry, *, process_name: str = "repro-sim"
) -> dict:
    """Render the hub's timeline as a trace_event JSON object.

    The returned dict is Perfetto/Chrome-loadable as-is; the extra
    ``repro_summary`` key (ignored by the viewers) embeds the metric
    summary so one file carries both the timeline and the histograms.
    """
    events = sorted(telemetry.events, key=lambda e: e[0])
    tids = _track_ids(telemetry.tracks())
    trace: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": _PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        trace.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )

    # (track, open-kind, key-value) -> stack of pending (ts, payload).
    open_spans: Dict[Tuple[str, str, object], List[Tuple[float, dict]]] = {}
    spans: List[dict] = []
    instants: List[dict] = []
    for ts_ns, kind, track, payload in events:
        payload = payload or {}
        if kind in _SPAN_PAIRS:
            closer, name, key_field = _SPAN_PAIRS[kind]
            key = (track, kind, payload.get(key_field) if key_field else None)
            open_spans.setdefault(key, []).append((ts_ns, payload))
            continue
        if kind in _SPAN_CLOSERS:
            opener = _SPAN_CLOSERS[kind]
            _, name, key_field = _SPAN_PAIRS[opener]
            key = (track, opener, payload.get(key_field) if key_field else None)
            stack = open_spans.get(key)
            if stack:
                begin_ns, begin_payload = stack.pop()
                args = dict(begin_payload)
                args.update(payload)
                spans.append(
                    {
                        "name": name,
                        "cat": "sim",
                        "ph": "X",
                        "ts": begin_ns / 1e3,
                        "dur": max(ts_ns - begin_ns, 0.0) / 1e3,
                        "pid": _PID,
                        "tid": tids[track],
                        "args": args,
                    }
                )
                continue
            # A close without an open falls through as an instant.
        instants.append(
            {
                "name": kind,
                "cat": "sim",
                "ph": "i",
                "ts": ts_ns / 1e3,
                "s": "g" if kind in _GLOBAL_INSTANTS else "t",
                "pid": _PID,
                "tid": tids.get(track, 0),
                "args": payload,
            }
        )
    # A begin whose end never happened (crash mid-transaction) still
    # deserves a mark on the timeline.
    for (track, kind, _), stack in open_spans.items():
        for ts_ns, payload in stack:
            instants.append(
                {
                    "name": f"{kind} (unclosed)",
                    "cat": "sim",
                    "ph": "i",
                    "ts": ts_ns / 1e3,
                    "s": "t",
                    "pid": _PID,
                    "tid": tids.get(track, 0),
                    "args": payload,
                }
            )
    body = sorted(spans + instants, key=lambda e: e["ts"])
    return {
        "traceEvents": trace + body,
        "displayTimeUnit": "ms",
        "repro_summary": telemetry.summary(),
    }


def write_perfetto(telemetry: Telemetry, path: Union[str, pathlib.Path]) -> dict:
    """Write the Perfetto JSON; returns the exported object."""
    trace = to_perfetto(telemetry)
    pathlib.Path(path).write_text(json.dumps(trace) + "\n")
    return trace


def write_jsonl(telemetry: Telemetry, path: Union[str, pathlib.Path]) -> int:
    """Write one JSON object per event; returns the line count."""
    lines = []
    for ts_ns, kind, track, payload in sorted(
        telemetry.events, key=lambda e: e[0]
    ):
        record = {"ts_ns": ts_ns, "kind": kind, "track": track}
        if payload:
            record.update(payload)
        lines.append(json.dumps(record))
    pathlib.Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


# -- consumers -----------------------------------------------------------------


def load_trace(path: Union[str, pathlib.Path]) -> dict:
    """Load a Perfetto JSON or JSONL event log into a uniform dict.

    Returns ``{"format", "events", "summary"}`` where ``events`` is the
    raw event list (trace_event dicts or JSONL records).
    """
    path = pathlib.Path(path)
    text = path.read_text()
    # Both formats start with "{": a Perfetto export is one JSON object
    # spanning the file, a JSONL log is one object *per line* — so the
    # reliable sniff is whether the whole file parses as a single value.
    try:
        obj = json.loads(text)
    except json.JSONDecodeError:
        events = [
            json.loads(line) for line in text.splitlines() if line.strip()
        ]
        return {"format": "jsonl", "events": events, "summary": {}}
    return {
        "format": "perfetto",
        "events": obj.get("traceEvents", []),
        "summary": obj.get("repro_summary", {}),
    }


def validate_perfetto(trace_events: List[dict]) -> List[str]:
    """Structural checks on a trace_event list; returns problem strings."""
    problems = []
    for i, event in enumerate(trace_events):
        for field in ("ph", "ts", "pid", "tid"):
            if field not in event:
                problems.append(f"event {i} missing {field!r}")
                break
        else:
            if event["ph"] not in ("M", "X", "i", "B", "E", "C"):
                problems.append(f"event {i} has unknown ph {event['ph']!r}")
            elif event["ph"] == "X" and "dur" not in event:
                problems.append(f"event {i} is ph=X without dur")
    return problems


def summarize_file(path: Union[str, pathlib.Path]) -> str:
    """Human-readable summary of an exported trace or event log."""
    loaded = load_trace(path)
    lines = [f"{path}: {loaded['format']} export, {len(loaded['events'])} events"]
    if loaded["format"] == "perfetto":
        problems = validate_perfetto(loaded["events"])
        lines.append(
            "structure: OK"
            if not problems
            else "structure: " + "; ".join(problems[:5])
        )
        by_name: Dict[str, int] = {}
        tracks = set()
        lo, hi = float("inf"), 0.0
        for event in loaded["events"]:
            if event.get("ph") == "M":
                continue
            # .get throughout: a malformed trace should still summarize
            # (the problems are already listed above).
            name = event.get("name", "?")
            by_name[name] = by_name.get(name, 0) + 1
            tracks.add(event.get("tid", "?"))
            ts = event.get("ts", 0.0)
            lo = min(lo, ts)
            hi = max(hi, ts + event.get("dur", 0.0))
        if by_name:
            lines.append(
                f"span: {lo:.1f}..{hi:.1f} us over {len(tracks)} tracks"
            )
        for name in sorted(by_name):
            lines.append(f"  {name}: {by_name[name]}")
    else:
        by_kind: Dict[str, int] = {}
        for event in loaded["events"]:
            kind = event.get("kind", "?")
            by_kind[kind] = by_kind.get(kind, 0) + 1
        for kind in sorted(by_kind):
            lines.append(f"  {kind}: {by_kind[kind]}")
    summary = loaded["summary"]
    if summary:
        lines.append(render_summary(summary))
    return "\n".join(lines)


def render_summary(summary: dict) -> str:
    """Text rendering of a hub summary (histograms + counters)."""
    from repro.stats.report import telemetry_figure

    return telemetry_figure(summary).render()


def compare_summaries(a: dict, b: dict, *, names=("A", "B")) -> str:
    """Side-by-side histogram percentiles of two runs, with deltas."""
    from repro.stats.report import FigureData

    fig = FigureData(
        "Telemetry diff",
        f"latency histograms: {names[0]} vs {names[1]}",
        ["Histogram", "Stat", names[0], names[1], "delta %"],
    )
    hists_a = a.get("histograms", {})
    hists_b = b.get("histograms", {})
    for name in sorted(set(hists_a) | set(hists_b)):
        ha, hb = hists_a.get(name, {}), hists_b.get(name, {})
        for stat in ("count", "p50", "p95", "p99", "max"):
            va, vb = float(ha.get(stat, 0.0)), float(hb.get(stat, 0.0))
            delta = (vb - va) / va * 100.0 if va else 0.0
            fig.add_row(name, stat, va, vb, delta)
    if not fig.rows:
        fig.add_note("no histograms present in either summary")
    return fig.render()


def compare_files(
    path_a: Union[str, pathlib.Path], path_b: Union[str, pathlib.Path]
) -> str:
    a, b = load_trace(path_a), load_trace(path_b)
    return compare_summaries(
        a["summary"],
        b["summary"],
        names=(pathlib.Path(path_a).name, pathlib.Path(path_b).name),
    )
