"""A simple persistent-heap allocator over the home region.

Workload data structures allocate their nodes/buckets/tuples here.  The
design is a size-classed free list over a bump pointer: deterministic,
O(1), and — like the paper's workloads, which use ordinary persistent
heaps — entirely in the home region, so every allocation address is
word-aligned and safely below the OOP region base.

Allocator *metadata* is volatile by intent: the paper's recovery story is
about data content, and our crash tests compare committed data, not heap
bookkeeping.  (A production persistent allocator is out of scope and
orthogonal to HOOP.)
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.common.errors import AllocationError


class PersistentHeap:
    """Bump allocator with per-size free lists."""

    def __init__(
        self,
        base: int = 4096,
        limit: int = 2**40,
        *,
        alignment: int = 8,
    ) -> None:
        if base < 0 or limit <= base:
            raise AllocationError("heap range is empty")
        if alignment & (alignment - 1):
            raise AllocationError("alignment must be a power of two")
        self.base = base
        self.limit = limit
        self.alignment = alignment
        self._cursor = self._align(base)
        self._free: Dict[int, List[int]] = defaultdict(list)
        self.allocations = 0
        self.frees = 0

    def _align(self, value: int) -> int:
        mask = self.alignment - 1
        return (value + mask) & ~mask

    def _rounded(self, size: int) -> int:
        if size <= 0:
            raise AllocationError(f"allocation size must be positive: {size}")
        return self._align(size)

    def allocate(self, size: int) -> int:
        """Return the address of a fresh ``size``-byte allocation."""
        rounded = self._rounded(size)
        free_list = self._free.get(rounded)
        if free_list:
            self.allocations += 1
            return free_list.pop()
        addr = self._cursor
        if addr + rounded > self.limit:
            raise AllocationError(
                f"persistent heap exhausted at {self._cursor:#x}"
            )
        self._cursor = addr + rounded
        self.allocations += 1
        return addr

    def free(self, addr: int, size: int) -> None:
        """Return an allocation to its size class."""
        rounded = self._rounded(size)
        if not self.base <= addr < self.limit:
            raise AllocationError(f"free of foreign address {addr:#x}")
        self._free[rounded].append(addr)
        self.frees += 1

    @property
    def bytes_reserved(self) -> int:
        return self._cursor - self._align(self.base)

    @property
    def live_allocations(self) -> int:
        return self.allocations - self.frees


# -- snapshot declarations ----------------------------------------------------
PersistentHeap.__snapshot_state__ = "__all__"
