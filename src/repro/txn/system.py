"""The assembled memory system: device + hierarchy + scheme + clocks.

One :class:`MemorySystem` is one simulated machine.  Each core has its own
clock (nanoseconds); transactional operations advance the issuing core's
clock by cache latency plus whatever the active persistence scheme charges.
Multi-threaded experiments are driven by
:class:`repro.workloads.driver.WorkloadDriver`, which interleaves per-core
work in min-clock order so shared-resource contention (the NVM channel) is
modeled consistently.

Crash/recovery: :meth:`crash` drops every volatile structure — caches and
scheme SRAM — while :meth:`recover` invokes the scheme's recovery protocol
and returns its report.  The pair is what the crash-consistency property
tests drive.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.check.sanitizer import NULL_CHECKER
from repro.common.addr import CACHE_LINE_BYTES, split_by_cache_line
from repro.common.config import SystemConfig
from repro.common.errors import (
    AddressError,
    PowerLossError,
    TransactionError,
)
from repro.faults import make_device
from repro.memhier.hierarchy import CacheHierarchy
from repro.nvm.device import NVMDevice
from repro.schemes import make_scheme
from repro.schemes.base import PersistenceScheme
from repro.telemetry.hub import NULL_TELEMETRY
from repro.txn.allocator import PersistentHeap
from repro.txn.transaction import Transaction

# Instruction overhead charged per transactional memory operation.  The
# paper's workloads run as full x86 programs on McSimA+, so every tracked
# load/store is surrounded by a few dozen application instructions (hash
# computation, comparisons, allocator bookkeeping); ~25 instructions at
# 2.5 GHz and IPC ~1 is 10 ns.  Without this, simulated transactions are
# implausibly short and commit-time persists dominate every ratio.
_OP_OVERHEAD_NS = 10.0

_LINE_MASK = ~(CACHE_LINE_BYTES - 1)


class MemorySystem:
    """A simulated NVM machine running one persistence scheme."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        scheme: Union[str, PersistenceScheme] = "hoop",
        *,
        telemetry=None,
        checker=None,
    ) -> None:
        self.config = config or SystemConfig.paper_default()
        if isinstance(scheme, str):
            # Plain device unless the config opts into fault injection;
            # the plain path is untouched so fault-free simulations stay
            # bit-identical.
            self.device = make_device(self.config)
            self.scheme = make_scheme(scheme, self.config, self.device)
        else:
            # Adopt the scheme's device so durable_state and the traffic
            # counters observe the same NVM the scheme persists into.
            self.scheme = scheme
            self.device = scheme.device
        self.hierarchy = CacheHierarchy(
            self.config, self.scheme.fill_line, self.scheme.on_evict
        )
        self.heap = PersistentHeap(
            base=4096, limit=self.config.home_region_bytes
        )
        # Telemetry: the shared no-op unless an event hub was supplied.
        # `_tel_on` is the one-boolean hot-path guard the inlined
        # load/store paths below check.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._tel_on = self.telemetry.enabled
        if self._tel_on:
            self.scheme.attach_telemetry(self.telemetry)
            faulty = getattr(self.device, "injector", None)
            if faulty is not None:
                self.device.telemetry = self.telemetry
        # Persist-ordering sanitizer (repro.check): same no-op-singleton
        # pattern as telemetry; `_chk_on` is the hot-path guard.
        self.check = checker if checker is not None else NULL_CHECKER
        self._chk_on = self.check.active
        if self._chk_on:
            self.scheme.attach_checker(self.check)
        self.clocks = [0.0] * self.config.num_cores
        self.committed_transactions = 0
        # Recovery-attempt accounting (nested-fault sweep): how many
        # times recover() was entered and how many of those attempts a
        # nested power cut interrupted before they finished.
        self.recovery_attempts = 0
        self.recovery_interruptions = 0
        # Critical-path latency accumulator (Fig. 7b): sum/count/max of
        # Tx_begin→Tx_end times, cheap enough to leave always-on.
        self.latency_sum_ns = 0.0
        self.latency_count = 0
        self.latency_max_ns = 0.0

    # -- public API ------------------------------------------------------------

    def transaction(self, core: int = 0) -> Transaction:
        """Open a failure-atomic region on ``core`` (context manager)."""
        return Transaction(self, core)

    def run_batch(self, stores, core: int = 0) -> Transaction:
        """Execute ordered ``(addr, data)`` stores as one atomic region.

        The per-request surface of the serving layer
        (:mod:`repro.serve`): a batch of same-shard writes becomes a
        single ``Tx_begin … Tx_end`` transaction, so the whole batch is
        acknowledged — or lost — together.  Returns the closed
        :class:`Transaction`; its ``begin_ns``/``end_ns`` bracket the
        commit, which is the acknowledgement instant.  A
        :class:`~repro.common.errors.PowerLossError` mid-batch
        propagates with the transaction unacknowledged — the caller
        owns ``crash()``/``recover()`` and any retry policy.  The
        exception carries ``issued_stores``, the prefix of ``stores``
        whose store calls had completed when power died (the dying
        store itself excluded — its effects, if any, are torn), which
        is exactly the in-flight set a durability oracle must treat as
        all-or-nothing.  On success the returned transaction carries
        ``write_set`` (the full ordered store list) so callers — the
        replication layer above all — can re-derive the batch's
        word-granular redo records via :meth:`redo_words` without
        shadow bookkeeping.
        """
        stores = list(stores)
        tx = self.transaction(core)
        try:
            with tx:
                for addr, data in stores:
                    tx.store(addr, data)
        except PowerLossError as exc:
            exc.issued_stores = stores[: tx.stores]
            raise
        tx.write_set = stores
        return tx

    @staticmethod
    def redo_words(stores):
        """Word-granular redo export of one batch write set.

        Decomposes ``(addr, data)`` stores into ``(word_addr, 8-byte
        value)`` pairs — the redo records HOOP's controller
        materializes out-of-place, and the exact unit the replication
        layer ships and the acked-write oracle verifies.  Requires
        8-byte-aligned stores of word-multiple length (raises
        ``ValueError`` otherwise).  Pure function; touches no clocks.
        """
        words = []
        for addr, data in stores:
            if addr % 8 or len(data) % 8:
                raise ValueError(
                    "redo export requires 8-byte-aligned word-multiple "
                    f"stores (addr={addr:#x}, len={len(data)})"
                )
            for offset in range(0, len(data), 8):
                words.append((addr + offset, data[offset : offset + 8]))
        return words

    def allocate(self, size: int) -> int:
        """Persistent-heap allocation (home-region address)."""
        return self.heap.allocate(size)

    def free(self, addr: int, size: int) -> None:
        self.heap.free(addr, size)

    def load(self, addr: int, size: int, core: int = 0) -> bytes:
        """Non-transactional read (still goes through the caches)."""
        return self._load(core, addr, size)

    @property
    def now_ns(self) -> float:
        """Simulated wall-clock: the furthest core clock."""
        return max(self.clocks)

    def elapsed_ns(self, core: int) -> float:
        return self.clocks[core]

    # -- crash & recovery ----------------------------------------------------------

    def crash(self) -> None:
        """Power failure: caches and scheme-volatile state vanish.

        Also the reboot instant: an injected power cut is cleared so the
        device accepts writes again (recovery runs on restored power).
        Power is restored *before* the scheme's crash handler runs
        because schemes with a battery-backed persist domain (LAD) finish
        draining committed transactions there — physically that drain
        happens during the outage on backup energy, but applying it at
        reboot is content-identical and keeps the injector simple.
        """
        if self._tel_on:
            self.telemetry.emit(self.now_ns, "crash", "sim")
        self.hierarchy.crash()
        self.device.restore_power()
        self.scheme.crash()

    def recover(
        self,
        *,
        threads: int = 1,
        bandwidth_gb_per_s: Optional[float] = None,
    ):
        """Run the scheme's recovery; returns its report (or None).

        Counts every attempt, and separately every attempt a *nested*
        power cut interrupted (the exception still propagates — the
        caller decides whether to crash() and retry).  The counters land
        on telemetry as ``recovery.attempts`` / ``recovery.interrupted``
        when a hub is attached.
        """
        self.recovery_attempts += 1
        if self._tel_on:
            self.telemetry.count("recovery.attempts")
        try:
            return self.scheme.recover(
                threads=threads, bandwidth_gb_per_s=bandwidth_gb_per_s
            )
        except PowerLossError:
            self.recovery_interruptions += 1
            if self._tel_on:
                self.telemetry.count("recovery.interrupted")
            raise

    def durable_state(self, addr: int, size: int) -> bytes:
        """Raw NVM bytes (no caches) — the post-recovery truth for tests."""
        return self.device.peek(addr, size)

    @property
    def mean_latency_ns(self) -> float:
        if not self.latency_count:
            return 0.0
        return self.latency_sum_ns / self.latency_count

    def sync_clocks(self) -> float:
        """Barrier: align every core clock to the furthest one.

        Used at measurement boundaries (after the load phase, after
        warm-up) — threads start the measured region together, like the
        paper's benchmark harness.  Returns the barrier time.
        """
        horizon = max(self.clocks)
        self.clocks = [horizon] * len(self.clocks)
        return horizon

    def reset_measurement(self) -> None:
        """Zero traffic/latency counters after warm-up or setup."""
        self.scheme.reset_measurement()
        self.hierarchy.reset_stats()
        self.latency_sum_ns = 0.0
        self.latency_count = 0
        self.latency_max_ns = 0.0
        self.telemetry.reset_metrics()

    # -- transaction protocol (called by Transaction) --------------------------------

    def _begin(self, tx: Transaction) -> None:
        core = tx.core
        now = self.clocks[core]
        tx.tx_id, now = self.scheme.tx_begin(core, now)
        tx.begin_ns = now
        self.clocks[core] = now
        if self._chk_on:
            self.check.on_tx_begin(tx.tx_id, now)

    def _end(self, tx: Transaction) -> None:
        core = tx.core
        now = self.clocks[core]
        now = self.scheme.tx_end(core, tx.tx_id, now)
        tx.end_ns = now
        self.clocks[core] = now
        if self._chk_on:
            # Commit returned to the program: every ordering edge the
            # scheme's discipline promises must exist by now.
            self.check.on_tx_committed(tx.tx_id, now)
        self.committed_transactions += 1
        latency = tx.latency_ns
        self.latency_sum_ns += latency
        self.latency_count += 1
        if latency > self.latency_max_ns:
            self.latency_max_ns = latency
        if self._tel_on:
            self.telemetry.on_commit(core, tx.tx_id, tx.begin_ns, now)
        self.scheme.tick(now)

    def _store(self, tx: Transaction, addr: int, data: bytes) -> None:
        if not data:
            raise TransactionError("empty transactional store")
        core = tx.core
        now = self.clocks[core]
        size = len(data)
        if self._chk_on:
            self.check.on_store(tx.tx_id, addr, size, now)
        line_addr = addr & _LINE_MASK
        if addr >= 0 and (addr + size - 1) & _LINE_MASK == line_addr:
            # Fast path: the store stays within one cache line (the
            # dominant case — workloads store word-sized fields).
            # ``hierarchy.store`` + ``peek_line`` are inlined here: this
            # is the hottest function of every simulation, and the extra
            # call layers plus AccessOutcome construction are measurable.
            # Stats/flag side effects mirror hierarchy.store exactly.
            h = self.hierarchy
            if not 0 <= core < h._num_cores:
                raise AddressError(f"core {core} out of range")
            h.stats.stores += 1
            l1 = h._l1[core]
            mask = l1._set_mask
            if mask >= 0:
                index = (line_addr >> l1._shift) & mask
            else:
                index = (line_addr // l1._line_size) % l1._num_sets
            bucket = l1._sets[index]
            if line_addr in bucket:
                l1.hits += 1
                bucket.move_to_end(line_addr)
                latency = h._l1_latency
            else:
                l1.misses += 1
                latency = h._miss_resident(core, line_addr, now).latency_ns
            cow = h._data_cow
            if cow and line_addr in cow:
                # Buffer aliased by a snapshot: copy before writing.
                line = bytearray(h._data[line_addr])
                h._data[line_addr] = line
                cow.discard(line_addr)
            else:
                line = h._data[line_addr]
            offset = addr - line_addr
            line[offset : offset + size] = data
            flags = h._flags[line_addr]
            flags.dirty = True
            flags.persistent = True
            flags.tx_id = tx.tx_id
            start_ns = now
            now = self.scheme.on_store(
                core,
                tx.tx_id,
                addr,
                size,
                line_addr,
                bytes(line),
                # Parenthesized to match the split-loop's `now += lat +
                # overhead` association bit-for-bit.
                now + (latency + _OP_OVERHEAD_NS),
            )
            self.clocks[core] = now
            if self._tel_on:
                self.telemetry.record("store_latency_ns", now - start_ns)
            return
        start_ns = now
        for line_addr, piece_addr, piece_size in split_by_cache_line(
            addr, len(data)
        ):
            offset = piece_addr - addr
            piece = data[offset : offset + piece_size]
            outcome = self.hierarchy.store(
                core,
                piece_addr,
                piece,
                now,
                persistent=True,
                tx_id=tx.tx_id,
            )
            now += outcome.latency_ns + _OP_OVERHEAD_NS
            line_data = self.hierarchy.peek_line(line_addr)
            assert line_data is not None
            now = self.scheme.on_store(
                core, tx.tx_id, piece_addr, piece_size, line_addr, line_data, now
            )
        self.clocks[core] = now
        if self._tel_on:
            self.telemetry.record("store_latency_ns", now - start_ns)

    def _load_u64(self, core: int, addr: int) -> int:
        # The pointer-chase primitive of every tree/list workload.
        # ``hierarchy.load_u64`` (and its L1 probe) are inlined; side
        # effects mirror the generic path exactly.
        if addr < 0 or addr & 7:
            return int.from_bytes(self._load(core, addr, 8), "little")
        h = self.hierarchy
        if not 0 <= core < h._num_cores:
            raise AddressError(f"core {core} out of range")
        line_addr = addr & _LINE_MASK
        h.stats.loads += 1
        now = self.clocks[core]
        l1 = h._l1[core]
        mask = l1._set_mask
        if mask >= 0:
            index = (line_addr >> l1._shift) & mask
        else:
            index = (line_addr // l1._line_size) % l1._num_sets
        bucket = l1._sets[index]
        if line_addr in bucket:
            l1.hits += 1
            bucket.move_to_end(line_addr)
            latency = h._l1_latency
        else:
            l1.misses += 1
            latency = h._miss_resident(core, line_addr, now).latency_ns
        self.clocks[core] = now + (latency + _OP_OVERHEAD_NS)
        self.scheme.stats.tx_loads += 1
        if self._tel_on:
            self.telemetry.record("load_latency_ns", latency + _OP_OVERHEAD_NS)
        offset = addr - line_addr
        data = h._data[line_addr]
        return int.from_bytes(data[offset : offset + 8], "little")

    def _load(self, core: int, addr: int, size: int) -> bytes:
        now = self.clocks[core]
        if addr >= 0 and size > 0 and (addr + size - 1) & _LINE_MASK == addr & _LINE_MASK:
            # Fast path: single-line load (the dominant case).
            data, outcome = self.hierarchy.load(core, addr, size, now)
            self.clocks[core] = now + (outcome.latency_ns + _OP_OVERHEAD_NS)
            self.scheme.stats.tx_loads += 1
            if self._tel_on:
                self.telemetry.record(
                    "load_latency_ns", outcome.latency_ns + _OP_OVERHEAD_NS
                )
            return data
        chunks = []
        start_ns = now
        for _, piece_addr, piece_size in split_by_cache_line(addr, size):
            data, outcome = self.hierarchy.load(core, piece_addr, piece_size, now)
            now += outcome.latency_ns + _OP_OVERHEAD_NS
            chunks.append(data)
        self.clocks[core] = now
        self.scheme.stats.tx_loads += 1
        if self._tel_on:
            self.telemetry.record("load_latency_ns", now - start_ns)
        return b"".join(chunks)

# -- snapshot declarations ----------------------------------------------------
MemorySystem.__snapshot_state__ = "__all__"
