"""The user-facing transactional memory API.

:class:`repro.txn.system.MemorySystem` assembles a device, cache
hierarchy, and persistence scheme; :class:`repro.txn.transaction.Transaction`
is the ``Tx_begin``/``Tx_end`` failure-atomic region (§III-B: the only two
interfaces HOOP adds); :class:`repro.txn.allocator.PersistentHeap` carves
the home region into allocations for data structures.
"""

from repro.txn.allocator import PersistentHeap
from repro.txn.system import MemorySystem
from repro.txn.transaction import Transaction

__all__ = ["MemorySystem", "Transaction", "PersistentHeap"]
