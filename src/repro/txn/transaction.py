"""The failure-atomic region: ``Tx_begin`` … ``Tx_end``.

The paper deliberately keeps the programming model minimal (§III-B): the
two delimiters mark a region whose stores must become durable atomically;
concurrency control stays with the application.  :class:`Transaction`
is that region as a context manager.  All byte movement goes through the
owning :class:`~repro.txn.system.MemorySystem`, which charges latency to
the issuing core's clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.common.errors import TransactionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.txn.system import MemorySystem


class Transaction:
    """One failure-atomic region on one core."""

    def __init__(self, system: "MemorySystem", core: int) -> None:
        self.system = system
        self.core = core
        self.tx_id: Optional[int] = None
        self.stores = 0
        self.loads = 0
        self.begin_ns: float = 0.0
        self.end_ns: float = 0.0
        self._active = False

    # -- context manager ----------------------------------------------------

    def __enter__(self) -> "Transaction":
        self.system._begin(self)
        self._active = True
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            # A Python-level exception aborts the *program*, not the
            # transaction protocol: like the paper's model there is no
            # abort path, so surface the error after closing our state.
            self._active = False
            return False
        self.system._end(self)
        self._active = False
        return False

    # -- data plane -----------------------------------------------------------

    def _check_active(self) -> None:
        if not self._active or self.tx_id is None:
            raise TransactionError("transaction is not active")

    def store(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr`` (any size; split across lines)."""
        if not self._active or self.tx_id is None:
            raise TransactionError("transaction is not active")
        self.system._store(self, addr, data)
        self.stores += 1

    def load(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes at ``addr``."""
        if not self._active or self.tx_id is None:
            raise TransactionError("transaction is not active")
        self.loads += 1
        return self.system._load(self.core, addr, size)

    # Convenience accessors for word-sized integers, the dominant unit in
    # the paper's data-structure workloads.  They skip one delegation
    # layer — these two calls bound the per-operation overhead of every
    # pointer chase in the tree/list workloads.

    def store_u64(self, addr: int, value: int) -> None:
        if not self._active or self.tx_id is None:
            raise TransactionError("transaction is not active")
        self.system._store(self, addr, int(value).to_bytes(8, "little"))
        self.stores += 1

    def load_u64(self, addr: int) -> int:
        if not self._active or self.tx_id is None:
            raise TransactionError("transaction is not active")
        self.loads += 1
        return self.system._load_u64(self.core, addr)

    @property
    def latency_ns(self) -> float:
        """Critical-path latency: Tx_begin to Tx_end completion (§IV-C)."""
        return self.end_ns - self.begin_ns
