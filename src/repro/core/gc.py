"""Garbage collection with data coalescing (paper §III-E, Algorithm 1).

The collector runs periodically (10 ms simulated default) or on demand
(mapping table or OOP region filling up).  One pass:

1. pick the ``BLK_FULL`` data blocks;
2. read the commit log, walk every committed-unretired transaction whose
   slices lie entirely in collectable (FULL/GC) blocks, newest first;
3. **coalesce**: the first version of each home word seen in the
   reverse-time scan is the newest committed one — older versions of the
   same word are dropped without ever being written (this is where the
   Table IV data-reduction ratio comes from);
4. migrate the surviving words to their home addresses, parking each
   affected cache line in the eviction buffer and pruning mapping-table
   entries that described exactly the migrated version (Alg. 1 l. 22–23);
5. durably retire the migrated transactions in the commit log, then
   reclaim every block with no remaining live references (header state
   ``BLK_UNUSED``, cleared from the block index table).

Crash safety: the pass only *adds* home-region bytes that equal committed
OOP data, and retires transactions only after their data is durable at
home; a crash at any point leaves the commit log replayable (§III-E,
"HOOP can simply replay all committed transactions").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.addr import cache_line_base
from repro.common.config import SystemConfig
from repro.common.errors import CorruptionError
from repro.core.block_refs import BlockRefs
from repro.core.commit_log import CommitLog, CommittedTx
from repro.core.eviction_buffer import EvictionBuffer
from repro.core.mapping_table import MappingTable
from repro.core.oop_region import BlockState, OOPRegion
from repro.core.slices import SliceCodec
from repro.memctrl.port import MemoryPort
from repro.memctrl.scheduler import PeriodicTrigger
from repro.telemetry.hub import NULL_TELEMETRY

# Reserved system slot (below the persistent heap's base) holding the
# highest retired TxID.  GC retires transactions in commit order, so the
# watermark cleanly separates "migrated and possibly overwritten" from
# "must be replayed" for recovery scans of reused blocks.
RETIRE_WATERMARK_ADDR = 128


@dataclass
class GCPassReport:
    """What one collection pass did."""

    triggered_on_demand: bool = False
    blocks_collected: int = 0
    transactions_migrated: int = 0
    words_scanned: int = 0
    words_migrated: int = 0
    slices_read: int = 0
    completion_ns: float = 0.0

    @property
    def bytes_modified(self) -> int:
        return self.words_scanned * 8

    @property
    def bytes_migrated(self) -> int:
        return self.words_migrated * 8

    @property
    def data_reduction_ratio(self) -> float:
        """Fraction of transaction-modified bytes GC never wrote home."""
        if self.words_scanned == 0:
            return 0.0
        return 1.0 - self.words_migrated / self.words_scanned


@dataclass
class GCStats:
    """Aggregate across all passes (feeds Table IV and Fig. 10)."""

    passes: int = 0
    on_demand_passes: int = 0
    blocks_collected: int = 0
    transactions_migrated: int = 0
    words_scanned: int = 0
    words_migrated: int = 0
    reports: List[GCPassReport] = field(default_factory=list)

    def absorb(self, report: GCPassReport) -> None:
        self.passes += 1
        if report.triggered_on_demand:
            self.on_demand_passes += 1
        self.blocks_collected += report.blocks_collected
        self.transactions_migrated += report.transactions_migrated
        self.words_scanned += report.words_scanned
        self.words_migrated += report.words_migrated

    @property
    def data_reduction_ratio(self) -> float:
        if self.words_scanned == 0:
            return 0.0
        return 1.0 - self.words_migrated / self.words_scanned


class GarbageCollector:
    """Algorithm 1, wired to the controller's shared structures."""

    def __init__(
        self,
        config: SystemConfig,
        region: OOPRegion,
        codec: SliceCodec,
        commit_log: CommitLog,
        mapping: MappingTable,
        eviction_buffer: EvictionBuffer,
        refs: BlockRefs,
        port: MemoryPort,
    ) -> None:
        self.config = config
        self.region = region
        self.codec = codec
        self.commit_log = commit_log
        self.mapping = mapping
        self.eviction_buffer = eviction_buffer
        self.refs = refs
        self.port = port
        self.trigger = PeriodicTrigger(config.hoop.gc.period_ns)
        self.stats = GCStats()
        self._watermark = 0
        self.telemetry = NULL_TELEMETRY
        self.track = "gc"
        # Pressure thresholds in absolute units so the per-store pressure
        # probe is two integer-ish comparisons, not two divisions over
        # freshly-recomputed occupancy fractions.
        gc_cfg = config.hoop.gc
        self._mapping_pressure_entries = (
            gc_cfg.on_demand_mapping_fill * mapping.capacity_entries
        )
        self._region_pressure_blocks = (
            gc_cfg.on_demand_region_fill * region.num_blocks
        )

    # -- triggering ------------------------------------------------------------

    def maybe_run(self, now_ns: float) -> Optional[GCPassReport]:
        """Run a background pass if the period elapsed."""
        if not self.trigger.due(now_ns):
            return None
        missed = self.trigger.fire(now_ns)
        if self.telemetry.enabled:
            # fire_count vs missed-period skew: a high missed count means
            # the poll cadence (transaction boundaries) outran the period.
            self.telemetry.count("gc.periodic_fires")
            if missed > 1:
                self.telemetry.count("gc.missed_periods", missed - 1)
        return self.run(now_ns, on_demand=False)

    def pressure(self) -> bool:
        """True when SRAM/region occupancy demands an on-demand pass.

        Equivalent to comparing ``fill_fraction`` against the configured
        thresholds, but phrased as ``occupancy >= threshold * capacity``
        so the store critical path pays O(1) comparisons only.
        """
        return (
            self.mapping.entries >= self._mapping_pressure_entries
            or self.region.busy_blocks >= self._region_pressure_blocks
        )

    def set_period(self, period_ns: float, now_ns: float) -> None:
        """Retune the cadence (Fig. 10's sweep)."""
        self.trigger.reschedule(period_ns, now_ns)

    # -- one pass -----------------------------------------------------------------

    def run(self, now_ns: float, *, on_demand: bool) -> GCPassReport:
        report = GCPassReport(triggered_on_demand=on_demand)
        if on_demand:
            # Squeeze out everything collectable, including the active block.
            self.region.seal_active_block(now_ns, stream="data")
        candidates = set(self.region.full_blocks(stream="data"))
        report.completion_ns = now_ns
        if not candidates:
            self.stats.absorb(report)
            self.stats.reports.append(report)
            return report
        telemetry = self.telemetry if self.telemetry.enabled else None
        if telemetry is not None:
            telemetry.emit(
                now_ns,
                "gc_start",
                self.track,
                {"on_demand": on_demand, "candidates": len(candidates)},
            )
        for block in candidates:
            self.region.begin_gc(block, now_ns)

        collectable = candidates | {
            b
            for b in range(self.region.num_blocks)
            if self.region.state_of(b) == BlockState.GC
        }
        latest = now_ns

        # Pick the longest commit-order *prefix* of transactions whose
        # slices all sit in collectable blocks.  Migrating out of commit
        # order could land an older value home after a newer one when
        # interleaved multi-core chains straddle block boundaries, so the
        # first non-collectable transaction ends this round's window.
        prefix: List[CommittedTx] = []
        for tx in self.commit_log.committed_transactions():
            blocks = self.refs.blocks_of(tx.tx_id)
            if not blocks.issubset(collectable):
                break
            prefix.append(tx)

        # Walk the prefix newest-first (reverse time order) and coalesce
        # into H: first version seen per word wins (Alg. 1 l. 7-17).
        # With coalescing ablated, every version is written home in
        # forward commit order instead (the naive log-replay collector).
        coalesce = self.config.hoop.gc.coalesce
        coalesced: Dict[int, Tuple[bytes, int, int]] = {}
        migrated_txs: List[int] = []
        uncoalesced_writes = 0
        for tx in reversed(prefix):
            words, slices_read, latest = self._read_tx_words(tx, now_ns)
            report.slices_read += slices_read
            report.words_scanned += len(words)
            for addr, value, src_slice, src_slot in words:
                if addr not in coalesced:
                    coalesced[addr] = (value, src_slice, src_slot)
                elif not coalesce:
                    self.port.async_write(addr, value, now_ns)
                    uncoalesced_writes += 1
            migrated_txs.append(tx.tx_id)
            report.transactions_migrated += 1

        # Migrate the surviving versions home (Alg. 1 l. 20-27).
        lines: Dict[int, List[int]] = {}
        for addr in coalesced:
            lines.setdefault(cache_line_base(addr), []).append(addr)
        for line_addr, word_addrs in lines.items():
            home_line, latest = self.port.read(line_addr, 64, now_ns)
            staged = bytearray(home_line)
            word_writes = []
            for addr in sorted(word_addrs):
                value, src_slice, src_slot = coalesced[addr]
                offset = addr - line_addr
                staged[offset : offset + 8] = value
                word_writes.append((addr, value))
                entry = self.mapping.lookup_word(addr)
                if (
                    entry is not None
                    and not entry.in_buffer
                    and entry.slice_index == src_slice
                    and entry.word_slot == src_slot
                ):
                    self.mapping.remove_if_stale(addr, entry.seq)
                    if telemetry is not None:
                        telemetry.emit(
                            now_ns, "mapping_evict", self.track, {"addr": addr}
                        )
            # The line's word writes all queue at the same instant; batch
            # their channel math (the retire step drains the queue later).
            self.port.async_write_words(word_writes, now_ns)
            self.eviction_buffer.insert(line_addr, bytes(staged), now_ns)
        report.words_migrated = len(coalesced) + uncoalesced_writes

        # Durably retire, then reclaim blocks with no live references.
        if migrated_txs:
            latest = max(latest, self.port.drain(now_ns))
            latest = max(
                latest, self.commit_log.flush_dirty(now_ns, sync=True)
            )
            latest = max(
                latest, self.commit_log.retire(migrated_txs, now_ns)
            )
            self._watermark = max(self._watermark, max(migrated_txs))
            latest = max(
                latest,
                self.port.sync_write(
                    RETIRE_WATERMARK_ADDR,
                    self._watermark.to_bytes(8, "little"),
                    now_ns,
                ),
            )
            for tx_id in migrated_txs:
                self.refs.on_tx_retired(tx_id)
        for block in sorted(collectable):
            if (
                self.region.state_of(block) == BlockState.GC
                and self.refs.is_reclaimable(block)
            ):
                self.region.reclaim(block, now_ns)
                report.blocks_collected += 1
        latest = max(latest, self._reclaim_addr_blocks(now_ns))

        report.completion_ns = latest
        if telemetry is not None:
            # The end event is stamped at the pass's async completion
            # horizon (see the hub's ordering contract).
            telemetry.emit(
                report.completion_ns,
                "gc_end",
                self.track,
                {
                    "scanned": report.words_scanned,
                    "migrated": report.words_migrated,
                    "reclaimed": report.blocks_collected,
                    "txs": report.transactions_migrated,
                },
            )
            telemetry.record("gc_pause_ns", report.completion_ns - now_ns)
        self.stats.absorb(report)
        self.stats.reports.append(report)
        return report

    # -- helpers ------------------------------------------------------------------

    def _read_tx_words(
        self, tx: CommittedTx, now_ns: float
    ) -> Tuple[List[Tuple[int, bytes, int, int]], int, float]:
        """All words of a transaction, newest store first.

        Walks each chain segment tail-to-head via prev-links; segments are
        recorded oldest-first, so they are visited in reverse.  Within a
        slice the packing order is oldest-first, so word slots are visited
        in reverse too.
        """
        words: List[Tuple[int, bytes, int, int]] = []
        slices_read = 0
        latest = now_ns
        total = self.region.num_blocks * self.region.slots_per_block
        for tail in reversed(tx.segment_tails):
            cursor: Optional[int] = tail
            while cursor is not None:
                raw, completion = self.region.read_slice(cursor, now_ns)
                latest = max(latest, completion)
                slices_read += 1
                try:
                    ds = self.codec.decode_data(raw)
                except CorruptionError:
                    break  # torn tail of a crashed segment; older data intact
                block, _ = self.region.slice_location(cursor)
                if (
                    ds.tx_id != tx.tx_id
                    or ds.generation != self.region.generation_of(block)
                ):
                    break  # chain ran into reused slices; stop defensively
                for slot in range(len(ds.words) - 1, -1, -1):
                    addr, value = ds.words[slot]
                    words.append((addr, value, cursor, slot))
                if ds.prev_delta is None:
                    cursor = None
                else:
                    cursor = (cursor - ds.prev_delta) % total
        return words, slices_read, latest

    def _reclaim_addr_blocks(self, now_ns: float) -> float:
        """Reclaim commit-log blocks whose pages are all fully retired."""
        retired_pages = self.commit_log.fully_retired_pages()
        if not retired_pages:
            return now_ns
        by_block: Dict[int, List[int]] = {}
        for slice_index in retired_pages:
            block, _ = self.region.slice_location(slice_index)
            by_block.setdefault(block, []).append(slice_index)
        latest = now_ns
        for block, pages in by_block.items():
            if (
                self.region.state_of(block) == BlockState.FULL
                and len(pages) == self.region.slots_per_block
            ):
                self.commit_log.drop_pages(pages)
                self.region.begin_gc(block, now_ns)
                self.region.reclaim(block, now_ns)
        return latest


# -- snapshot declarations ----------------------------------------------------
GCPassReport.__snapshot_state__ = "__atoms__"
GCStats.__snapshot_state__ = "__all__"
GarbageCollector.__snapshot_state__ = "__all__"
