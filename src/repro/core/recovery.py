"""Post-crash data recovery (paper §III-F, Fig. 11).

Recovery replays the OOP region onto the home region:

1. read the headers of every touched block and the pages of every
   commit-log (address-slice) block;
2. sort committed, unretired transactions in commit order and deal them
   round-robin to ``threads`` recovery workers;
3. each worker walks its transactions' slice chains and keeps, per home
   word, the value with the largest commit sequence (its *local hash set*);
4. a master merge folds the local sets, newest commit wins;
5. the merged set is split back across workers, which write the words home
   and flush;
6. the mapping table, eviction buffer, and OOP region are cleared.

The byte-level work is performed functionally (the home region really is
restored, and tests verify it equals the committed-transaction oracle).
The reported *time* comes from an analytic model of the same quantities
the implementation just measured: bytes scanned and written, thread count,
and NVM bandwidth — each thread is latency-bound at one outstanding slice
read, and aggregate throughput is capped by the channel.  That produces
Fig. 11's two behaviours: time falls linearly with bandwidth, and thread
scaling saturates once ``threads × per-thread rate`` exceeds the channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.addr import cache_line_base
from repro.common.config import SystemConfig
from repro.common.errors import CorruptionError
from repro.common.units import bytes_per_ns_from_gbps
from repro.core.commit_log import CommitLog, CommittedTx
from repro.core.oop_region import BlockState, OOPRegion
from repro.core.slices import SLICE_BYTES, KIND_ADDR, SliceCodec
from repro.memctrl.port import MemoryPort


@dataclass
class RecoveryReport:
    """Everything a recovery pass did and how long the model says it took."""

    threads: int
    bandwidth_gb_per_s: float
    committed_transactions: int = 0
    words_recovered: int = 0
    bytes_scanned: int = 0
    bytes_written: int = 0
    slices_walked: int = 0
    scan_time_ns: float = 0.0
    merge_time_ns: float = 0.0
    write_time_ns: float = 0.0
    per_thread_txs: List[int] = field(default_factory=list)

    @property
    def elapsed_ns(self) -> float:
        return self.scan_time_ns + self.merge_time_ns + self.write_time_ns


class RecoveryManager:
    """Rebuilds a consistent home region from the OOP region."""

    # Cost of one hash-map fold step.  Local inserts overlap the scan;
    # the master fold is bucket-partitioned across the recovery threads
    # (each worker folds a hash range), so it divides by the thread count.
    _MERGE_NS_PER_WORD = 3.0

    def __init__(
        self,
        config: SystemConfig,
        region: OOPRegion,
        codec: SliceCodec,
        commit_log: CommitLog,
        port: MemoryPort,
    ) -> None:
        self.config = config
        self.region = region
        self.codec = codec
        self.commit_log = commit_log
        self.port = port
        # Whole-block read cache, alive for one recover() pass only.
        self._block_cache: Dict[int, bytes] = {}

    # -- the functional pass ---------------------------------------------------

    def recover(
        self,
        *,
        threads: int = 1,
        bandwidth_gb_per_s: Optional[float] = None,
        clear_region: bool = True,
        require_entries: bool = False,
        only_tx_ids: Optional[set] = None,
    ) -> RecoveryReport:
        """Replay committed transactions onto the home region.

        ``require_entries`` disables the STATE_LAST region scan, trusting
        only durable commit-log entries — the multi-controller protocol,
        where a locally-final slice may belong to a globally-unresolved
        two-phase commit.  ``only_tx_ids`` further restricts replay to a
        caller-approved set (the coordinator's intersection).
        """
        if threads < 1:
            raise ValueError("recovery needs at least one thread")
        bandwidth = bandwidth_gb_per_s or self.config.nvm.bandwidth_gb_per_s
        report = RecoveryReport(threads=threads, bandwidth_gb_per_s=bandwidth)
        device = self.port.device
        # One whole-block peek per touched block instead of a 128-byte
        # peek per slice: recovery only reads the region until step 5
        # writes the *home* region, so a per-pass cache is safe, and
        # peek() has no timing/stats side effects to distort.
        self._block_cache = {}

        # Step 1: block headers, then commit-log pages.
        self.region.rebuild_from_nvm()
        busy_blocks = [
            b
            for b in range(self.region.num_blocks)
            if self.region.state_of(b) != BlockState.UNUSED
        ]
        report.bytes_scanned += len(busy_blocks) * SLICE_BYTES  # headers
        pages = []
        slots_per_block = self.region.slots_per_block
        for block in busy_blocks:
            if self.region.stream_of(block) != "addr":
                continue
            # Whole-block scan on the cached buffer: the per-slot slice
            # offsets are linear, so no per-slice index math is needed.
            buf = self._block_buf(block)
            base_index = block * slots_per_block
            report.bytes_scanned += slots_per_block * SLICE_BYTES
            offset = SLICE_BYTES
            for slot in range(slots_per_block):
                raw = buf[offset : offset + SLICE_BYTES]
                offset += SLICE_BYTES
                # Inline kind_of: block buffers are exact slice multiples.
                if raw[-1] & 0xF != KIND_ADDR:
                    continue
                try:
                    pages.append(
                        (base_index + slot, self.codec.decode_addr(raw))
                    )
                except CorruptionError:
                    continue  # torn commit-log rewrite: newest entry lost
        self.commit_log.rebuild(pages)
        committed = list(self.commit_log.committed_transactions())

        # Commit entries are written lazily (the commit point is the
        # STATE_LAST data slice), so recent transactions may exist only in
        # the region itself: scan the data blocks for STATE_LAST slices of
        # transactions no page knows about, skipping anything at or below
        # the durable retire watermark and anything from a stale block
        # generation.
        from repro.core.gc import RETIRE_WATERMARK_ADDR
        from repro.core.slices import KIND_DATA, STATE_LAST

        watermark = int.from_bytes(
            device.peek(RETIRE_WATERMARK_ADDR, 8), "little"
        )
        finalized = {tx.tx_id for tx in committed}
        open_segments = self.commit_log.open_segments()
        # Transactions whose every durable commit entry carries the
        # retired bit were already migrated home by GC.  They can sit
        # *above* the durable watermark when a crash lands between the
        # retire rewrite and the watermark update, so the watermark test
        # alone does not exclude them — without this set the STATE_LAST
        # scan would resurrect and re-replay them, and a second nested
        # crash during that replay could tear state GC had finished
        # with.  (Their data is durable: GC drains before it retires.)
        retired_only = (
            self.commit_log.known_tx_ids()
            - finalized
            - set(open_segments)
        )
        scan_blocks = [] if require_entries else busy_blocks
        for block in scan_blocks:
            if self.region.stream_of(block) != "data":
                continue
            generation = self.region.generation_of(block)
            buf = self._block_buf(block)
            base_index = block * slots_per_block
            report.bytes_scanned += slots_per_block * SLICE_BYTES
            offset = SLICE_BYTES
            for slot in range(slots_per_block):
                raw = buf[offset : offset + SLICE_BYTES]
                offset += SLICE_BYTES
                if raw[-1] & 0xF != KIND_DATA:
                    continue
                try:
                    ds = self.codec.decode_data(raw)
                except CorruptionError:
                    continue
                if (
                    ds.state != STATE_LAST
                    or ds.generation != generation
                    or ds.tx_id <= watermark
                    or ds.tx_id in finalized
                    or ds.tx_id in retired_only
                ):
                    continue
                slice_index = base_index + slot
                segments = open_segments.get(ds.tx_id, []) + [slice_index]
                committed.append(
                    CommittedTx(ds.tx_id, tuple(segments))
                )
                finalized.add(ds.tx_id)

        # Replay in TxID order — the paper's commit-ID rule (§III-F);
        # conflicting transactions never overlap, so TxID order is commit
        # order.
        if only_tx_ids is not None:
            committed = [tx for tx in committed if tx.tx_id in only_tx_ids]
        committed.sort(key=lambda tx: tx.tx_id)
        report.committed_transactions = len(committed)

        # Steps 2-3: deal transactions round-robin; per-thread local sets.
        shards: List[Dict[int, Tuple[int, bytes]]] = [
            {} for _ in range(threads)
        ]
        report.per_thread_txs = [0] * threads
        for seq, tx in enumerate(committed):
            worker = seq % threads
            report.per_thread_txs[worker] += 1
            words, scanned = self._walk_tx(tx)
            report.slices_walked += scanned
            report.bytes_scanned += scanned * SLICE_BYTES
            local = shards[worker]
            for addr, value in words:
                current = local.get(addr)
                # <= so a transaction's own later write to the same word
                # supersedes its earlier one (words arrive oldest-first).
                if current is None or current[0] <= seq:
                    local[addr] = (seq, value)

        # Step 4: master merge, newest commit sequence wins.
        merged: Dict[int, Tuple[int, bytes]] = {}
        merge_ops = 0
        for local in shards:
            for addr, (seq, value) in local.items():
                merge_ops += 1
                current = merged.get(addr)
                if current is None or current[0] < seq:
                    merged[addr] = (seq, value)

        # Step 5: split the merged set and write home.
        for addr in sorted(merged):
            _, value = merged[addr]
            device.poke(addr, value)
        report.words_recovered = len(merged)
        report.bytes_written = len(merged) * 8

        # Step 6: volatile structures and the OOP region are cleared.
        if clear_region:
            self.region.clear(0.0)
            self.commit_log.clear()
        self._block_cache = {}

        self._apply_time_model(report, merge_ops)
        return report

    def _block_buf(self, block: int) -> bytes:
        """A whole block's bytes, via the per-pass cache."""
        buf = self._block_cache.get(block)
        if buf is None:
            region = self.region
            buf = self.port.device.peek(
                region.block_base(block), region.block_bytes
            )
            self._block_cache[block] = buf
        return buf

    def _slice_raw(self, slice_index: int) -> bytes:
        """A region slice's bytes, via the per-pass whole-block cache."""
        block, slot = divmod(slice_index, self.region.slots_per_block)
        buf = self._block_buf(block)
        offset = (slot + 1) * SLICE_BYTES  # slot 0 follows the header slice
        return buf[offset : offset + SLICE_BYTES]

    def _walk_tx(self, tx: CommittedTx) -> Tuple[List[Tuple[int, bytes]], int]:
        """All words of a transaction in store order (oldest first)."""
        total = self.region.num_blocks * self.region.slots_per_block
        newest_first: List[Tuple[int, bytes]] = []
        slices = 0
        for tail in reversed(tx.segment_tails):
            cursor: Optional[int] = tail
            while cursor is not None:
                raw = self._slice_raw(cursor)
                slices += 1
                try:
                    ds = self.codec.decode_data(raw)
                except CorruptionError:
                    break
                block, _ = self.region.slice_location(cursor)
                if (
                    ds.tx_id != tx.tx_id
                    or ds.generation != self.region.generation_of(block)
                ):
                    break
                for slot in range(len(ds.words) - 1, -1, -1):
                    newest_first.append(ds.words[slot])
                cursor = (
                    None
                    if ds.prev_delta is None
                    else (cursor - ds.prev_delta) % total
                )
        newest_first.reverse()
        return newest_first, slices

    # -- the timing model ---------------------------------------------------------

    def _apply_time_model(self, report: RecoveryReport, merge_ops: int) -> None:
        nvm = self.config.nvm
        bw = bytes_per_ns_from_gbps(report.bandwidth_gb_per_s)
        threads = report.threads

        # Scan: each thread keeps one slice read outstanding; a read costs
        # device latency plus its transfer.  Aggregate capped by channel.
        per_thread_read = SLICE_BYTES / (
            nvm.read_latency_ns + SLICE_BYTES / bw
        )
        scan_rate = min(bw, threads * per_thread_read)
        report.scan_time_ns = report.bytes_scanned / scan_rate

        # Merge: local inserts happen during the scan; the fold over the
        # surviving entries is partitioned by hash bucket across threads.
        report.merge_time_ns = (
            merge_ops * self._MERGE_NS_PER_WORD / threads
        )

        # Write-back: threads stream line-sized flushes in parallel.
        line = 64
        per_thread_write = line / (nvm.write_latency_ns + line / bw)
        write_rate = min(bw, threads * per_thread_write)
        if report.bytes_written:
            report.write_time_ns = report.bytes_written / write_rate


# -- snapshot declarations ----------------------------------------------------
RecoveryReport.__snapshot_state__ = "__all__"
RecoveryManager.__snapshot_state__ = "__all__"
