"""The GC-migration eviction buffer (§III-C).

While GC migrates a cache line home and removes its mapping-table entry, a
concurrent LLC miss could race past the table and read the home region
before the migrated bytes land.  HOOP closes the window with a small
(128 KB) buffer: GC parks every migrated line here; the load path probes it
after a mapping-table miss and before falling through to the home region.

Ours is a FIFO over ``(home line address → 64-byte line)`` with the line
budget implied by the SRAM size (64 B data + 8 B tag per entry).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.common.addr import CACHE_LINE_BYTES, cache_line_base
from repro.telemetry.hub import NULL_TELEMETRY


@dataclass
class EvictionBufferStats:
    inserts: int = 0
    hits: int = 0
    misses: int = 0
    fifo_drops: int = 0


class EvictionBuffer:
    """FIFO staging buffer for lines written home during GC."""

    def __init__(self, capacity_lines: int) -> None:
        if capacity_lines <= 0:
            raise ValueError("eviction buffer capacity must be positive")
        self.capacity_lines = capacity_lines
        self._lines: "OrderedDict[int, bytes]" = OrderedDict()
        self.stats = EvictionBufferStats()
        self.telemetry = NULL_TELEMETRY
        self.track = "evict0"

    def insert(self, line_addr: int, data: bytes, now_ns: float = 0.0) -> None:
        """Park a migrated line; oldest entry falls out when full.

        ``now_ns`` is purely observational (the telemetry timestamp);
        the buffer itself has no clock.
        """
        if len(data) != CACHE_LINE_BYTES:
            raise ValueError("eviction buffer holds whole cache lines")
        line = cache_line_base(line_addr)
        if line in self._lines:
            self._lines.move_to_end(line)
        self._lines[line] = data
        self.stats.inserts += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                now_ns, "oop_evict", self.track, {"line": line}
            )
        while len(self._lines) > self.capacity_lines:
            self._lines.popitem(last=False)
            self.stats.fifo_drops += 1
            if self.telemetry.enabled:
                self.telemetry.count("evict.fifo_drops")

    def lookup(self, line_addr: int) -> Optional[bytes]:
        """Probe for a migrated line (the step-2 check in Fig. 6's load)."""
        data = self._lines.get(cache_line_base(line_addr))
        if data is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return data

    @property
    def occupancy(self) -> int:
        return len(self._lines)

    def crash(self) -> None:
        """SRAM content is lost on power failure."""
        self._lines.clear()

    def clear(self) -> None:
        self._lines.clear()


# -- snapshot declarations ----------------------------------------------------
EvictionBufferStats.__snapshot_state__ = "__atoms__"
EvictionBuffer.__snapshot_state__ = "__all__"
