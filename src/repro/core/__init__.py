"""HOOP's contribution: the out-of-place-update indirection layer.

Components map one-to-one onto the paper's Section III:

* :mod:`repro.core.slices` — data/address memory-slice codecs (Fig. 5b);
* :mod:`repro.core.oop_region` — log-structured OOP blocks + index table
  (Fig. 5a);
* :mod:`repro.core.oop_buffer` — per-core OOP data buffer with
  word-granularity data packing (Fig. 3);
* :mod:`repro.core.commit_log` — address memory slices recording committed
  transactions (the commit point);
* :mod:`repro.core.mapping_table` — hash-based physical-to-physical
  home→OOP mapping;
* :mod:`repro.core.eviction_buffer` — GC-migration staging buffer;
* :mod:`repro.core.gc` — Algorithm 1: reverse-time scan + data coalescing;
* :mod:`repro.core.recovery` — parallel post-crash recovery (Fig. 11);
* :mod:`repro.core.controller` — the load/store machinery of Fig. 6 tying
  everything together behind the scheme interface.
"""

from typing import List

from repro.core.controller import HoopController, HoopScheme
from repro.core.slices import AddressSlice, AddressSliceEntry, DataSlice, SliceCodec

__all__ = [
    "HoopController",
    "HoopScheme",
    "DataSlice",
    "AddressSlice",
    "AddressSliceEntry",
    "SliceCodec",
    "hoop_controllers",
]


def hoop_controllers(system_or_scheme) -> List[HoopController]:
    """The HOOP controllers behind a system or scheme, in track order.

    Accepts a :class:`~repro.txn.system.MemorySystem` or a bare scheme;
    returns ``[controller]`` for single-controller HOOP, every controller
    for the multi-controller scheme, and ``[]`` for the baselines — the
    one shared answer to "does this thing have HOOP machinery?" (the
    inspect tools and telemetry track naming both key off it).
    """
    scheme = getattr(system_or_scheme, "scheme", system_or_scheme)
    if isinstance(scheme, HoopScheme):
        return [scheme.controller]
    # Imported lazily: multi_controller imports the scheme base, and this
    # package initializer must stay cycle-free.
    from repro.core.multi_controller import MultiControllerHoopScheme

    if isinstance(scheme, MultiControllerHoopScheme):
        return list(scheme.controllers)
    return []
