"""The log-structured OOP region (paper Fig. 5a, Section III-D).

The region is an array of fixed-size **OOP blocks** (2 MB by default).
Slot 0 of every block holds the block header (index, next pointer, 2-bit
state: ``BLK_UNUSED``, ``BLK_INUSE``, ``BLK_FULL``, ``BLK_GC``); the
remaining slots are 128-byte memory slices.  A **block index table** maps
block numbers to start addresses and is cached in the memory controller.

Allocation is strictly round-robin over blocks *and* sequential over slices
within the active block, which is what gives the paper's uniform-aging
property (verified by a wear test) and keeps next-slice chain offsets small
enough for the 24-bit field.

Deviation noted for fidelity: the paper gives the header an 8-bit block
index, which cannot name the ~26 k blocks of a 51 GB OOP region; we widen
the on-NVM index field to 32 bits and record the discrepancy here and in
DESIGN.md.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass
from enum import IntEnum
from typing import Deque, Iterator, List, Optional, Set, Tuple

from repro.common.bitfield import BitStruct, Field
from repro.common.config import SystemConfig
from repro.common.errors import AddressError, CapacityError, CorruptionError
from repro.core.slices import SLICE_BYTES
from repro.memctrl.port import MemoryPort

import zlib


class BlockState(IntEnum):
    """The 2-bit block state from the OOP block header."""

    UNUSED = 0
    INUSE = 1
    FULL = 2
    GC = 3


_HEADER = BitStruct(
    [
        Field("index", 32),
        Field("next_block", 34),
        Field("state", 2),
        Field("stream", 2),  # 0 = data slices, 1 = commit-log address slices
        Field("generation", 8),  # reuse count (mod 256): stale-slice guard
        Field("checksum", 16),
    ],
    total_bytes=SLICE_BYTES,
)
_NO_NEXT_BLOCK = (1 << 34) - 1
_STREAM_CODES = {"data": 0, "addr": 1}
_STREAM_NAMES = {0: "data", 1: "addr"}


def _encode_header(
    index: int,
    next_block: Optional[int],
    state: BlockState,
    stream: str = "data",
    generation: int = 0,
) -> bytes:
    body = {
        "index": index,
        "next_block": _NO_NEXT_BLOCK if next_block is None else next_block,
        "state": int(state),
        "stream": _STREAM_CODES[stream],
        "generation": generation & 0xFF,
        "checksum": 0,
    }
    body["checksum"] = zlib.crc32(_HEADER.pack(body)) & 0xFFFF
    return _HEADER.pack(body)


def _decode_header(raw: bytes) -> Tuple[int, Optional[int], BlockState, str, int]:
    fields = _HEADER.unpack(raw)
    check = dict(fields, checksum=0)
    if fields["checksum"] != zlib.crc32(_HEADER.pack(check)) & 0xFFFF:
        raise CorruptionError("OOP block header checksum mismatch")
    next_block = fields["next_block"]
    return (
        fields["index"],
        None if next_block == _NO_NEXT_BLOCK else next_block,
        BlockState(fields["state"]),
        _STREAM_NAMES.get(fields["stream"], "data"),
        fields["generation"],
    )


@dataclass
class RegionStats:
    slices_allocated: int = 0
    blocks_opened: int = 0
    blocks_filled: int = 0
    blocks_reclaimed: int = 0


# Invariant-check mode: every O(1) occupancy read recomputes the answer
# from scratch and asserts equality.  Off by default (it restores the
# O(#blocks) scan this module exists to avoid); enabled by the property
# tests and by REPRO_CHECK_INVARIANTS=1.
_CHECK_INVARIANTS = os.environ.get("REPRO_CHECK_INVARIANTS", "0") not in ("", "0")


def set_invariant_checks(enabled: bool) -> bool:
    """Toggle paranoid occupancy rechecks; returns the previous setting."""
    global _CHECK_INVARIANTS
    previous = _CHECK_INVARIANTS
    _CHECK_INVARIANTS = enabled
    return previous


class OOPRegion:
    """Allocator and accessor for the out-of-place update region."""

    def __init__(
        self,
        config: SystemConfig,
        port: MemoryPort,
        *,
        base: Optional[int] = None,
        size: Optional[int] = None,
    ) -> None:
        self.config = config
        self.port = port
        self.base = config.oop_region_base if base is None else base
        self.block_bytes = config.hoop.oop_block_bytes
        region_bytes = config.oop_region_bytes if size is None else size
        self.num_blocks = region_bytes // self.block_bytes
        if self.num_blocks < 2:
            raise CapacityError("OOP region needs at least two blocks")
        # Slot 0 of each block is the header; the rest hold slices.
        self.slots_per_block = self.block_bytes // SLICE_BYTES - 1
        self._state: List[BlockState] = [BlockState.UNUSED] * self.num_blocks
        self._free: Deque[int] = deque(range(self.num_blocks))
        # Two allocation streams: "data" for data memory slices, "addr" for
        # commit-log address slices.  Keeping them in separate blocks means
        # a data block's reclaim depends only on its transactions being
        # migrated, never on commit-log pages that happen to share it (an
        # engineering choice the paper leaves open; see DESIGN.md).
        self._active: dict = {"data": None, "addr": None}
        self._cursor: dict = {"data": 0, "addr": 0}
        self._block_stream: dict = {}
        self._generation: dict = {}  # block -> reuse count
        self._touched: Set[int] = set()
        # Incremental occupancy: number of blocks whose state != UNUSED.
        # Maintained by every state transition so ``fill_fraction`` (read
        # on the store critical path via GC pressure checks) is O(1)
        # instead of an O(#blocks) rescan.
        self._busy_blocks = 0
        self.stats = RegionStats()

    # -- address arithmetic -------------------------------------------------

    def block_base(self, block: int) -> int:
        """Start address of a block (the block index table's job)."""
        if not 0 <= block < self.num_blocks:
            raise AddressError(f"block {block} out of range")
        return self.base + block * self.block_bytes

    def slice_location(self, slice_index: int) -> Tuple[int, int]:
        """Map a region slice index to ``(block, slot)``."""
        if slice_index < 0 or slice_index >= self.num_blocks * self.slots_per_block:
            raise AddressError(f"slice index {slice_index} out of range")
        return divmod(slice_index, self.slots_per_block)

    def slice_addr(self, slice_index: int) -> int:
        """Physical NVM address of a region slice index."""
        block, slot = self.slice_location(slice_index)
        return self.block_base(block) + (slot + 1) * SLICE_BYTES

    def slice_index(self, block: int, slot: int) -> int:
        if not 0 <= slot < self.slots_per_block:
            raise AddressError(f"slot {slot} out of range")
        return block * self.slots_per_block + slot

    # -- block state ------------------------------------------------------------

    def state_of(self, block: int) -> BlockState:
        return self._state[block]

    def full_blocks(self, stream: Optional[str] = "data") -> List[int]:
        return [
            b
            for b, s in enumerate(self._state)
            if s == BlockState.FULL
            and (stream is None or self._block_stream.get(b) == stream)
        ]

    def blocks_in_state(self, state: BlockState) -> List[int]:
        return [b for b, s in enumerate(self._state) if s == state]

    @property
    def fill_fraction(self) -> float:
        """Fraction of blocks not currently reusable (for GC triggering)."""
        if _CHECK_INVARIANTS:
            self.verify_accounting()
        return self._busy_blocks / self.num_blocks

    @property
    def busy_blocks(self) -> int:
        """Number of blocks whose state is not UNUSED (O(1))."""
        return self._busy_blocks

    def verify_accounting(self) -> None:
        """Recompute occupancy from scratch and assert the counter agrees."""
        busy = sum(1 for s in self._state if s != BlockState.UNUSED)
        if busy != self._busy_blocks:
            raise AssertionError(
                f"incremental busy-block counter {self._busy_blocks} != "
                f"recounted {busy}"
            )

    def generation_of(self, block: int) -> int:
        """Current reuse generation of a block (stamped into its slices)."""
        return self._generation.get(block, 0)

    def _write_header(self, block: int, state: BlockState, now_ns: float) -> None:
        old = self._state[block]
        if (old == BlockState.UNUSED) != (state == BlockState.UNUSED):
            self._busy_blocks += 1 if old == BlockState.UNUSED else -1
        self._state[block] = state
        self._touched.add(block)
        stream = self._block_stream.get(block, "data")
        raw = _encode_header(
            block, None, state, stream, self._generation.get(block, 0)
        )
        self.port.async_write(self.block_base(block), raw, now_ns)

    # -- allocation ---------------------------------------------------------------

    def allocate_slice(self, now_ns: float, stream: str = "data") -> int:
        """Claim the next sequential slice slot; returns its region index.

        Opens a fresh block (round-robin from the free list) when the
        stream's active block fills.  Raises :class:`CapacityError` when
        the region is exhausted — callers trigger on-demand GC first.
        """
        if stream not in self._active:
            raise AddressError(f"unknown allocation stream {stream!r}")
        if self._active[stream] is None:
            if not self._free:
                raise CapacityError("OOP region exhausted; GC required")
            block = self._free.popleft()
            self._active[stream] = block
            self._cursor[stream] = 0
            self._block_stream[block] = stream
            self.stats.blocks_opened += 1
            self._write_header(block, BlockState.INUSE, now_ns)
        block = self._active[stream]
        index = self.slice_index(block, self._cursor[stream])
        self._cursor[stream] += 1
        self.stats.slices_allocated += 1
        if self._cursor[stream] >= self.slots_per_block:
            self._write_header(block, BlockState.FULL, now_ns)
            self.stats.blocks_filled += 1
            self._active[stream] = None
        return index

    def stream_of(self, block: int) -> Optional[str]:
        """Which allocation stream a block belongs to (None if never used)."""
        return self._block_stream.get(block)

    def seal_active_block(self, now_ns: float, stream: str = "data") -> Optional[int]:
        """Force the stream's active block to FULL (used by on-demand GC)."""
        block = self._active.get(stream)
        if block is None:
            return None
        self._write_header(block, BlockState.FULL, now_ns)
        self.stats.blocks_filled += 1
        self._active[stream] = None
        return block

    def active_block(self, stream: str = "data") -> Optional[int]:
        return self._active.get(stream)

    def free_block_count(self) -> int:
        return len(self._free)

    # -- GC transitions -----------------------------------------------------------

    def begin_gc(self, block: int, now_ns: float) -> None:
        if self._state[block] != BlockState.FULL:
            raise CapacityError(f"block {block} not FULL; cannot GC")
        self._write_header(block, BlockState.GC, now_ns)

    def reclaim(self, block: int, now_ns: float) -> None:
        """Return a collected block to the free rotation (BLK_UNUSED).

        Bumps the block's reuse generation so slices written before the
        reclaim can never be mistaken for live ones by a recovery scan.
        """
        if self._state[block] != BlockState.GC:
            raise CapacityError(f"block {block} not under GC; cannot reclaim")
        self._generation[block] = (self._generation.get(block, 0) + 1) & 0xFF
        self._write_header(block, BlockState.UNUSED, now_ns)
        self._free.append(block)  # tail append = round-robin wear leveling
        self.stats.blocks_reclaimed += 1

    # -- slice IO ---------------------------------------------------------------

    def write_slice(
        self, slice_index: int, raw: bytes, now_ns: float, *, sync: bool
    ) -> float:
        """Persist a 128-byte slice; returns completion time."""
        if len(raw) != SLICE_BYTES:
            raise AddressError("slice writes must be exactly 128 bytes")
        addr = self.slice_addr(slice_index)
        if sync:
            return self.port.sync_write(addr, raw, now_ns)
        return self.port.async_write(addr, raw, now_ns)

    def read_slice(self, slice_index: int, now_ns: float) -> Tuple[bytes, float]:
        """Read a 128-byte slice; returns ``(raw, completion)``."""
        return self.port.read(self.slice_addr(slice_index), SLICE_BYTES, now_ns)

    def iter_block_slices(self, block: int) -> Iterator[int]:
        """Region slice indexes of every slot in a block."""
        for slot in range(self.slots_per_block):
            yield self.slice_index(block, slot)

    # -- lifecycle -------------------------------------------------------------

    def crash(self) -> None:
        """Drop volatile allocator state (content stays on NVM)."""
        self._active = {"data": None, "addr": None}
        self._cursor = {"data": 0, "addr": 0}

    def rebuild_from_nvm(self) -> None:
        """Reconstruct block states by scanning on-NVM headers.

        Used by recovery before replaying committed transactions.  Blocks
        whose header was never written stay UNUSED.
        """
        self._state = [BlockState.UNUSED] * self.num_blocks
        self._block_stream = {}
        self._generation = {}
        for block in sorted(self._touched):
            raw = self.port.device.peek(self.block_base(block), SLICE_BYTES)
            try:
                _, _, state, stream, generation = _decode_header(raw)
            except CorruptionError:
                state = BlockState.UNUSED
                stream = "data"
                generation = 0
            # A block caught mid-GC is replayed like a FULL block.
            if state == BlockState.GC:
                state = BlockState.FULL
            self._state[block] = state
            self._generation[block] = generation
            if state != BlockState.UNUSED:
                self._block_stream[block] = stream
        self._busy_blocks = sum(
            1 for s in self._state if s != BlockState.UNUSED
        )
        self._free = deque(
            b for b, s in enumerate(self._state) if s == BlockState.UNUSED
        )
        self._active = {"data": None, "addr": None}
        self._cursor = {"data": 0, "addr": 0}

    def clear(self, now_ns: float) -> None:
        """Reset the whole region to UNUSED (end of recovery, §III-F).

        Every touched block's generation is bumped so slices from before
        the wipe can never be mistaken for live data later.
        """
        for block in sorted(self._touched):
            self._generation[block] = (
                self._generation.get(block, 0) + 1
            ) & 0xFF
            if self._state[block] != BlockState.UNUSED:
                self._write_header(block, BlockState.UNUSED, now_ns)
        self._state = [BlockState.UNUSED] * self.num_blocks
        self._busy_blocks = 0
        self._free = deque(range(self.num_blocks))
        self._active = {"data": None, "addr": None}
        self._cursor = {"data": 0, "addr": 0}
        self._block_stream.clear()


# -- snapshot declarations ----------------------------------------------------
RegionStats.__snapshot_state__ = "__atoms__"
OOPRegion.__snapshot_state__ = "__all__"
