"""Volatile per-block liveness bookkeeping for safe block reclamation.

Algorithm 1 reclaims a ``BLK_FULL`` block after migrating its committed
transactions — but a full block can also hold slices of a transaction that
is *still open* (it filled the block and kept going), and those slices must
survive until that transaction commits and is itself migrated.  The memory
controller tracks, per block, which transactions have slices there and
whether each is open, committed, or retired.  This is SRAM state: a crash
destroys it, which is safe because recovery replays the commit log and then
clears the whole region.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set


class BlockRefs:
    """Tracks which transactions keep which OOP blocks alive."""

    def __init__(self) -> None:
        self._block_txs: Dict[int, Set[int]] = defaultdict(set)
        self._tx_blocks: Dict[int, Set[int]] = defaultdict(set)
        self._open_txs: Set[int] = set()

    def on_tx_begin(self, tx_id: int) -> None:
        self._open_txs.add(tx_id)

    def on_slice_written(self, tx_id: int, block: int) -> None:
        self._block_txs[block].add(tx_id)
        self._tx_blocks[tx_id].add(block)

    def on_tx_commit(self, tx_id: int) -> None:
        self._open_txs.discard(tx_id)

    def on_tx_retired(self, tx_id: int) -> None:
        """Drop a migrated transaction's references."""
        self._open_txs.discard(tx_id)
        for block in self._tx_blocks.pop(tx_id, set()):
            txs = self._block_txs.get(block)
            if txs is not None:
                txs.discard(tx_id)
                if not txs:
                    del self._block_txs[block]

    def blocks_of(self, tx_id: int) -> Set[int]:
        return set(self._tx_blocks.get(tx_id, set()))

    def live_txs_in(self, block: int) -> Set[int]:
        return set(self._block_txs.get(block, set()))

    def has_open_tx(self, block: int) -> bool:
        return any(tx in self._open_txs for tx in self._block_txs.get(block, ()))

    def is_reclaimable(self, block: int) -> bool:
        """True when no live transaction references the block."""
        return not self._block_txs.get(block)

    def open_transactions(self) -> List[int]:
        return sorted(self._open_txs)

    def crash(self) -> None:
        self._block_txs.clear()
        self._tx_blocks.clear()
        self._open_txs.clear()

    clear = crash


# -- snapshot declarations ----------------------------------------------------
BlockRefs.__snapshot_state__ = "__all__"
