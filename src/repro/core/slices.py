"""Memory-slice codecs (paper Fig. 5).

Every 128-byte slice in the OOP region is one of:

* a **data memory slice** — up to eight 8-byte words of transactional
  updates plus 64 bytes of metadata: per-word home addresses (40-bit word
  indexes by default), a 24-bit next-slice offset linking the transaction's
  chain, a 32-bit TxID, a start-of-transaction bit, a 3-bit word count, and
  a 4-bit state flag (Fig. 5b);

* an **address memory slice** — the commit log: a packed array of
  ``(TxID, start-slice, retired)`` entries.  Persisting a transaction's
  entry is HOOP's commit point; the retired bit is set by GC after the
  transaction's updates have been migrated home.

The last byte of every slice is a kind tag shared by both layouts so block
scans (GC, recovery) can classify slices without context.  A 16-bit
checksum over each slice's payload detects torn or stray writes — the paper
relies on slice-granularity write atomicity ("two consecutive memory
bursts"); the checksum is our functional-simulation equivalent, letting
recovery reject partially-persisted metadata instead of trusting it.

Variable packing (Section III-C): for home regions larger than 2^40 words
the per-word address field widens and the packing degree N drops below
eight; :meth:`SliceCodec.for_home_bits` computes N from the metadata budget
exactly as the paper describes (1 PB still fits seven updates in two cache
lines).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.common.bitfield import BitStruct, Field, pack_uint_list, unpack_uint_list
from repro.common.errors import CorruptionError

SLICE_BYTES = 128
WORD_BYTES = 8

# Slice kind tags (the shared last byte, low nibble = kind).
KIND_FREE = 0x0
KIND_DATA = 0x1
KIND_ADDR = 0x2

# 4-bit data-slice state flag values (Fig. 5b "Flag").
STATE_OPEN = 0x1  # written during transaction execution
STATE_LAST = 0x2  # the final slice of its transaction

_NEXT_OFFSET_BITS = 24
_NO_NEXT = (1 << _NEXT_OFFSET_BITS) - 1  # sentinel: end of chain segment
MAX_PREV_DELTA = _NO_NEXT - 1  # largest chain hop the 24-bit field encodes

_TXID_BITS = 32
_CHECKSUM_BITS = 16


def _checksum(payload: bytes) -> int:
    return zlib.crc32(payload) & 0xFFFF


@dataclass(frozen=True, slots=True)
class DataSlice:
    """Decoded data memory slice: the words of one packing unit.

    ``prev_delta`` is the Fig. 5b 24-bit "Next Slice" offset field.  We
    link chains *backwards* (each slice names its predecessor, which is
    known at write time, while a forward pointer would force rewriting the
    previous slice); Fig. 5a draws both prev and next links, and GC and
    recovery walk transactions newest-first anyway (Algorithm 1 line 7).
    The stored value is ``(this_index - prev_index) mod total_slices``;
    ``None`` marks the first slice of a chain segment.
    """

    tx_id: int
    words: Tuple[Tuple[int, bytes], ...]  # (home word address, 8-byte value)
    is_start: bool = False
    prev_delta: Optional[int] = None
    state: int = STATE_OPEN
    # Reuse generation of the block the slice was written into.  A block
    # reclaim bumps the generation, so stale slices surviving from before
    # the reclaim can never be mistaken for live ones by recovery scans.
    generation: int = 0

    def __post_init__(self) -> None:
        for addr, value in self.words:
            if addr % WORD_BYTES != 0:
                raise ValueError(f"home address {addr:#x} not word aligned")
            if len(value) != WORD_BYTES:
                raise ValueError("each packed word must be exactly 8 bytes")

    @property
    def count(self) -> int:
        return len(self.words)

    @property
    def home_addresses(self) -> List[int]:
        return [addr for addr, _ in self.words]


@dataclass(frozen=True)
class AddressSliceEntry:
    """One chain segment in the commit log.

    A transaction normally produces a single entry whose ``tail_slice``
    points at its last data slice and whose ``committed`` bit is set at
    Tx_end.  When a prev-link delta cannot fit the 24-bit offset field
    (a chain hop across distant reused blocks), the controller closes the
    segment with an uncommitted entry and starts a new one; only the final
    entry carries ``committed``.  Recovery and GC replay a transaction iff
    its committed entry is durable.
    """

    tx_id: int
    tail_slice: int  # region slice index of the segment's last data slice
    committed: bool = True
    retired: bool = False


@dataclass
class AddressSlice:
    """Decoded address memory slice (a page of the commit log)."""

    entries: List[AddressSliceEntry] = field(default_factory=list)
    sequence: int = 0  # commit-log page number, for recovery ordering


class SliceCodec:
    """Encode/decode slices for a given home-address width.

    The metadata half of a data slice has ``SLICE_BYTES - words*8`` bytes.
    Fixed fields cost 24 (next) + 32 (TxID) + 1 (start) + 3 (count) +
    4 (state) + 16 (checksum) = 80 bits plus the 8-bit kind tag; the
    remaining bits hold ``words`` home addresses of ``home_addr_bits``
    each.  ``for_home_bits`` picks the largest ``words <= 8`` that fits.
    """

    _FIXED_META_BITS = 88
    _TAG_BITS = 8

    def __init__(self, home_addr_bits: int = 40, words_per_slice: int = 8) -> None:
        if not 8 <= home_addr_bits <= 64:
            raise ValueError("home_addr_bits must be 8..64")
        if not 1 <= words_per_slice <= 8:
            raise ValueError("words_per_slice must be 1..8")
        needed_bits = (
            words_per_slice * 8 * 8  # data words
            + words_per_slice * home_addr_bits
            + self._FIXED_META_BITS
            + self._TAG_BITS
        )
        if needed_bits > SLICE_BYTES * 8:
            raise ValueError(
                f"{words_per_slice} words at {home_addr_bits}-bit addresses "
                f"need {needed_bits} bits; a slice has {SLICE_BYTES * 8}"
            )
        self.home_addr_bits = home_addr_bits
        self.words_per_slice = words_per_slice
        self._data_bytes = words_per_slice * 8
        self._addr_vec_bytes = (words_per_slice * home_addr_bits + 7) // 8
        meta_fields = [
            Field("next_offset", _NEXT_OFFSET_BITS),
            Field("tx_id", _TXID_BITS),
            Field("start", 1),
            Field("count", 3),
            Field("state", 4),
            Field("generation", 8),
            Field("checksum", _CHECKSUM_BITS),
        ]
        meta_bytes = SLICE_BYTES - self._data_bytes - self._addr_vec_bytes - 1
        self._meta = BitStruct(meta_fields, total_bytes=meta_bytes)
        # Address-slice layout: header (sequence 32b, count 8b,
        # checksum 16b) then entries of (tx_id 32b, tail 34b, committed 1b,
        # retired 1b).
        self._addr_header = BitStruct(
            [Field("sequence", 32), Field("count", 8), Field("checksum", 16)],
            total_bytes=7,
        )
        self._entry_bits = _TXID_BITS + 34 + 2
        payload_bits = (SLICE_BYTES - 1 - 7) * 8
        self.entries_per_addr_slice = payload_bits // self._entry_bits
        # decode_data memo: the decode is a pure function of the raw
        # bytes and DataSlice is frozen, so identical slices (recovery
        # replays of the same region content, GC re-walks) share one
        # decode.  Corrupt slices cache their message as a str.
        self._decode_cache: dict = {}

    @classmethod
    def for_home_bits(cls, home_addr_bits: int) -> "SliceCodec":
        """Maximum-packing codec for a given home-address width."""
        budget = SLICE_BYTES * 8 - cls._FIXED_META_BITS - cls._TAG_BITS
        words = min(8, budget // (64 + home_addr_bits))
        if words < 1:
            raise ValueError(f"no packing possible at {home_addr_bits} bits")
        return cls(home_addr_bits, words)

    # -- data slices -----------------------------------------------------------

    def encode_data(self, ds: DataSlice) -> bytes:
        """Encode a data slice into 128 bytes."""
        if not 1 <= ds.count <= self.words_per_slice:
            raise ValueError(
                f"slice holds 1..{self.words_per_slice} words, got {ds.count}"
            )
        data = bytearray(self._data_bytes)
        addrs = []
        addr_limit = 1 << self.home_addr_bits
        for i, (addr, value) in enumerate(ds.words):
            word_index = addr // WORD_BYTES
            if word_index >= addr_limit:
                raise ValueError(
                    f"home address {addr:#x} exceeds {self.home_addr_bits}-bit"
                    " word index"
                )
            data[i * 8 : (i + 1) * 8] = value
            addrs.append(word_index)
        addrs += [0] * (self.words_per_slice - len(addrs))
        addr_vec = pack_uint_list(
            addrs, self.home_addr_bits, self._addr_vec_bytes
        )
        next_offset = _NO_NEXT if ds.prev_delta is None else ds.prev_delta
        if not 0 <= next_offset <= _NO_NEXT:
            raise ValueError(f"prev delta {ds.prev_delta} exceeds 24 bits")
        body = {
            "next_offset": next_offset,
            "tx_id": ds.tx_id,
            "start": 1 if ds.is_start else 0,
            "count": ds.count - 1,
            "state": ds.state,
            "generation": ds.generation & 0xFF,
        }
        payload = bytes(data) + addr_vec
        meta = self._meta.pack(body)  # checksum field still zero
        meta = self._meta.with_field(
            meta, "checksum", _checksum(payload + meta)
        )
        raw = payload + meta + bytes([KIND_DATA])
        assert len(raw) == SLICE_BYTES
        return raw

    def decode_data(self, raw: bytes) -> DataSlice:
        """Decode 128 bytes into a data slice; raises on corruption."""
        if type(raw) is not bytes:
            raw = bytes(raw)
        cached = self._decode_cache.get(raw)
        if cached is not None:
            if type(cached) is str:
                raise CorruptionError(cached)
            return cached
        try:
            ds = self._decode_data_uncached(raw)
        except CorruptionError as exc:
            self._cache_put(raw, str(exc))
            raise
        self._cache_put(raw, ds)
        return ds

    def _cache_put(self, raw: bytes, value) -> None:
        cache = self._decode_cache
        if len(cache) >= 32768:  # bound footprint on long-lived codecs
            cache.clear()
        cache[raw] = value

    def _decode_data_uncached(self, raw: bytes) -> DataSlice:
        if len(raw) != SLICE_BYTES:
            raise CorruptionError(f"slice must be {SLICE_BYTES} bytes")
        if raw[-1] & 0xF != KIND_DATA:
            raise CorruptionError("not a data memory slice")
        data = bytes(raw[: self._data_bytes])
        addr_vec = raw[self._data_bytes : self._data_bytes + self._addr_vec_bytes]
        meta_raw = raw[self._data_bytes + self._addr_vec_bytes : -1]
        meta = self._meta.unpack(meta_raw)
        expected = _checksum(
            data + addr_vec + self._meta.clear_field(meta_raw, "checksum")
        )
        if meta["checksum"] != expected:
            raise CorruptionError("data slice checksum mismatch (torn write)")
        count = meta["count"] + 1
        word_indexes = unpack_uint_list(addr_vec, self.home_addr_bits, count)
        words = tuple(
            (word_indexes[i] * WORD_BYTES, data[i * 8 : (i + 1) * 8])
            for i in range(count)
        )
        next_offset = meta["next_offset"]
        return DataSlice(
            tx_id=meta["tx_id"],
            words=words,
            is_start=bool(meta["start"]),
            prev_delta=None if next_offset == _NO_NEXT else next_offset,
            state=meta["state"],
            generation=meta["generation"],
        )

    # -- address slices -----------------------------------------------------------

    def encode_addr(self, a: AddressSlice) -> bytes:
        """Encode a commit-log page into 128 bytes."""
        if len(a.entries) > self.entries_per_addr_slice:
            raise ValueError(
                f"address slice holds at most {self.entries_per_addr_slice}"
                f" entries, got {len(a.entries)}"
            )
        acc = 0
        for i, entry in enumerate(a.entries):
            if entry.tail_slice >= (1 << 34):
                raise ValueError("tail slice index exceeds 34 bits")
            packed = (
                entry.tx_id
                | (entry.tail_slice << _TXID_BITS)
                | ((1 if entry.committed else 0) << (_TXID_BITS + 34))
                | ((1 if entry.retired else 0) << (_TXID_BITS + 35))
            )
            acc |= packed << (i * self._entry_bits)
        payload = acc.to_bytes(SLICE_BYTES - 1 - 7, "little")
        header = self._addr_header.pack(
            {"sequence": a.sequence, "count": len(a.entries)}
        )
        header = self._addr_header.with_field(
            header, "checksum", _checksum(payload + header)
        )
        raw = header + payload + bytes([KIND_ADDR])
        assert len(raw) == SLICE_BYTES
        return raw

    def decode_addr(self, raw: bytes) -> AddressSlice:
        """Decode a commit-log page; raises on corruption."""
        if len(raw) != SLICE_BYTES:
            raise CorruptionError(f"slice must be {SLICE_BYTES} bytes")
        if raw[-1] & 0xF != KIND_ADDR:
            raise CorruptionError("not an address memory slice")
        header_raw = raw[:7]
        payload = raw[7:-1]
        header = self._addr_header.unpack(header_raw)
        zeroed = self._addr_header.clear_field(header_raw, "checksum")
        if header["checksum"] != _checksum(payload + zeroed):
            raise CorruptionError("address slice checksum mismatch")
        count = header["count"]
        if count > self.entries_per_addr_slice:
            raise CorruptionError("address slice entry count out of range")
        acc = int.from_bytes(payload, "little")
        mask = (1 << self._entry_bits) - 1
        entries = []
        for i in range(count):
            packed = (acc >> (i * self._entry_bits)) & mask
            entries.append(
                AddressSliceEntry(
                    tx_id=packed & ((1 << _TXID_BITS) - 1),
                    tail_slice=(packed >> _TXID_BITS) & ((1 << 34) - 1),
                    committed=bool(packed >> (_TXID_BITS + 34) & 1),
                    retired=bool(packed >> (_TXID_BITS + 35) & 1),
                )
            )
        return AddressSlice(entries=entries, sequence=header["sequence"])

    # -- classification -----------------------------------------------------------

    @staticmethod
    def kind_of(raw: bytes) -> int:
        """Kind tag of a raw slice (KIND_FREE/KIND_DATA/KIND_ADDR)."""
        if len(raw) != SLICE_BYTES:
            raise CorruptionError(f"slice must be {SLICE_BYTES} bytes")
        return raw[-1] & 0xF


# -- snapshot declarations ----------------------------------------------------
# DataSlice / AddressSliceEntry are frozen; the codec is stateless after
# construction.  AddressSlice owns a mutable entries list.
DataSlice.__snapshot_state__ = "__atom__"
AddressSliceEntry.__snapshot_state__ = "__atom__"
AddressSlice.__snapshot_state__ = "__all__"
SliceCodec.__snapshot_state__ = "__shared__"
