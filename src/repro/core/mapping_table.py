"""The hash-based physical-to-physical address mapping table (§III-C).

Maps home-region **word** addresses to the current out-of-place location of
their newest durable value: either a slot in a core's OOP data buffer (the
update has not been flushed yet) or a word slot inside a data memory slice
in the OOP region.  Lookups are grouped per cache line because the consumer
is the LLC-miss path, which reconstructs a whole 64-byte line.

Capacity is the SRAM budget from Section III-H: 2 MB at 16 bytes per entry
(8-byte home word address + 8-byte OOP location) = 128 K entries.  When
occupancy crosses the configured threshold the controller triggers
on-demand GC; entries belonging to still-open transactions cannot be
migrated, so the table may transiently exceed its budget — counted in
``overflow_events`` and reported, never hidden.

Design note (documented deviation): the paper removes an entry when an LLC
miss hits the table, arguing the cache hierarchy now holds the newest
version.  That optimization is purely about SRAM occupancy and re-creates
the entry on the next eviction; we keep entries until GC migrates them,
which preserves identical read results while making the occupancy we report
an upper bound.  See DESIGN.md §"Mapping-table lifetime".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.common.addr import CACHE_LINE_BYTES, cache_line_base

_LINE_MASK = ~(CACHE_LINE_BYTES - 1)


class OOPLocation(NamedTuple):
    """Where a word's newest durable (or buffered) value lives.

    A NamedTuple rather than a frozen dataclass: one is allocated per
    transactional store (and again per slice flush), and tuple
    construction is several times cheaper than ``object.__setattr__``
    per field.
    """

    in_buffer: bool  # True: core's OOP data buffer; False: OOP region slice
    slice_index: int  # region slice index (or buffer core id when in_buffer)
    word_slot: int  # word position within the slice / buffer entry
    seq: int  # global store sequence, for GC version comparison
    tx_id: int


@dataclass
class MappingStats:
    inserts: int = 0
    updates: int = 0
    removes: int = 0
    line_hits: int = 0
    line_misses: int = 0
    overflow_events: int = 0
    peak_entries: int = 0
    condensed_lines: int = 0


class MappingTable:
    """Home-word → OOP-location map with a hard SRAM entry budget.

    With ``condense=True`` (the paper's §III-I extension, "condense
    multiple mapping entries into one by exploiting the data locality"),
    a cache line whose eight words all map into the *same* memory slice
    is accounted as a single entry instead of eight — the SRAM-occupancy
    saving the paper sketches.  Lookup results are identical; only the
    occupancy accounting (and therefore GC-pressure timing) changes.
    """

    def __init__(self, capacity_entries: int, *, condense: bool = False) -> None:
        if capacity_entries <= 0:
            raise ValueError("mapping table capacity must be positive")
        self.capacity_entries = capacity_entries
        self.condense = condense
        # line base -> {word addr -> OOPLocation}
        self._lines: Dict[int, Dict[int, OOPLocation]] = {}
        self._condensed: set = set()
        self._entries = 0
        self.stats = MappingStats()

    # -- condensing (§III-I) --------------------------------------------------

    def _recheck_condensed(self, line: int) -> None:
        """Update the line's condensed status and entry accounting."""
        if not self.condense:
            return
        words = self._lines.get(line)
        condensable = (
            words is not None
            and len(words) == 8
            and len({loc.slice_index for loc in words.values()}) == 1
            and not any(loc.in_buffer for loc in words.values())
        )
        if condensable and line not in self._condensed:
            self._condensed.add(line)
            self._entries -= 7
            self.stats.condensed_lines += 1
        elif not condensable and line in self._condensed:
            self._condensed.discard(line)
            self._entries += 7

    # -- store-side updates -----------------------------------------------------

    def record(self, word_addr: int, location: OOPLocation) -> None:
        """Insert or update the newest location of a home word."""
        line = word_addr & _LINE_MASK
        words = self._lines.get(line)
        if words is None:
            words = {}
            self._lines[line] = words
        stats = self.stats
        if word_addr in words:
            stats.updates += 1
        else:
            entries = self._entries + 1
            self._entries = entries
            stats.inserts += 1
            if entries > self.capacity_entries:
                stats.overflow_events += 1
            if entries > stats.peak_entries:
                stats.peak_entries = entries
        words[word_addr] = location
        if self.condense:
            self._recheck_condensed(line)

    def relocate_buffered(
        self, word_addr: int, seq: int, new_location: OOPLocation
    ) -> None:
        """Repoint a buffered word at its flushed slice location.

        Only updates the entry when it still refers to the same store
        (matched by ``seq``); a newer store supersedes the flush.
        """
        line = word_addr & _LINE_MASK
        words = self._lines.get(line)
        if words is None:
            return
        current = words.get(word_addr)
        if current is not None and current.seq == seq and current.in_buffer:
            words[word_addr] = new_location
            if self.condense:
                self._recheck_condensed(line)

    # -- load-side lookups --------------------------------------------------------

    def lookup_line(self, line_addr: int) -> Optional[Dict[int, OOPLocation]]:
        """All mapped words of a cache line (the LLC-miss probe).

        Returns a live read-only view of the table's own dict — callers
        must not mutate it or hold it across table updates.
        """
        words = self._lines.get(line_addr & _LINE_MASK)
        if words:
            self.stats.line_hits += 1
            return words
        self.stats.line_misses += 1
        return None

    def lookup_word(self, word_addr: int) -> Optional[OOPLocation]:
        words = self._lines.get(cache_line_base(word_addr))
        if words is None:
            return None
        return words.get(word_addr)

    # -- GC-side removal --------------------------------------------------------

    def remove_if_stale(self, word_addr: int, migrated_seq: int) -> bool:
        """Drop the entry unless a newer store superseded the migration.

        Mirrors Algorithm 1 lines 22–23: after GC writes a word home, the
        mapping entry is removed — but only if it still describes the
        version that was migrated.
        """
        line = cache_line_base(word_addr)
        words = self._lines.get(line)
        if words is None:
            return False
        current = words.get(word_addr)
        if current is None or current.seq > migrated_seq:
            return False
        if line in self._condensed:
            self._condensed.discard(line)
            self._entries += 7
        del words[word_addr]
        self._entries -= 1
        self.stats.removes += 1
        if not words:
            del self._lines[line]
        return True

    def remove_words(self, word_addrs: Iterable[int]) -> int:
        """Unconditional removal (recovery cleanup); returns count removed."""
        removed = 0
        for word_addr in word_addrs:
            line = cache_line_base(word_addr)
            words = self._lines.get(line)
            if words and word_addr in words:
                if line in self._condensed:
                    self._condensed.discard(line)
                    self._entries += 7
                del words[word_addr]
                self._entries -= 1
                self.stats.removes += 1
                removed += 1
                if not words:
                    del self._lines[line]
        return removed

    # -- occupancy ------------------------------------------------------------

    @property
    def entries(self) -> int:
        return self._entries

    @property
    def fill_fraction(self) -> float:
        return self._entries / self.capacity_entries

    def tracked_lines(self) -> List[int]:
        return list(self._lines.keys())

    def iter_words(self) -> Iterable[Tuple[int, OOPLocation]]:
        for words in self._lines.values():
            yield from words.items()

    # -- crash lifecycle -----------------------------------------------------------

    def crash(self) -> None:
        """SRAM content is lost on power failure."""
        self._lines.clear()
        self._condensed.clear()
        self._entries = 0

    def clear(self) -> None:
        self._lines.clear()
        self._condensed.clear()
        self._entries = 0


# -- snapshot declarations ----------------------------------------------------
# OOPLocation is a NamedTuple of scalars: atom-shared (one lives per
# mapped word, so skipping the per-object engine call matters).
OOPLocation.__snapshot_state__ = "__atom__"
MappingStats.__snapshot_state__ = "__atoms__"
MappingTable.__snapshot_state__ = "__all__"
