"""The HOOP memory-controller machinery (paper Fig. 2 and Fig. 6).

:class:`HoopController` owns every indirection-layer structure and
implements the load/store/commit flows; :class:`HoopScheme` adapts it to
the common :class:`~repro.schemes.base.PersistenceScheme` contract so the
harness can swap HOOP against the baselines.

Store path (Fig. 6 right): a transactional store updates the cache line
(persistent bit set by the hierarchy) and mirrors each touched **word**
into the issuing core's OOP data buffer; packed slices stream to the OOP
region asynchronously; nothing stalls.  ``Tx_end`` drains the final slice
and appends the commit-log entry — two synchronous 128-byte persists are
the whole commit-time critical path.

Load path (Fig. 6 left): an LLC miss probes the mapping table.  On a hit
the home line and the referenced slices are read in parallel and the line
is reconstructed by overlaying the mapped words (newest versions of words
still in a core's OOP data buffer come straight from SRAM).  On a miss the
eviction buffer is probed, then the home region.

The crucial invariant (property-tested): every word a transaction stores
is mirrored out-of-place *at store time*, so dirty persistent lines can be
evicted by simply dropping them — the out-of-place copy plus the home
region always reconstructs the newest value.  That is where HOOP's write
traffic and latency wins come from.

Declared durability discipline: ``controller-ordered`` — the hardware
FIFO write queue orders the asynchronously streamed OOP slices ahead of
the synchronous STATE_LAST slice (the commit point), so no explicit
drain edge is required; the persist-ordering sanitizer
(:mod:`repro.check`) checks coverage and the synchronous commit persist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.addr import (
    CACHE_LINE_BYTES,
    WORD_BYTES,
    cache_line_base,
)
from repro.common.config import SystemConfig
from repro.core.block_refs import BlockRefs
from repro.core.commit_log import CommitLog
from repro.core.eviction_buffer import EvictionBuffer
from repro.core.gc import GarbageCollector, GCPassReport
from repro.core.mapping_table import MappingTable
from repro.core.oop_buffer import OOPDataBuffer
from repro.core.oop_region import OOPRegion
from repro.core.recovery import RecoveryManager, RecoveryReport
from repro.core.slices import SliceCodec
from repro.memctrl.port import MemoryPort
from repro.nvm.device import NVMDevice
from repro.schemes.base import PersistenceScheme, SchemeTraits
from repro.telemetry.hub import NULL_TELEMETRY

# On-chip SRAM probe latency inside the memory controller (mapping table,
# eviction buffer, OOP data buffer) and the slice-unpack cost the paper
# calls "a few cycles".
_SRAM_PROBE_NS = 2.0
_UNPACK_NS = 2.0


@dataclass
class HoopStats:
    """Controller-level counters behind §IV-C's read-path profile."""

    mapping_hits_on_miss: int = 0
    mapping_misses_on_miss: int = 0
    eviction_buffer_hits: int = 0
    parallel_reads: int = 0
    oop_only_reads: int = 0
    buffered_word_reads: int = 0
    persistent_evictions_dropped: int = 0
    on_demand_gc: int = 0
    # NVM reads issued by the *fill* path only (excludes GC's scans), the
    # denominator-matched counter behind §IV-C's "1.28 loads per miss".
    fill_home_reads: int = 0
    fill_slice_reads: int = 0


class HoopController:
    """All of HOOP's memory-controller state and flows."""

    def __init__(
        self,
        config: SystemConfig,
        device: NVMDevice,
        *,
        region_base: Optional[int] = None,
        region_size: Optional[int] = None,
    ) -> None:
        self.config = config
        self.device = device
        self.port = MemoryPort(device)
        if config.hoop.packing_degree is not None:
            self.codec = SliceCodec(
                config.hoop.home_addr_bits, config.hoop.packing_degree
            )
        else:
            self.codec = SliceCodec.for_home_bits(config.hoop.home_addr_bits)
        self.region = OOPRegion(
            config, self.port, base=region_base, size=region_size
        )
        self.mapping = MappingTable(
            config.hoop.mapping_table_entries,
            condense=config.hoop.condense_mapping,
        )
        self.eviction_buffer = EvictionBuffer(config.hoop.eviction_buffer_lines)
        self.commit_log = CommitLog(self.region, self.codec)
        self.refs = BlockRefs()
        self.buffer = OOPDataBuffer(
            config,
            self.region,
            self.codec,
            self.mapping,
            on_slice_written=self._record_slice,
        )
        self.gc = GarbageCollector(
            config,
            self.region,
            self.codec,
            self.commit_log,
            self.mapping,
            self.eviction_buffer,
            self.refs,
            self.port,
        )
        self.recovery = RecoveryManager(
            config, self.region, self.codec, self.commit_log, self.port
        )
        self.stats = HoopStats()
        self._store_seq = 0
        self.telemetry = NULL_TELEMETRY
        self._track = "ctrl0"

    def attach_telemetry(self, telemetry, *, index: int = 0) -> None:
        """Install an event hub across the controller's component tree.

        ``index`` names this controller's tracks (``ctrl<i>``, ``gc<i>``,
        ``evict<i>``) so the multi-controller scheme's timelines stay
        separable in the exported trace.
        """
        self.telemetry = telemetry
        self._track = f"ctrl{index}"
        self.port.telemetry = telemetry
        self.port.track = self._track
        self.gc.telemetry = telemetry
        self.gc.track = f"gc{index}"
        self.commit_log.telemetry = telemetry
        self.commit_log.track = self._track
        self.eviction_buffer.telemetry = telemetry
        self.eviction_buffer.track = f"evict{index}"
        self.buffer.telemetry = telemetry
        self.buffer.track = self._track

    def attach_checker(self, checker) -> None:
        """Install a persist-ordering sanitizer on the controller tree."""
        self.port.check = checker
        self.buffer.check = checker

    def _record_slice(self, tx_id: int, slice_index: int) -> None:
        block, _ = self.region.slice_location(slice_index)
        self.refs.on_slice_written(tx_id, block)

    # -- transaction flow -------------------------------------------------------

    def tx_begin(self, core: int, tx_id: int, now_ns: float) -> float:
        """Set the transaction state bit; open the core's buffer entry."""
        self.refs.on_tx_begin(tx_id)
        self.buffer.begin(core, tx_id)
        return now_ns

    def tx_store(
        self,
        core: int,
        tx_id: int,
        addr: int,
        size: int,
        line_addr: int,
        line_data: bytes,
        now_ns: float,
    ) -> float:
        """Mirror every touched word into the OOP data buffer."""
        if self.gc.pressure():
            if self.telemetry.enabled:
                self.telemetry.emit(
                    now_ns,
                    "ondemand_gc",
                    self._track,
                    {
                        "mapping_entries": self.mapping.entries,
                        "busy_blocks": self.region.busy_blocks,
                    },
                )
            report = self.gc.run(now_ns, on_demand=True)
            self.stats.on_demand_gc += 1
            now_ns = max(now_ns, report.completion_ns)
        # Precomputed word iteration: a step-8 range over validated
        # addresses (the hierarchy already bounds-checked the access)
        # instead of the generator + re-validation in iter_words.
        add_word = self.buffer.add_word
        seq = self._store_seq
        for word_addr in range(addr & ~(WORD_BYTES - 1), addr + size, WORD_BYTES):
            offset = word_addr - line_addr
            value = line_data[offset : offset + WORD_BYTES]
            seq += 1
            add_word(core, word_addr, value, seq, now_ns)
        self._store_seq = seq
        return now_ns

    def tx_end(self, core: int, tx_id: int, now_ns: float) -> float:
        """Drain the buffer, persist the commit-log entry (commit point)."""
        segments, completion = self.buffer.tx_end(core, now_ns)
        now_ns = max(now_ns, completion)
        for tail in segments[:-1]:
            now_ns = max(
                now_ns,
                self.commit_log.append_entry(tx_id, tail, False, now_ns),
            )
        if segments:
            now_ns = max(
                now_ns,
                self.commit_log.append_entry(tx_id, segments[-1], True, now_ns),
            )
            self.refs.on_tx_commit(tx_id)
        else:
            # A read-only transaction commits without any persist.
            self.refs.on_tx_retired(tx_id)
        return now_ns

    # -- load path (Fig. 6 left) ------------------------------------------------

    def fill_line(self, line_addr: int, now_ns: float) -> Tuple[bytes, float]:
        """Serve an LLC miss; returns (line, extra latency beyond caches)."""
        line_addr = cache_line_base(line_addr)
        mapped = self.mapping.lookup_line(line_addr)
        if mapped:
            self.stats.mapping_hits_on_miss += 1
            return self._reconstruct(line_addr, mapped, now_ns)
        self.stats.mapping_misses_on_miss += 1
        staged = self.eviction_buffer.lookup(line_addr)
        if staged is not None:
            self.stats.eviction_buffer_hits += 1
            return staged, _SRAM_PROBE_NS
        data, completion = self.port.read(line_addr, CACHE_LINE_BYTES, now_ns)
        self.stats.fill_home_reads += 1
        return data, (completion - now_ns) + _SRAM_PROBE_NS

    def _reconstruct(
        self, line_addr: int, mapped: Dict[int, "object"], now_ns: float
    ) -> Tuple[bytes, float]:
        """Overlay mapped words onto the home line (parallel reads)."""
        slice_reads: List[Tuple[int, "object"]] = []
        overlays: List[Tuple[int, bytes]] = []
        for word_addr, location in mapped.items():
            if location.in_buffer:
                value = self.buffer.buffered_word(
                    location.slice_index, word_addr
                )
                if value is None:
                    # The buffered word was flushed between mapping update
                    # and this probe; fall back to its slice via a fresh
                    # lookup (the relocation already happened).
                    refreshed = self.mapping.lookup_word(word_addr)
                    if refreshed is not None and not refreshed.in_buffer:
                        slice_reads.append((word_addr, refreshed))
                    continue
                overlays.append((word_addr, value))
                self.stats.buffered_word_reads += 1
            else:
                slice_reads.append((word_addr, location))

        distinct_slices: Dict[int, List[Tuple[int, "object"]]] = {}
        for word_addr, location in slice_reads:
            distinct_slices.setdefault(location.slice_index, []).append(
                (word_addr, location)
            )
        slice_completion = now_ns
        for slice_index, members in distinct_slices.items():
            raw, slice_completion = self.region.read_slice(slice_index, now_ns)
            self.stats.fill_slice_reads += 1
            ds = self.codec.decode_data(raw)
            for word_addr, location in members:
                slot = location.word_slot
                if slot < len(ds.words) and ds.words[slot][0] == word_addr:
                    value = ds.words[slot][1]
                else:  # defensive: locate by address
                    value = next(
                        (v for a, v in ds.words if a == word_addr), None
                    )
                if value is not None:
                    overlays.append((word_addr, value))

        # Only when the overlays cover the whole line can the home read be
        # skipped; otherwise both reads are issued in parallel (§III-G).
        covered = {word_addr for word_addr, _ in overlays}
        need_home = len(covered) < CACHE_LINE_BYTES // WORD_BYTES
        home_completion = now_ns
        if need_home:
            home, home_completion = self.port.read(
                line_addr, CACHE_LINE_BYTES, now_ns
            )
            self.stats.fill_home_reads += 1
            line = bytearray(home)
        else:
            line = bytearray(CACHE_LINE_BYTES)
        for word_addr, value in overlays:
            offset = word_addr - line_addr
            line[offset : offset + WORD_BYTES] = value

        if distinct_slices and need_home:
            self.stats.parallel_reads += 1
        elif distinct_slices:
            self.stats.oop_only_reads += 1
        final = max(home_completion, slice_completion)
        return bytes(line), (final - now_ns) + _SRAM_PROBE_NS + _UNPACK_NS

    # -- evictions -----------------------------------------------------------------

    def on_evict(
        self,
        line_addr: int,
        data: bytes,
        dirty: bool,
        persistent: bool,
        tx_id: int,
        now_ns: float,
    ) -> None:
        if not dirty:
            return
        if persistent:
            # Every transactional word is already mirrored out-of-place at
            # store time; the eviction costs nothing.
            self.stats.persistent_evictions_dropped += 1
            return
        self.port.async_write(line_addr, data, now_ns)

    # -- background / crash / recovery -------------------------------------------

    def tick(self, now_ns: float) -> Optional[GCPassReport]:
        return self.gc.maybe_run(now_ns)

    def quiesce(self, now_ns: float) -> float:
        """Migrate everything committed home (end-of-measurement GC)."""
        for _ in range(4):  # multi-segment chains may need extra passes
            if self.commit_log.live_count == 0:
                break
            report = self.gc.run(now_ns, on_demand=True)
            now_ns = max(now_ns, report.completion_ns)
            if report.transactions_migrated == 0:
                break
        return now_ns

    def crash(self) -> None:
        self.buffer.crash()
        self.mapping.crash()
        self.eviction_buffer.crash()
        self.refs.crash()
        self.region.crash()
        self.commit_log.crash()

    def recover(
        self,
        *,
        threads: int = 1,
        bandwidth_gb_per_s: Optional[float] = None,
    ) -> RecoveryReport:
        report = self.recovery.recover(
            threads=threads, bandwidth_gb_per_s=bandwidth_gb_per_s
        )
        self.mapping.clear()
        self.eviction_buffer.clear()
        self.refs.clear()
        return report


class HoopScheme(PersistenceScheme):
    """HOOP behind the common persistence-scheme contract."""

    name = "hoop"
    traits = SchemeTraits(
        approach="Hardware out-of-place update",
        read_latency="Low",
        extra_writes_on_critical_path=False,
        requires_flush_fence=False,
        write_traffic="Low",
        durability="controller-ordered",
    )

    def __init__(self, config: SystemConfig, device: NVMDevice) -> None:
        super().__init__(config, device)
        self.controller = HoopController(config, device)
        # Share one port so traffic rolls up in one place.
        self.port = self.controller.port

    def attach_telemetry(self, telemetry) -> None:
        self.telemetry = telemetry
        self.controller.attach_telemetry(telemetry, index=0)

    def attach_checker(self, checker) -> None:
        self.check = checker
        self.controller.attach_checker(checker)
        checker.bind_scheme(self.name, self.traits.durability)

    def tx_begin(self, core: int, now_ns: float) -> Tuple[int, float]:
        tx_id, now_ns = super().tx_begin(core, now_ns)
        return tx_id, self.controller.tx_begin(core, tx_id, now_ns)

    def on_store(
        self,
        core: int,
        tx_id: int,
        addr: int,
        size: int,
        line_addr: int,
        line_data: bytes,
        now_ns: float,
    ) -> float:
        self.stats.tx_stores += 1
        return self.controller.tx_store(
            core, tx_id, addr, size, line_addr, line_data, now_ns
        )

    def tx_end(self, core: int, tx_id: int, now_ns: float) -> float:
        return self.controller.tx_end(core, tx_id, now_ns)

    def fill_line(self, line_addr: int, now_ns: float) -> Tuple[bytes, float]:
        return self.controller.fill_line(line_addr, now_ns)

    def on_evict(
        self,
        line_addr: int,
        data: bytes,
        dirty: bool,
        persistent: bool,
        tx_id: int,
        now_ns: float,
    ) -> None:
        self.controller.on_evict(
            line_addr, data, dirty, persistent, tx_id, now_ns
        )

    def tick(self, now_ns: float) -> None:
        self.controller.tick(now_ns)

    def quiesce(self, now_ns: float) -> float:
        return self.controller.quiesce(now_ns)

    def crash(self) -> None:
        self.controller.crash()

    def recover(
        self, *, threads: int = 1, bandwidth_gb_per_s: Optional[float] = None
    ) -> RecoveryReport:
        return self.controller.recover(
            threads=threads, bandwidth_gb_per_s=bandwidth_gb_per_s
        )

    def reset_measurement(self) -> None:
        super().reset_measurement()
        # Keep per-window read-path counters aligned with the hierarchy
        # and device counters the harness resets at measurement start.
        self.controller.stats = HoopStats()

    @property
    def hoop_stats(self) -> HoopStats:
        return self.controller.stats


# -- snapshot declarations ----------------------------------------------------
HoopStats.__snapshot_state__ = "__atoms__"
HoopController.__snapshot_state__ = "__all__"
HoopScheme.__snapshot_state__ = "__all__"
