"""The per-core OOP data buffer and data packing (§III-C, Fig. 3).

Every transactional store sends its modified word (plus home address) to
the issuing core's buffer entry.  The buffer:

* tracks updates at **word granularity** and deduplicates repeated updates
  to the same word within a transaction ("multiple updates in the same
  cache line ... packed in the same memory slice");
* **packs** eight words and their metadata into one 128-byte memory slice
  and writes it to the OOP region asynchronously as soon as it fills;
* flushes the remainder synchronously at ``Tx_end``;
* keeps the mapping table pointed at the newest durable-or-buffered
  location of every word, so loads can be served from the buffer itself
  ("the OOP address stored in the mapping table can either point to a
  location in the OOP data buffer, or an OOP block in NVM").

The 1 KB-per-core budget bounds pending words at 64; the packing threshold
of eight keeps the live population far below that, and the bound is
asserted rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, List, Optional, Tuple

from repro.common.config import SystemConfig
from repro.common.errors import CapacityError, TransactionError
from repro.core.mapping_table import MappingTable, OOPLocation
from repro.core.oop_region import OOPRegion
from repro.core.slices import (
    MAX_PREV_DELTA,
    STATE_LAST,
    STATE_OPEN,
    DataSlice,
    SliceCodec,
)
from repro.check.sanitizer import NULL_CHECKER
from repro.telemetry.hub import NULL_TELEMETRY


# A pending word is a plain ``(value, seq)`` tuple: these are created on
# every transactional store, so they must cost one tuple allocation and
# nothing more.


@dataclass(slots=True)
class _CoreEntry:
    """Volatile per-core buffer state for the transaction in flight."""

    tx_id: Optional[int] = None
    pending: Dict[int, Tuple[bytes, int]] = field(default_factory=dict)
    last_slice: Optional[int] = None  # tail of the current chain segment
    segment_open: bool = False  # a slice has been written in this segment
    segments: List[int] = field(default_factory=list)  # closed segment tails
    words_flushed: int = 0


@dataclass
class BufferStats:
    words_buffered: int = 0
    words_deduped: int = 0
    slices_written: int = 0
    sync_slices: int = 0
    segment_splits: int = 0


class OOPDataBuffer:
    """All cores' OOP data buffer entries plus the packing logic."""

    def __init__(
        self,
        config: SystemConfig,
        region: OOPRegion,
        codec: SliceCodec,
        mapping: MappingTable,
        on_slice_written=None,
    ) -> None:
        self.config = config
        self.region = region
        self.codec = codec
        self.mapping = mapping
        self._on_slice_written = on_slice_written
        self._cores = [_CoreEntry() for _ in range(config.num_cores)]
        # 16 bytes of SRAM per pending word: 8 B data + 8 B home address.
        self.capacity_words = config.hoop.oop_buffer_bytes_per_core // 16
        self._words_per_slice = codec.words_per_slice
        self.stats = BufferStats()
        self._total_slices = region.num_blocks * region.slots_per_block
        self.telemetry = NULL_TELEMETRY
        self.track = "ctrl0"
        self.check = NULL_CHECKER
        # The sync STATE_LAST slice is HOOP's commit point — except under
        # the multi-controller 2PC, where a locally-final slice proves
        # nothing globally (the scheme emits its own commit note after
        # the commit phase and clears this flag).
        self.check_commit_on_last = True

    # -- transaction lifecycle ------------------------------------------------

    def begin(self, core: int, tx_id: int) -> None:
        entry = self._cores[core]
        if entry.tx_id is not None:
            raise TransactionError(
                f"core {core} already has transaction {entry.tx_id} open"
            )
        self._cores[core] = _CoreEntry(tx_id=tx_id)

    def add_word(
        self, core: int, word_addr: int, value: bytes, seq: int, now_ns: float
    ) -> None:
        """Stage one updated word; packs and flushes when a slice fills."""
        entry = self._cores[core]
        if entry.tx_id is None:
            raise TransactionError(f"core {core} has no open transaction")
        pending = entry.pending
        if word_addr in pending:
            self.stats.words_deduped += 1
        else:
            if len(pending) >= self.capacity_words:
                raise CapacityError(
                    f"OOP data buffer overflow on core {core}"
                )
            self.stats.words_buffered += 1
        pending[word_addr] = (value, seq)
        if self.telemetry.enabled:
            self.telemetry.emit(
                now_ns, "mapping_insert", self.track, {"addr": word_addr}
            )
        self.mapping.record(
            word_addr,
            OOPLocation(
                in_buffer=True,
                slice_index=core,
                word_slot=0,
                seq=seq,
                tx_id=entry.tx_id,
            ),
        )
        # Hold the buffer until it *overflows* a slice: the commit point is
        # the synchronous persist of a STATE_LAST slice at Tx_end, so every
        # transaction must end with at least one word still pending.
        if len(pending) > self._words_per_slice:
            self._flush_slice(core, now_ns, sync=False, last=False)

    def tx_end(self, core: int, now_ns: float) -> Tuple[List[int], float]:
        """Flush remaining words synchronously; returns (segment tails, t).

        The returned tails are the chain segments the commit log must
        record (all but the final one as uncommitted continuation entries).
        An empty list means the transaction wrote nothing.
        """
        entry = self._cores[core]
        if entry.tx_id is None:
            raise TransactionError(f"core {core} has no open transaction")
        completion = now_ns
        while entry.pending:
            last = len(entry.pending) <= self._words_per_slice
            completion = self._flush_slice(core, now_ns, sync=True, last=last)
        segments = list(entry.segments)
        if entry.last_slice is not None:
            segments.append(entry.last_slice)
        self._cores[core] = _CoreEntry()
        return segments, completion

    # -- reads ------------------------------------------------------------------

    def buffered_word(self, core: int, word_addr: int) -> Optional[bytes]:
        """Value of a word still sitting in a core's buffer, if any."""
        pending = self._cores[core].pending.get(word_addr)
        return pending[0] if pending is not None else None

    def open_tx(self, core: int) -> Optional[int]:
        return self._cores[core].tx_id

    def pending_count(self, core: int) -> int:
        return len(self._cores[core].pending)

    # -- packing -------------------------------------------------------------

    def _flush_slice(
        self, core: int, now_ns: float, *, sync: bool, last: bool
    ) -> float:
        entry = self._cores[core]
        assert entry.tx_id is not None and entry.pending
        # islice avoids copying the whole pending dict when it holds more
        # than one slice's worth of words.
        words = list(islice(entry.pending.items(), self._words_per_slice))
        slice_index = self.region.allocate_slice(now_ns, stream="data")
        prev_delta: Optional[int] = None
        if entry.segment_open:
            assert entry.last_slice is not None
            delta = (slice_index - entry.last_slice) % self._total_slices
            if 0 < delta <= MAX_PREV_DELTA:
                prev_delta = delta
            else:
                # Chain hop too far for the 24-bit field: close the segment
                # and start a fresh one (recorded separately at commit).
                entry.segments.append(entry.last_slice)
                self.stats.segment_splits += 1
        block, _ = self.region.slice_location(slice_index)
        ds = DataSlice(
            tx_id=entry.tx_id,
            words=tuple(
                (addr, value) for addr, (value, _seq) in words
            ),
            is_start=prev_delta is None,
            prev_delta=prev_delta,
            state=STATE_LAST if last else STATE_OPEN,
            generation=self.region.generation_of(block),
        )
        raw = self.codec.encode_data(ds)
        completion = self.region.write_slice(slice_index, raw, now_ns, sync=sync)
        if self._on_slice_written is not None:
            self._on_slice_written(entry.tx_id, slice_index)
        for slot, (addr, (_value, seq)) in enumerate(words):
            self.mapping.relocate_buffered(
                addr,
                seq,
                OOPLocation(
                    in_buffer=False,
                    slice_index=slice_index,
                    word_slot=slot,
                    seq=seq,
                    tx_id=entry.tx_id,
                ),
            )
            del entry.pending[addr]
        entry.last_slice = slice_index
        entry.segment_open = True
        entry.words_flushed += len(words)
        self.stats.slices_written += 1
        if sync:
            self.stats.sync_slices += 1
        check = self.check
        if check.active:
            port = self.region.port
            for addr, _pending in words:
                check.note_persist(
                    entry.tx_id, "oop", addr, 8, now_ns, sync=sync,
                    port=port,
                )
            if last and self.check_commit_on_last:
                check.note_persist(
                    entry.tx_id, "commit", -1, 0, completion, sync=sync,
                    port=port,
                )
        return completion

    # -- crash lifecycle ------------------------------------------------------

    def crash(self) -> None:
        """All buffered (uncommitted) words are lost with power."""
        self._cores = [_CoreEntry() for _ in range(self.config.num_cores)]


# -- snapshot declarations ----------------------------------------------------
# _CoreEntry's pending dict / segments list are deep-cloned; the buffer's
# _on_slice_written bound method is re-bound to the cloned controller by
# the engine's method handler.
_CoreEntry.__snapshot_state__ = "__all__"
BufferStats.__snapshot_state__ = "__atoms__"
OOPDataBuffer.__snapshot_state__ = "__all__"
