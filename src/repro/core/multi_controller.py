"""Multiple memory controllers with two-phase commit (paper §III-I).

The paper sketches the extension: "HOOP can be extended to support
multiple memory controllers with the two-phase commit protocol.  In the
Prepare phase, the cache controller will send the modified data in a
transaction to the OOP data buffer [of each controller] ... the cache
controller waits for all outstanding flushes to be acknowledged.  In the
Commit phase, the cache controller sends the commit message with the
transaction identity to all memory controllers."

This module implements that sketch faithfully on top of the
single-controller machinery:

* the physical address space is interleaved across ``controllers`` HOOP
  controllers at cache-line granularity; each controller owns an equal
  carve of the reserved OOP region;
* **Prepare**: each participating controller drains the transaction's
  slices (the per-controller ``tx_end`` flush), in parallel — the commit
  waits for the *slowest* participant;
* **Commit**: a commit entry for the transaction is durably appended on
  *every* controller (the commit message), again in parallel;
* **Recovery**: standard 2PC presumed-abort reasoning.  The Commit
  phase starts only after every prepare acknowledged, so a commit entry
  durable on *any* controller proves the global commit decision; the
  agreed set is the union of the controllers' durable commit entries.  A
  torn two-phase commit that reached *no* controller is discarded
  everywhere (the program never saw the commit), preserving atomicity
  across the interleave.  A controller whose own commit-log page was
  lost to a torn rewrite still replays an agreed transaction by finding
  its STATE_LAST slice in the region scan — the scan locates segment
  tails only; it never *decides* commitment, because a locally-final
  slice proves nothing globally.

Declared durability discipline: ``controller-ordered`` — same as
single-controller HOOP (each controller's FIFO write queue orders the
transaction's slice persists ahead of its synchronous commit entry), but
the commit point the sanitizer sees is the end of the *global* Commit
phase, not any participant's locally-final slice.

The per-controller GC keeps running independently; it only ever migrates
transactions whose commit entry is locally durable, which in this
protocol implies the global commit succeeded or will be resolved by
recovery before any block reuse (entries are written before ``tx_end``
returns).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.common.addr import cache_line_index
from repro.common.config import SystemConfig
from repro.common.errors import ConfigError
from repro.core.controller import HoopController
from repro.core.recovery import RecoveryReport
from repro.nvm.device import NVMDevice
from repro.schemes.base import PersistenceScheme, SchemeTraits

# Controller-to-controller commit message hop (on-package interconnect).
_COMMIT_MESSAGE_NS = 20.0


class MultiControllerHoopScheme(PersistenceScheme):
    """HOOP across ``controllers`` memory controllers with 2PC."""

    name = "hoop-mc"
    traits = SchemeTraits(
        approach="Hardware out-of-place update (multi-controller)",
        read_latency="Low",
        extra_writes_on_critical_path=False,
        requires_flush_fence=False,
        write_traffic="Low",
        durability="controller-ordered",
    )

    def __init__(
        self,
        config: SystemConfig,
        device: NVMDevice,
        controllers: int = 2,
    ) -> None:
        super().__init__(config, device)
        if controllers < 2:
            raise ConfigError("multi-controller mode needs >= 2 controllers")
        carve = config.oop_region_bytes // controllers
        carve -= carve % config.hoop.oop_block_bytes
        if carve < 2 * config.hoop.oop_block_bytes:
            raise ConfigError("OOP region too small to split")
        self.controllers: List[HoopController] = [
            HoopController(
                config,
                device,
                region_base=config.oop_region_base + i * carve,
                region_size=carve,
            )
            for i in range(controllers)
        ]
        # Open transactions: tx -> set of participating controller ids.
        self._participants = {}
        self.two_phase_commits = 0

    def attach_telemetry(self, telemetry) -> None:
        super().attach_telemetry(telemetry)
        for i, controller in enumerate(self.controllers):
            controller.attach_telemetry(telemetry, index=i)

    def attach_checker(self, checker) -> None:
        self.check = checker
        for controller in self.controllers:
            controller.attach_checker(checker)
            # A locally-final STATE_LAST slice proves nothing globally:
            # the commit note is emitted here, after the 2PC commit phase.
            controller.buffer.check_commit_on_last = False
        checker.bind_scheme(self.name, self.traits.durability)

    # -- partitioning -----------------------------------------------------------

    def _owner(self, addr: int) -> int:
        """Line-interleaved ownership across controllers."""
        return cache_line_index(addr) % len(self.controllers)

    # -- transactional API -----------------------------------------------------

    def tx_begin(self, core: int, now_ns: float) -> Tuple[int, float]:
        tx_id, now_ns = super().tx_begin(core, now_ns)
        self._participants[tx_id] = set()
        return tx_id, now_ns

    def on_store(
        self,
        core: int,
        tx_id: int,
        addr: int,
        size: int,
        line_addr: int,
        line_data: bytes,
        now_ns: float,
    ) -> float:
        self.stats.tx_stores += 1
        owner = self._owner(line_addr)
        controller = self.controllers[owner]
        participants = self._participants[tx_id]
        if owner not in participants:
            controller.tx_begin(core, tx_id, now_ns)
            participants.add(owner)
        return controller.tx_store(
            core, tx_id, addr, size, line_addr, line_data, now_ns
        )

    def tx_end(self, core: int, tx_id: int, now_ns: float) -> float:
        participants = sorted(self._participants.pop(tx_id, set()))
        if not participants:
            return now_ns
        # Prepare: every participant drains its slices; the cache
        # controller waits for all flush acknowledgements (max, parallel).
        prepare_done = now_ns
        tails = {}
        for owner in participants:
            controller = self.controllers[owner]
            segments, completion = controller.buffer.tx_end(core, now_ns)
            tails[owner] = segments
            prepare_done = max(prepare_done, completion)
        # Commit: the commit message reaches every controller and each
        # durably records the transaction identity.
        commit_done = prepare_done + _COMMIT_MESSAGE_NS
        for i, controller in enumerate(self.controllers):
            segments = tails.get(i, [])
            done = prepare_done
            for tail in segments[:-1]:
                done = max(
                    done,
                    controller.commit_log.append_entry(
                        tx_id, tail, False, prepare_done
                    ),
                )
            tail = segments[-1] if segments else 0
            done = max(
                done,
                controller.commit_log.append_entry(
                    tx_id, tail, True, prepare_done
                ),
            )
            done = max(
                done,
                controller.commit_log.flush_dirty(prepare_done, sync=True),
            )
            controller.refs.on_tx_begin(tx_id)  # known to refs even if idle
            controller.refs.on_tx_commit(tx_id)
            commit_done = max(commit_done, done + _COMMIT_MESSAGE_NS)
        self.two_phase_commits += 1
        if self.check.active:
            # The global commit point: every controller sync-flushed its
            # commit entry during the Commit phase above.
            self.check.note_persist(
                tx_id, "commit", -1, 0, commit_done, sync=True,
                port=self.controllers[0].port,
            )
        return commit_done

    # -- hierarchy delegation ----------------------------------------------------

    def fill_line(self, line_addr: int, now_ns: float) -> Tuple[bytes, float]:
        return self.controllers[self._owner(line_addr)].fill_line(
            line_addr, now_ns
        )

    def on_evict(
        self,
        line_addr: int,
        data: bytes,
        dirty: bool,
        persistent: bool,
        tx_id: int,
        now_ns: float,
    ) -> None:
        self.controllers[self._owner(line_addr)].on_evict(
            line_addr, data, dirty, persistent, tx_id, now_ns
        )

    # -- background / crash / recovery --------------------------------------------

    def tick(self, now_ns: float) -> None:
        for controller in self.controllers:
            controller.tick(now_ns)

    def quiesce(self, now_ns: float) -> float:
        for controller in self.controllers:
            now_ns = max(now_ns, controller.quiesce(now_ns))
        return now_ns

    def crash(self) -> None:
        self._participants.clear()
        for controller in self.controllers:
            controller.crash()

    def recover(
        self,
        *,
        threads: int = 1,
        bandwidth_gb_per_s: Optional[float] = None,
    ) -> RecoveryReport:
        """Consensus recovery: replay only globally-committed txns.

        The agreed set is the *union* of the controllers' durable commit
        entries: the Commit phase starts only after every prepare
        acknowledged, so one durable entry anywhere proves the global
        decision — and a torn rewrite of one controller's commit-log
        page (which loses every entry on that page, old ones included)
        cannot un-commit transactions another controller still records.

        Replay and cleanup are split by a barrier: every controller
        redoes the agreed set (``clear_region=False``) before *any*
        controller erases its region or commit log.  Clearing inline
        (the single-controller default) is not nested-crash-safe here:
        controller 0's clear destroys the only durable evidence of a
        transaction whose commit entry reached just that controller,
        so a power cut before controller 1 finishes replaying makes
        the rerun drop the transaction from the agreed set — with
        controller 0's shard already poked home, the words it owns
        survive and the rest never arrive (a torn global commit).
        With the barrier, a cut during redo leaves all evidence
        intact (the rerun re-agrees), and a cut during cleanup means
        every poke already landed (the words the rerun no longer
        replays are durable in the home region).
        """
        # Phase 1: each controller reads its commit log from NVM.
        local_sets = []
        for controller in self.controllers:
            controller.region.rebuild_from_nvm()
            pages = self._read_pages(controller)
            controller.commit_log.rebuild(pages)
            local_sets.append(
                {
                    tx.tx_id
                    for tx in controller.commit_log.committed_transactions()
                }
            )
        agreed = set.union(*local_sets) if local_sets else set()
        # Phase 2: every controller replays exactly the agreed set.
        merged = RecoveryReport(
            threads=threads,
            bandwidth_gb_per_s=(
                bandwidth_gb_per_s or self.config.nvm.bandwidth_gb_per_s
            ),
        )
        replayed = set()
        for controller in self.controllers:
            # require_entries=False: the STATE_LAST scan supplies segment
            # tails for agreed transactions whose local commit entries
            # were lost; ``only_tx_ids`` keeps it from *deciding* commits.
            report = controller.recovery.recover(
                threads=threads,
                bandwidth_gb_per_s=bandwidth_gb_per_s,
                require_entries=False,
                only_tx_ids=agreed,
                clear_region=False,
            )
            controller.mapping.clear()
            controller.eviction_buffer.clear()
            controller.refs.clear()
            merged.words_recovered += report.words_recovered
            merged.bytes_scanned += report.bytes_scanned
            merged.bytes_written += report.bytes_written
            merged.slices_walked += report.slices_walked
            merged.scan_time_ns = max(
                merged.scan_time_ns, report.scan_time_ns
            )
            merged.merge_time_ns = max(
                merged.merge_time_ns, report.merge_time_ns
            )
            merged.write_time_ns = max(
                merged.write_time_ns, report.write_time_ns
            )
            replayed |= agreed
        # Cleanup barrier: only after every controller's redo landed.
        for controller in self.controllers:
            controller.region.clear(0.0)
            controller.commit_log.clear()
        merged.committed_transactions = len(agreed)
        return merged

    def _read_pages(self, controller: HoopController):
        from repro.common.errors import CorruptionError
        from repro.core.oop_region import BlockState
        from repro.core.slices import KIND_ADDR, SLICE_BYTES, SliceCodec

        pages = []
        region = controller.region
        for block in range(region.num_blocks):
            if (
                region.state_of(block) == BlockState.UNUSED
                or region.stream_of(block) != "addr"
            ):
                continue
            for slice_index in region.iter_block_slices(block):
                raw = self.device.peek(
                    region.slice_addr(slice_index), SLICE_BYTES
                )
                if SliceCodec.kind_of(raw) != KIND_ADDR:
                    continue
                try:
                    pages.append(
                        (slice_index, controller.codec.decode_addr(raw))
                    )
                except CorruptionError:
                    continue
        return pages

# -- snapshot declarations ----------------------------------------------------
MultiControllerHoopScheme.__snapshot_state__ = "__all__"
