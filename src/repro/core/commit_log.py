"""The commit log: address memory slices recording committed transactions.

Section III-D: "The start address of these linked memory slices is stored
in an address memory slice.  Address memory slices allow GC to quickly
identify committed transactions in the OOP region."

Each entry names one **chain segment** — the region index of its last data
slice, from which prev-links walk the segment newest-first.  A transaction
normally has exactly one entry; extra uncommitted entries appear only when
a prev-delta overflowed the 24-bit field mid-transaction.  Appending the
final entry with the ``committed`` bit — a synchronous 128-byte slice
persist — is **HOOP's commit point**: a transaction whose committed entry
is durable is recovered; one without is garbage.  GC sets the ``retired``
bit once the transaction's updates have been migrated to the home region,
after which neither GC nor recovery replays it and the data blocks it
references become reclaimable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.core.oop_region import OOPRegion
from repro.core.slices import AddressSlice, AddressSliceEntry, SliceCodec
from repro.telemetry.hub import NULL_TELEMETRY


@dataclass
class _Page:
    """A volatile view of one on-NVM address slice."""

    __snapshot_state__ = "__all__"

    slice_index: int
    content: AddressSlice = field(default_factory=AddressSlice)

    @property
    def live_entries(self) -> int:
        return sum(1 for e in self.content.entries if not e.retired)


@dataclass(frozen=True)
class CommittedTx:
    """A replayable transaction: its id and segment tails, oldest first."""

    tx_id: int
    segment_tails: Tuple[int, ...]


class CommitLog:
    """Manages address memory slices and the retired-bit lifecycle."""

    __snapshot_state__ = "__all__"

    def __snapshot_fixup__(self, memo: dict) -> None:
        """Re-key the dirty set from old page ids to cloned page ids.

        ``_dirty`` holds ``id(page)`` of live :class:`_Page` objects; a
        snapshot clone gets new objects with new ids.  Every dirty page
        is reachable via ``_pages``, so the memo covers it.
        """
        self._dirty = {
            id(memo[page_id]) for page_id in self._dirty if page_id in memo
        }

    def __init__(self, region: OOPRegion, codec: SliceCodec) -> None:
        self.region = region
        self.codec = codec
        self._pages: List[_Page] = []
        self._tx_pages: Dict[int, List[_Page]] = {}
        self._dirty: set = set()
        self._next_sequence = 0
        self.commits = 0
        self.segments = 0
        self.retired = 0
        self.telemetry = NULL_TELEMETRY
        self.track = "ctrl0"

    # -- commit path --------------------------------------------------------

    def append_entry(
        self, tx_id: int, tail_slice: int, committed: bool, now_ns: float
    ) -> float:
        """Record a chain segment; returns completion time.

        Commit entries are *lazy*: the transaction's durability comes from
        its synchronously-persisted STATE_LAST data slice, and the address
        slice exists to let GC and recovery find transactions quickly
        (§III-D), so a page is only written out when it fills — batching
        up to ``entries_per_addr_slice`` commits into one 128-byte write.
        Mid-transaction *segment* entries (uncommitted continuations) are
        persisted eagerly because the final data slice alone cannot reach
        them.
        """
        page = self._current_page(now_ns)
        page.content.entries.append(
            AddressSliceEntry(
                tx_id=tx_id, tail_slice=tail_slice, committed=committed
            )
        )
        self._tx_pages.setdefault(tx_id, []).append(page)
        self.segments += 1
        if committed:
            self.commits += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                now_ns,
                "commit_log_append",
                self.track,
                {"tx": tx_id, "committed": committed},
            )
        if not committed:
            return self._flush_page(page, now_ns, sync=True)
        if len(page.content.entries) >= self.codec.entries_per_addr_slice:
            return self._flush_page(page, now_ns, sync=False)
        self._dirty.add(id(page))
        return now_ns

    def _flush_page(self, page: "_Page", now_ns: float, *, sync: bool) -> float:
        raw = self.codec.encode_addr(page.content)
        self._dirty.discard(id(page))
        return self.region.write_slice(page.slice_index, raw, now_ns, sync=sync)

    def flush_dirty(self, now_ns: float, *, sync: bool = True) -> float:
        """Persist every page with unwritten entries (pre-retire barrier)."""
        completion = now_ns
        for page in self._pages:
            if id(page) in self._dirty:
                completion = self._flush_page(page, now_ns, sync=sync)
        return completion

    def _current_page(self, now_ns: float) -> _Page:
        if self._pages and (
            len(self._pages[-1].content.entries)
            < self.codec.entries_per_addr_slice
        ):
            return self._pages[-1]
        slice_index = self.region.allocate_slice(now_ns, stream="addr")
        page = _Page(
            slice_index,
            AddressSlice(entries=[], sequence=self._next_sequence),
        )
        self._next_sequence += 1
        self._pages.append(page)
        return page

    # -- consumers (GC, recovery) ------------------------------------------------

    def committed_transactions(self) -> List[CommittedTx]:
        """Live (committed, unretired) transactions in commit order.

        A transaction is included iff its final entry carries the
        ``committed`` bit and is not retired; its segment tails are
        returned in append (oldest-first) order.
        """
        segments: Dict[int, List[int]] = {}
        committed_ids: List[int] = []
        for page in self._pages:
            for entry in page.content.entries:
                if entry.retired:
                    segments.pop(entry.tx_id, None)
                    continue
                segments.setdefault(entry.tx_id, []).append(entry.tail_slice)
                if entry.committed:
                    committed_ids.append(entry.tx_id)
        return [
            CommittedTx(tx_id, tuple(segments[tx_id]))
            for tx_id in committed_ids
            if tx_id in segments
        ]

    def known_tx_ids(self) -> set:
        """Every transaction id appearing in any page (recovery dedupe)."""
        out = set()
        for page in self._pages:
            for entry in page.content.entries:
                out.add(entry.tx_id)
        return out

    def open_segments(self) -> Dict[int, List[int]]:
        """Uncommitted, unretired segment tails per transaction.

        Recovery combines these with a transaction's scanned STATE_LAST
        slice when the final (committed) entry never reached a page.
        """
        out: Dict[int, List[int]] = {}
        for page in self._pages:
            for entry in page.content.entries:
                if not entry.committed and not entry.retired:
                    out.setdefault(entry.tx_id, []).append(entry.tail_slice)
        return out

    def retire(self, tx_ids: Iterable[int], now_ns: float) -> float:
        """Mark transactions migrated; rewrites each affected page durably.

        Must complete before the data blocks those transactions reference
        are reclaimed, otherwise a crash between reclaim and retire would
        leave recovery chasing chains into reused slices.
        """
        ids = set(tx_ids)
        dirty: List[_Page] = []
        for tx_id in ids:
            for page in self._tx_pages.get(tx_id, []):
                changed = False
                for i, entry in enumerate(page.content.entries):
                    if entry.tx_id == tx_id and not entry.retired:
                        page.content.entries[i] = AddressSliceEntry(
                            tx_id=entry.tx_id,
                            tail_slice=entry.tail_slice,
                            committed=entry.committed,
                            retired=True,
                        )
                        self.retired += 1
                        changed = True
                if changed and page not in dirty:
                    dirty.append(page)
        completion = now_ns
        for page in dirty:
            completion = self._flush_page(page, now_ns, sync=True)
        return completion

    # -- page reclamation -----------------------------------------------------------

    def fully_retired_pages(self) -> List[int]:
        """Slice indexes of pages with no live entries (reclaimable)."""
        return [
            p.slice_index
            for p in self._pages[:-1]  # never reclaim the open tail page
            if p.content.entries and p.live_entries == 0
        ]

    def drop_pages(self, slice_indexes: Iterable[int]) -> None:
        """Forget fully-retired pages (their blocks are being reclaimed)."""
        doomed = set(slice_indexes)
        dropped = [p for p in self._pages if p.slice_index in doomed]
        self._pages = [p for p in self._pages if p.slice_index not in doomed]
        for page in dropped:
            for entry in page.content.entries:
                pages = self._tx_pages.get(entry.tx_id)
                if pages is not None:
                    pages[:] = [p for p in pages if p is not page]
                    if not pages:
                        del self._tx_pages[entry.tx_id]

    @property
    def live_count(self) -> int:
        return sum(p.live_entries for p in self._pages)

    # -- crash lifecycle -----------------------------------------------------

    def crash(self) -> None:
        """Volatile page cache vanishes (NVM copies remain)."""
        self._pages = []
        self._tx_pages = {}
        self._dirty = set()

    def rebuild(self, pages: List[Tuple[int, AddressSlice]]) -> None:
        """Restore the volatile view from decoded on-NVM pages (recovery)."""
        ordered = sorted(pages, key=lambda p: p[1].sequence)
        self._pages = [_Page(idx, content) for idx, content in ordered]
        self._tx_pages = {}
        self._dirty = set()
        for page in self._pages:
            for entry in page.content.entries:
                self._tx_pages.setdefault(entry.tx_id, []).append(page)
        if self._pages:
            self._next_sequence = self._pages[-1].content.sequence + 1

    def clear(self) -> None:
        """Reset after recovery wiped the OOP region."""
        self._pages = []
        self._tx_pages = {}
        self._dirty = set()
        self._next_sequence = 0

# -- snapshot declarations ----------------------------------------------------
# CommittedTx is a frozen record built on demand; _Page and CommitLog
# declare theirs in the class body (CommitLog also needs a fixup).
CommittedTx.__snapshot_state__ = "__atom__"
