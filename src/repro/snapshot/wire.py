"""Compact wire form of simulator state for cross-process transfer.

The snapshot engine's clone path (:func:`repro.snapshot.clone_state`)
moves state *within* one process; the parallel serve engine
(:mod:`repro.serve.engine`) also needs to move whole shard machines
*between* processes — placing replication groups on workers at startup
and migrating them off a dead worker.  :func:`to_wire` /
:func:`from_wire` are that transport: pickle (protocol 5) plus zlib,
with two simulator-specific twists layered on the
``__snapshot_state__`` discipline:

* **Telemetry is never shipped.**  Every simulator component holds a
  hub reference (often the shared :data:`~repro.telemetry.hub.NULL_TELEMETRY`
  singleton); serializing one would drag the whole event buffer along
  and, worse, give the receiver a *private* hub cut off from the live
  one.  The pickler swaps any :class:`~repro.telemetry.hub.NullTelemetry`
  (hence any :class:`~repro.telemetry.hub.Telemetry`) for a persistent-id
  sentinel, and :func:`from_wire` splices in the hub the *receiving*
  process passes — the same aliasing contract as the clone engine's
  ``__shared__`` declaration.

* **The unregistered-class tripwire carries over.**  Any ``repro``
  class serialized without a ``__snapshot_state__`` /
  ``__snapshot_clone__`` declaration is recorded in the same
  :func:`repro.snapshot.unregistered_classes` set the clone engine
  feeds, so the existing test-suite tripwire also forces new
  wire-travelling state to declare itself.

Determinism: pickling is structural, so a machine rebuilt with
:func:`from_wire` steps bit-identically to the original — RNG streams
travel via ``getstate``, bound-method callbacks re-bind on load, and
bytearray-backed NVM pages round-trip verbatim.  (The round-trip tests
assert this on a mid-traffic replication group.)
"""

from __future__ import annotations

import enum
import io
import pickle
import zlib
from typing import Any, Optional

from repro.snapshot import _UNREGISTERED
from repro.telemetry.hub import NULL_TELEMETRY, NullTelemetry

__all__ = ["to_wire", "from_wire", "WireError"]

# Format header: magic + version.  Bump the version on any change to
# the sentinel scheme — a wire blob is a transport, not an archive, but
# a mixed-version worker pool must fail loudly, not deserialize junk.
_MAGIC = b"RPW1"

# The persistent id standing in for every telemetry hub reference.
_TELEMETRY_PID = "telemetry"

# zlib level 1: the blobs are dominated by sparse NVM page bytes that
# compress well even at the fastest setting, and wire transfers sit on
# the engine's per-epoch critical path.
_ZLIB_LEVEL = 1


class WireError(Exception):
    """A blob that is not a wire blob (bad magic or version)."""


def _is_registered(cls: type) -> bool:
    """Has this class declared itself to the snapshot engine?"""
    return (
        getattr(cls, "__snapshot_state__", None) is not None
        or getattr(cls, "__snapshot_clone__", None) is not None
    )


class _WirePickler(pickle.Pickler):
    """Pickler with the telemetry sentinel and the registration tripwire."""

    def persistent_id(self, obj: Any) -> Optional[str]:
        """Replace any telemetry hub (null or live) with the sentinel."""
        if isinstance(obj, NullTelemetry):
            return _TELEMETRY_PID
        return None

    def reducer_override(self, obj: Any):
        """Record undeclared ``repro`` classes, then defer to pickle.

        Enum members are exempt, mirroring the clone engine: pickle
        serializes them by name, so the receiver gets its process's own
        singleton — exactly the sharing an immutable atom wants.
        """
        cls = type(obj)
        if (
            getattr(cls, "__module__", "").startswith("repro")
            and not isinstance(obj, enum.Enum)
            and not _is_registered(cls)
        ):
            _UNREGISTERED.add(cls)
        return NotImplemented


class _WireUnpickler(pickle.Unpickler):
    """Unpickler resolving the telemetry sentinel to the receiver's hub."""

    def __init__(self, file, telemetry) -> None:
        super().__init__(file)
        self._telemetry = telemetry

    def persistent_load(self, pid: str) -> Any:
        """Splice the receiving process's hub in for the sentinel."""
        if pid == _TELEMETRY_PID:
            return self._telemetry
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def to_wire(obj: Any) -> bytes:
    """Serialize a simulator object graph to a compact transferable blob.

    Telemetry hub references are replaced by a sentinel (the receiver
    supplies its own hub to :func:`from_wire`); everything else travels
    by value, aliasing preserved, exactly as pickle memoizes it.
    """
    buffer = io.BytesIO()
    _WirePickler(buffer, protocol=5).dump(obj)
    return _MAGIC + zlib.compress(buffer.getvalue(), _ZLIB_LEVEL)


def from_wire(blob: bytes, *, telemetry=None) -> Any:
    """Rebuild a simulator object graph from a :func:`to_wire` blob.

    ``telemetry`` is the hub every rebuilt component will hold (the
    receiving process's live hub); it defaults to the shared
    :data:`~repro.telemetry.hub.NULL_TELEMETRY` singleton, i.e. the
    rebuilt machine is observationally silent until told otherwise.
    """
    if blob[: len(_MAGIC)] != _MAGIC:
        raise WireError(
            f"not a wire blob (expected magic {_MAGIC!r}, got "
            f"{bytes(blob[: len(_MAGIC)])!r})"
        )
    hub = telemetry if telemetry is not None else NULL_TELEMETRY
    payload = zlib.decompress(blob[len(_MAGIC) :])
    return _WireUnpickler(io.BytesIO(payload), hub).load()
