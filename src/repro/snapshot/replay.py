"""Checkpoint chains and prefix-replay caches built on snapshots.

Two consumers turn :mod:`repro.snapshot` captures into incremental
replay:

* the **crash-point sweep** (:mod:`repro.crashtest`) and the oracle's
  crash-convergence phase (:mod:`repro.check.oracle`) lay periodic
  :class:`Checkpoint` objects during a single probe run and start each
  boundary replay from :meth:`CheckpointChain.nearest` — the latest
  checkpoint at or below the boundary's write count — instead of
  re-executing the whole workload prefix;
* the fuzzer's delta-debugging shrinker (:mod:`repro.check.fuzz`)
  replays hundreds of near-identical transaction lists; a
  :class:`TraceReplayCache` memoizes a snapshot per replayed prefix so
  each ddmin candidate only executes the transactions after its longest
  already-seen prefix.

Checkpoints are keyed by the device's cumulative *timed-write* count,
which is the same clock crash boundaries are expressed in: a boundary
``b`` means the ``b``-th successful write is the last one, so a replay
from a checkpoint taken after ``w <= b`` writes arms a residual budget
of ``b - w`` (zero residual = the very next write dies, the
boundary-exactly-at-a-checkpoint case).
"""

from __future__ import annotations

from bisect import bisect_right
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.snapshot import Snapshot, clone_state


class Checkpoint:
    """One mid-workload snapshot plus its replay bookkeeping.

    ``txn_index`` is the workload transaction the checkpoint *precedes*;
    ``writes`` the device's timed-write count at capture; ``oracle`` the
    committed word->value model at that point (copied, so later workload
    progress cannot mutate it).
    """

    __slots__ = ("txn_index", "writes", "snapshot", "oracle")

    def __init__(
        self,
        txn_index: int,
        writes: int,
        snapshot: Snapshot,
        oracle: Dict[int, bytes],
    ) -> None:
        self.txn_index = txn_index
        self.writes = writes
        self.snapshot = snapshot
        self.oracle = oracle


class CheckpointChain:
    """Checkpoints in capture order, searchable by write count."""

    __slots__ = ("_checkpoints", "_writes")

    def __init__(self) -> None:
        self._checkpoints: List[Checkpoint] = []
        self._writes: List[int] = []

    def add(self, checkpoint: Checkpoint) -> None:
        """Append a checkpoint (write counts must be nondecreasing)."""
        if self._writes and checkpoint.writes < self._writes[-1]:
            raise ValueError(
                "checkpoints must be added in write order: "
                f"{checkpoint.writes} < {self._writes[-1]}"
            )
        self._checkpoints.append(checkpoint)
        self._writes.append(checkpoint.writes)

    def nearest(self, boundary_writes: int) -> Optional[Checkpoint]:
        """Latest checkpoint with ``writes <= boundary_writes``.

        Returns ``None`` when even the first checkpoint is past the
        boundary (possible only if system construction itself issued
        timed writes); callers fall back to a cold run.
        """
        index = bisect_right(self._writes, boundary_writes) - 1
        if index < 0:
            return None
        return self._checkpoints[index]

    def __len__(self) -> int:
        return len(self._checkpoints)


class TraceReplayCache:
    """Snapshot-per-prefix cache for repeated transaction-list replays.

    Built for ddmin: every shrink candidate is some sublist of the
    original transactions, and candidates tried consecutively share long
    prefixes.  ``replay(txns)`` restores the snapshot of the longest
    cached prefix of ``txns``, applies only the remaining transactions
    (capturing each new prefix along the way), and returns the resulting
    state object.

    ``build()`` creates a fresh state (any snapshot-clonable object —
    the fuzzer uses a dict holding the system and its slot addresses);
    ``apply(state, txn)`` executes one transaction against it.  Keys are
    tuples of the transaction objects themselves, which must be hashable
    (the frozen :class:`~repro.check.trace.TraceTxn` records are).

    The cache is LRU-bounded at ``limit`` snapshots; the empty prefix is
    pinned so a fresh system never has to be rebuilt.
    """

    def __init__(
        self,
        build: Callable[[], Any],
        apply: Callable[[Any, Any], None],
        *,
        limit: int = 256,
    ) -> None:
        if limit < 1:
            raise ValueError("cache needs room for at least one snapshot")
        self._build = build
        self._apply = apply
        self._limit = limit
        self._snapshots: "OrderedDict[Tuple, Snapshot]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.replayed_txns = 0

    def _put(self, key: Tuple, snapshot: Snapshot) -> None:
        self._snapshots[key] = snapshot
        self._snapshots.move_to_end(key)
        while len(self._snapshots) > self._limit:
            for candidate in self._snapshots:
                if candidate != ():  # keep the base system pinned
                    del self._snapshots[candidate]
                    break
            else:
                break

    def replay(self, txns, *, record: bool = True) -> Any:
        """State after executing ``txns``, reusing the longest prefix.

        ``record=False`` still restores from the best cached prefix but
        does not snapshot the new prefixes it executes — the right mode
        for one-off scoring runs (e.g. fresh fuzz iterations) whose
        prefixes no later replay will share; capturing a snapshot per
        transaction would cost more than it saves there.
        """
        txns = tuple(txns)
        state = None
        start = 0
        for length in range(len(txns), -1, -1):
            snapshot = self._snapshots.get(txns[:length])
            if snapshot is not None:
                self._snapshots.move_to_end(txns[:length])
                state = snapshot.restore()
                start = length
                self.hits += 1
                break
        if state is None:
            self.misses += 1
            state = self._build()
            self._put((), Snapshot(clone_state(state)))
        for index in range(start, len(txns)):
            self._apply(state, txns[index])
            self.replayed_txns += 1
            if record:
                self._put(txns[: index + 1], Snapshot(clone_state(state)))
        return state
