"""Simulator snapshots: capture and restore full system state.

The crash-point sweep and the differential oracle replay long, mostly
identical workload prefixes once per crash boundary.  A snapshot freezes
the *entire* simulator state — sparse NVM pages, cache hierarchy, scheme
and controller structures, transaction system, fault injector, RNG
streams — so a boundary replay can start from the nearest checkpoint and
execute only the residual suffix.  The hard contract (enforced by the
round-trip tests) is that restore-then-run is **bit-identical** to a
cold rerun: same content fingerprint, same stats, same sanitizer
verdicts.

Design: a typed deep-clone engine, much faster than :func:`copy.deepcopy`
because every class declares its snapshot behaviour up front:

``__snapshot_state__ = "__shared__"``
    The instance is immutable (frozen config dataclass, codec); share it.

``__snapshot_state__ = "__atom__"``
    Like ``__shared__`` but for high-volume frozen records (log entries,
    address-slice entries, checker events): the class joins the atom set
    on first encounter, so later instances are shared straight from the
    container loops with no per-object engine call or memo entry.  Only
    for deeply immutable values whose identity is never used as a key.

``__snapshot_state__ = "__all__"``
    Deep-clone every attribute (dict and/or slots) through the engine.

``__snapshot_state__ = "__atoms__"``
    Every attribute is an immutable scalar (stats records, triggers);
    copy the attribute dict in one C-level call.

``__snapshot_state__ = ("attr", ...)``
    Deep-clone exactly the named attributes; share the rest by
    reference.

``__snapshot_clone__(self, memo, clone)``
    Full custom control (the NVM device uses it for copy-on-write page
    sharing).  Must insert its result into ``memo`` before recursing.

``__snapshot_fixup__(self, memo)``
    Post-pass hook on the *clone*, called after the whole graph is
    copied, with the ``id(old) -> new`` memo — for state keyed by object
    identity (the sanitizer's per-port ids, the commit log's dirty-page
    id set).

A single memo dict spans the whole clone, so aliasing invariants
(`device._wear_writes is device.wear._writes`, bound-method handlers,
shared LineFlags between LLC buckets and the flag index) survive by
construction.  Bound methods are re-bound to the cloned ``__self__``;
``random.Random`` streams are forked via ``getstate``/``setstate``.

Classes the engine has never been told about are still cloned (deep,
attribute by attribute) but recorded in :func:`unregistered_classes`;
the test suite asserts that set stays empty for every registry scheme,
which is how new simulator state is forced to declare itself.
"""

from __future__ import annotations

import enum
import os
import random
import sys
import types
from collections import OrderedDict, defaultdict, deque
from typing import Any, Dict, List

__all__ = [
    "Snapshot",
    "capture",
    "restore",
    "clone_state",
    "snapshots_enabled",
    "checkpoint_cadence",
    "unregistered_classes",
    "reset_unregistered",
    "to_wire",
    "from_wire",
    "WireError",
]

# Types shared without memoization: immutable, identity-irrelevant.
# Mutable set: classes declaring ``__snapshot_state__ = "__atom__"`` join
# on first encounter (hot-path loops alias this set, and see additions
# because it is mutated in place, never rebound).
_ATOMS = {
    int,
    float,
    bool,
    str,
    bytes,
    complex,
    type(None),
    type,
    frozenset,
    types.FunctionType,
    types.BuiltinFunctionType,
}

_MISSING = object()

# Clone plans, derived lazily from __snapshot_state__ declarations.
_SHARE = 0
_ALL = 1
_ATTR_ATOMS = 2
_PARTIAL = 3
_FALLBACK = 4
_CUSTOM = 5
_NAMEDTUPLE = 6

# repro classes cloned without a declaration (should stay empty).
_UNREGISTERED: set = set()


def unregistered_classes() -> frozenset:
    """Classes deep-cloned without a ``__snapshot_state__`` declaration."""
    return frozenset(_UNREGISTERED)


def reset_unregistered() -> None:
    """Clear the unregistered-class record (test isolation)."""
    _UNREGISTERED.clear()


def snapshots_enabled() -> bool:
    """False when ``REPRO_SNAPSHOT_DISABLE=1`` forces cold reruns."""
    return os.environ.get("REPRO_SNAPSHOT_DISABLE", "") not in ("1", "true")


def checkpoint_cadence(default: int) -> int:
    """Checkpoint interval in transactions (``REPRO_SNAPSHOT_CADENCE``)."""
    raw = os.environ.get("REPRO_SNAPSHOT_CADENCE", "")
    if raw:
        try:
            value = int(raw)
            if value > 0:
                return value
        except ValueError:
            pass
    return default


class _Plan:
    """Cached per-class clone strategy."""

    __slots__ = ("mode", "deep", "slots", "has_fixup")

    def __init__(self, mode: int, deep, slots, has_fixup: bool) -> None:
        self.mode = mode
        self.deep = deep
        self.slots = slots
        self.has_fixup = has_fixup


_PLANS: Dict[type, _Plan] = {}


def _collect_slots(cls: type):
    names: List[str] = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        for name in slots:
            if name not in ("__dict__", "__weakref__") and name not in names:
                names.append(name)
    return tuple(names)


def _build_plan(cls: type) -> _Plan:
    spec = getattr(cls, "__snapshot_state__", _MISSING)
    has_fixup = hasattr(cls, "__snapshot_fixup__")
    slots = _collect_slots(cls)
    if getattr(cls, "__snapshot_clone__", None) is not None:
        mode, deep = _CUSTOM, None
    elif spec == "__atom__":
        # Joins the atom set: future instances never reach the engine.
        _ATOMS.add(cls)
        mode, deep = _SHARE, None
    elif issubclass(cls, enum.Enum):
        mode, deep = _SHARE, None
    elif issubclass(cls, tuple):
        mode, deep = _NAMEDTUPLE, None
    elif spec is _MISSING:
        mode = _FALLBACK
        deep = None
        module = getattr(cls, "__module__", "")
        if module.startswith("repro"):
            _UNREGISTERED.add(cls)
    elif spec == "__shared__":
        mode, deep = _SHARE, None
    elif spec == "__all__":
        mode, deep = _ALL, None
    elif spec == "__atoms__":
        mode, deep = _ATTR_ATOMS, None
    else:
        mode, deep = _PARTIAL, frozenset(spec)
    plan = _Plan(mode, deep, slots, has_fixup)
    _PLANS[cls] = plan
    return plan


def _clone(obj: Any, memo: dict, fixups: list) -> Any:
    cls = obj.__class__
    if cls in _ATOMS:
        return obj
    key = id(obj)
    existing = memo.get(key, _MISSING)
    if existing is not _MISSING:
        return existing
    handler = _HANDLERS.get(cls)
    if handler is not None:
        return handler(obj, memo, fixups)
    return _clone_object(obj, memo, fixups, cls, key)


def _clone_object(obj: Any, memo: dict, fixups: list, cls: type, key: int):
    plan = _PLANS.get(cls)
    if plan is None:
        plan = _build_plan(cls)
    mode = plan.mode
    if mode == _SHARE:
        memo[key] = obj
        return obj
    if mode == _CUSTOM:
        out = obj.__snapshot_clone__(
            memo, lambda v, m=memo, f=fixups: _clone(v, m, f)
        )
        if plan.has_fixup:
            fixups.append(out)
        return out
    if mode == _NAMEDTUPLE:
        # NamedTuple (plain tuples have a dedicated handler): clone the
        # items; when every item survives unchanged, share the original.
        items = [_clone(v, memo, fixups) for v in obj]
        if all(a is b for a, b in zip(items, obj)):
            memo[key] = obj
            return obj
        make = getattr(cls, "_make", None)
        out = make(items) if make is not None else cls(*items)
        memo[key] = out
        return out
    out = cls.__new__(cls)
    memo[key] = out
    d = getattr(obj, "__dict__", None)
    if mode == _ATTR_ATOMS:
        if d is not None:
            out.__dict__.update(d)
        for name in plan.slots:
            value = getattr(obj, name, _MISSING)
            if value is not _MISSING:
                setattr(out, name, value)
    elif mode == _PARTIAL:
        deep = plan.deep
        if d is not None:
            nd = out.__dict__
            for k, v in d.items():
                if k in deep and v.__class__ not in _ATOMS:
                    nd[k] = _clone(v, memo, fixups)
                else:
                    nd[k] = v
        for name in plan.slots:
            value = getattr(obj, name, _MISSING)
            if value is _MISSING:
                continue
            if name in deep and value.__class__ not in _ATOMS:
                value = _clone(value, memo, fixups)
            setattr(out, name, value)
    else:  # _ALL and _FALLBACK clone everything
        if d is not None:
            nd = out.__dict__
            for k, v in d.items():
                nd[k] = v if v.__class__ in _ATOMS else _clone(v, memo, fixups)
        for name in plan.slots:
            value = getattr(obj, name, _MISSING)
            if value is _MISSING:
                continue
            if value.__class__ not in _ATOMS:
                value = _clone(value, memo, fixups)
            setattr(out, name, value)
    if plan.has_fixup:
        fixups.append(out)
    return out


# -- container handlers -------------------------------------------------------


def _clone_dict(obj, memo, fixups):
    out = {}
    memo[id(obj)] = out
    if not obj:
        return out
    atoms = _ATOMS
    for k, v in obj.items():
        if k.__class__ not in atoms:
            k = _clone(k, memo, fixups)
        out[k] = v if v.__class__ in atoms else _clone(v, memo, fixups)
    return out


def _clone_list(obj, memo, fixups):
    out: list = []
    memo[id(obj)] = out
    atoms = _ATOMS
    out.extend(
        v if v.__class__ in atoms else _clone(v, memo, fixups) for v in obj
    )
    return out


def _clone_set(obj, memo, fixups):
    out: set = set()
    memo[id(obj)] = out
    atoms = _ATOMS
    out.update(
        v if v.__class__ in atoms else _clone(v, memo, fixups) for v in obj
    )
    return out


def _clone_tuple(obj, memo, fixups):
    # Single pass: most tuples are all-atom records — share them without
    # building an item list (no memo entry either: sharing is idempotent).
    atoms = _ATOMS
    for index, v in enumerate(obj):
        if v.__class__ not in atoms:
            break
    else:
        return obj
    items = list(obj[:index])
    for v in obj[index:]:
        items.append(v if v.__class__ in atoms else _clone(v, memo, fixups))
    if all(a is b for a, b in zip(items, obj)):
        memo[id(obj)] = obj
        return obj
    out = tuple(items)
    memo[id(obj)] = out
    return out


def _clone_bytearray(obj, memo, fixups):
    out = bytearray(obj)
    memo[id(obj)] = out
    return out


def _clone_ordered_dict(obj, memo, fixups):
    out: OrderedDict = OrderedDict()
    memo[id(obj)] = out
    if not obj:
        return out
    atoms = _ATOMS
    for k, v in obj.items():
        if k.__class__ not in atoms:
            k = _clone(k, memo, fixups)
        out[k] = v if v.__class__ in atoms else _clone(v, memo, fixups)
    return out


def _clone_defaultdict(obj, memo, fixups):
    out = defaultdict(obj.default_factory)
    memo[id(obj)] = out
    atoms = _ATOMS
    for k, v in obj.items():
        if k.__class__ not in atoms:
            k = _clone(k, memo, fixups)
        out[k] = v if v.__class__ in atoms else _clone(v, memo, fixups)
    return out


def _clone_deque(obj, memo, fixups):
    atoms = _ATOMS
    out = deque(
        (v if v.__class__ in atoms else _clone(v, memo, fixups) for v in obj),
        obj.maxlen,
    )
    memo[id(obj)] = out
    return out


def _clone_random(obj, memo, fixups):
    out = random.Random()
    out.setstate(obj.getstate())
    memo[id(obj)] = out
    return out


def _clone_method(obj, memo, fixups):
    # Bound method: re-bind the function to the cloned receiver so
    # callbacks like hierarchy._fill / oop_buffer._on_slice_written keep
    # pointing inside the clone, not back into the live system.
    out = types.MethodType(obj.__func__, _clone(obj.__self__, memo, fixups))
    memo[id(obj)] = out
    return out


_HANDLERS: Dict[type, Any] = {
    dict: _clone_dict,
    list: _clone_list,
    set: _clone_set,
    tuple: _clone_tuple,
    bytearray: _clone_bytearray,
    OrderedDict: _clone_ordered_dict,
    defaultdict: _clone_defaultdict,
    deque: _clone_deque,
    random.Random: _clone_random,
    types.MethodType: _clone_method,
}


def clone_state(obj: Any) -> Any:
    """Deep-clone an arbitrary simulator object graph.

    One memo spans the whole clone (aliasing preserved); ``__snapshot_fixup__``
    hooks run after the graph is complete, with the ``id(old) -> new`` memo.
    """
    memo: dict = {}
    fixups: list = []
    limit = sys.getrecursionlimit()
    bumped = limit < 20_000
    if bumped:
        # Deep linked structures (skip-list forward chains) recurse one
        # engine frame per node.
        sys.setrecursionlimit(20_000)
    try:
        out = _clone(obj, memo, fixups)
        for clone in fixups:
            clone.__snapshot_fixup__(memo)
    finally:
        if bumped:
            sys.setrecursionlimit(limit)
    return out


class Snapshot:
    """A frozen copy of a :class:`~repro.txn.system.MemorySystem`.

    The snapshot owns a private clone of the system; :meth:`restore`
    clones it again, so one snapshot can seed any number of independent
    replays.  NVM pages are shared copy-on-write between the live
    system, the snapshot, and every restore — writers clone a page on
    first touch (see ``NVMDevice.__snapshot_clone__``).
    """

    __slots__ = ("_system", "writes", "txn_index")

    def __init__(self, system: Any, *, writes: int = 0, txn_index: int = 0):
        self._system = system
        self.writes = writes
        self.txn_index = txn_index

    def restore(self) -> Any:
        """Materialize a fresh, runnable system from this snapshot."""
        return clone_state(self._system)


def capture(system: Any, *, txn_index: int = 0) -> Snapshot:
    """Snapshot a memory system (between transactions).

    ``txn_index`` tags which workload transaction the snapshot precedes;
    ``writes`` records the device write count at capture, which is what
    the incremental sweep compares against crash boundaries.
    """
    writes = 0
    device = getattr(system, "device", None)
    if device is not None:
        stats = getattr(device, "stats", None)
        if stats is not None:
            writes = stats.writes
    return Snapshot(
        clone_state(system), writes=writes, txn_index=txn_index
    )


def restore(snapshot: Snapshot) -> Any:
    """Module-level convenience for ``snapshot.restore()``."""
    return snapshot.restore()


# Bottom import: wire.py reuses this module's _UNREGISTERED tripwire.
from repro.snapshot.wire import WireError, from_wire, to_wire  # noqa: E402
