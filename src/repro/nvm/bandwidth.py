"""Shared NVM channel bandwidth and contention model.

Throughput in the paper's evaluation is frequently *bandwidth*-bound:
Opt-Redo loses not because its critical path is longest but because its
doubled, two-cache-line log entries saturate the channel (§IV-B).  The
model captures that with three mechanisms:

* a **write backlog**: queued (asynchronous) writes accumulate service
  time that drains at channel bandwidth as simulated time advances;
  synchronous persists and drains wait behind it — so a scheme that
  queues more bytes pays longer commits, which is the throughput
  feedback loop;
* **read priority**: reads bypass the write queue (as real memory
  controllers do) but pay a contention term that grows with channel
  utilization;
* a **utilization estimate** via an exponentially-decayed busy integral.

Why not a single busy-until reservation?  The multi-threaded driver
executes whole transactions per thread in min-clock order, so requests
arrive with locally out-of-order timestamps; an absolute reservation
horizon would turn that simulation artifact into enormous phantom queue
delays.  Backlog-plus-utilization is insensitive to arrival-order jitter
while preserving the aggregate bandwidth constraint.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.units import bytes_per_ns_from_gbps

# Utilization decay constant: traffic older than ~5 windows barely counts.
_TAU_NS = 20_000.0
_MAX_RHO = 0.97


@dataclass
class ChannelStats:
    """Aggregate channel statistics."""

    reservations: int = 0
    bytes_transferred: int = 0
    busy_ns: float = 0.0
    queue_ns: float = 0.0


class ChannelModel:
    """A shared memory channel: write backlog + utilization contention."""

    def __init__(self, bandwidth_gb_per_s: float) -> None:
        self._bytes_per_ns = bytes_per_ns_from_gbps(bandwidth_gb_per_s)
        self._bandwidth_gb_per_s = bandwidth_gb_per_s
        self._vtime_ns = 0.0  # furthest simulated time observed
        self._backlog_ns = 0.0  # undrained queued-write service time
        self._busy_integral = 0.0  # decayed busy time (utilization)
        self.stats = ChannelStats()

    @property
    def bandwidth_gb_per_s(self) -> float:
        return self._bandwidth_gb_per_s

    def transfer_time_ns(self, num_bytes: int) -> float:
        """Pure service time of ``num_bytes`` at peak bandwidth."""
        return num_bytes / self._bytes_per_ns

    # -- internals ----------------------------------------------------------------

    def _advance(self, now_ns: float) -> None:
        if now_ns <= self._vtime_ns:
            return
        dt = now_ns - self._vtime_ns
        self._backlog_ns = max(0.0, self._backlog_ns - dt)
        self._busy_integral *= math.exp(-dt / _TAU_NS)
        self._vtime_ns = now_ns

    def _record(self, service_ns: float, wait_ns: float, num_bytes: int) -> None:
        self.stats.reservations += 1
        self.stats.bytes_transferred += num_bytes
        self.stats.busy_ns += service_ns
        self.stats.queue_ns += wait_ns
        self._busy_integral += service_ns

    def utilization(self) -> float:
        """Recent channel utilization estimate in [0, 1]."""
        return min(_MAX_RHO, self._busy_integral / _TAU_NS)

    # -- access classes ------------------------------------------------------------

    def read(self, now_ns: float, num_bytes: int) -> float:
        """Priority read; returns channel completion time."""
        if num_bytes <= 0:
            return now_ns
        # _advance / utilization / _record inlined: this runs once per
        # simulated NVM read and the helper-call overhead is measurable.
        if now_ns > self._vtime_ns:
            dt = now_ns - self._vtime_ns
            self._backlog_ns = max(0.0, self._backlog_ns - dt)
            self._busy_integral *= math.exp(-dt / _TAU_NS)
            self._vtime_ns = now_ns
        service = num_bytes / self._bytes_per_ns
        rho = min(_MAX_RHO, self._busy_integral / _TAU_NS)
        wait = service * rho / (1.0 - rho)
        stats = self.stats
        stats.reservations += 1
        stats.bytes_transferred += num_bytes
        stats.busy_ns += service
        stats.queue_ns += wait
        self._busy_integral += service
        return now_ns + wait + service

    def write_queued(self, now_ns: float, num_bytes: int) -> float:
        """Posted write: joins the backlog; returns its drain time."""
        if num_bytes <= 0:
            return now_ns
        if now_ns > self._vtime_ns:
            dt = now_ns - self._vtime_ns
            self._backlog_ns = max(0.0, self._backlog_ns - dt)
            self._busy_integral *= math.exp(-dt / _TAU_NS)
            self._vtime_ns = now_ns
        service = num_bytes / self._bytes_per_ns
        self._backlog_ns += service
        stats = self.stats
        stats.reservations += 1
        stats.bytes_transferred += num_bytes
        stats.busy_ns += service
        self._busy_integral += service
        return max(now_ns, self._vtime_ns) + self._backlog_ns

    def write_queued_many(self, now_ns: float, sizes) -> None:
        """Batch of posted writes at one instant (drain times unobserved).

        Equivalent to calling :meth:`write_queued` once per size at the
        same ``now_ns`` — the backlog additions commute and ``_advance``
        is a no-op after the first call — minus the per-call completion
        arithmetic nobody reads.
        """
        self._advance(now_ns)
        for num_bytes in sizes:
            if num_bytes <= 0:
                continue
            service = self.transfer_time_ns(num_bytes)
            self._backlog_ns += service
            self._record(service, 0.0, num_bytes)

    def write_sync(self, now_ns: float, num_bytes: int) -> float:
        """Persist that waits behind the queue; returns completion time."""
        if num_bytes <= 0:
            return now_ns
        if now_ns > self._vtime_ns:
            dt = now_ns - self._vtime_ns
            self._backlog_ns = max(0.0, self._backlog_ns - dt)
            self._busy_integral *= math.exp(-dt / _TAU_NS)
            self._vtime_ns = now_ns
        service = num_bytes / self._bytes_per_ns
        wait = self._backlog_ns
        self._backlog_ns += service
        stats = self.stats
        stats.reservations += 1
        stats.bytes_transferred += num_bytes
        stats.busy_ns += service
        stats.queue_ns += wait
        self._busy_integral += service
        return now_ns + wait + service

    def drain(self, now_ns: float) -> float:
        """Time at which everything queued so far is durable (sfence)."""
        self._advance(now_ns)
        return now_ns + self._backlog_ns

    @property
    def backlog_ns(self) -> float:
        return self._backlog_ns

    def reset(self) -> None:
        """Clear statistics (measurement boundaries keep queue state)."""
        self.stats = ChannelStats()


# -- snapshot declarations ----------------------------------------------------
ChannelStats.__snapshot_state__ = "__atoms__"
ChannelModel.__snapshot_state__ = "__all__"
