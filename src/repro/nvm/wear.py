"""Per-block NVM wear tracking.

Section III-D claims HOOP "can achieve uniform aging of all cache lines
within an OOP block" because blocks and slices are allocated round-robin.
The tracker counts writes per wear block so tests can assert that claim
(max/min write-count spread stays small across OOP blocks) and so reports
can show the write-amplification pressure each scheme puts on the device.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict


class WearTracker:
    """Counts bytes written per fixed-size wear block."""

    def __init__(self, block_bytes: int = 2 * 1024 * 1024) -> None:
        if block_bytes <= 0:
            raise ValueError("wear block size must be positive")
        self.block_bytes = block_bytes
        self._writes: Dict[int, int] = defaultdict(int)

    def record_write(self, addr: int, num_bytes: int) -> None:
        """Attribute ``num_bytes`` written starting at ``addr``."""
        if num_bytes <= 0:
            return
        first = addr // self.block_bytes
        last = (addr + num_bytes - 1) // self.block_bytes
        if first == last:
            self._writes[first] += num_bytes
            return
        cursor = addr
        remaining = num_bytes
        for block in range(first, last + 1):
            block_end = (block + 1) * self.block_bytes
            chunk = min(remaining, block_end - cursor)
            self._writes[block] += chunk
            cursor += chunk
            remaining -= chunk

    def writes_for_block(self, block: int) -> int:
        return self._writes.get(block, 0)

    @property
    def touched_blocks(self) -> int:
        return len(self._writes)

    @property
    def total_bytes(self) -> int:
        return sum(self._writes.values())

    def spread(self) -> float:
        """max/mean write ratio over touched blocks (1.0 = perfectly even)."""
        if not self._writes:
            return 1.0
        counts = list(self._writes.values())
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 1.0
        return max(counts) / mean

    def hottest(self, n: int = 5):
        """The ``n`` most-written blocks as ``(block, bytes)`` pairs."""
        ranked = sorted(self._writes.items(), key=lambda kv: -kv[1])
        return ranked[:n]

    def reset(self) -> None:
        self._writes.clear()


# -- snapshot declarations ----------------------------------------------------
WearTracker.__snapshot_state__ = "__all__"
