"""The NVM device substrate: functional byte store + timing/energy/wear.

:class:`repro.nvm.device.NVMDevice` is the single source of truth for
persistent bytes.  Schemes never bypass it — crash tests rely on the device
content being exactly what survived.  Timing and bandwidth live in
:mod:`repro.nvm.bandwidth`; energy accounting in :mod:`repro.nvm.energy`;
per-block wear counters (for HOOP's uniform-aging claim) in
:mod:`repro.nvm.wear`.
"""

from repro.nvm.bandwidth import ChannelModel
from repro.nvm.device import NVMDevice
from repro.nvm.energy import EnergyMeter
from repro.nvm.wear import WearTracker

__all__ = ["NVMDevice", "ChannelModel", "EnergyMeter", "WearTracker"]
