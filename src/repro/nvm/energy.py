"""NVM access-energy accounting (paper Table II, Section IV-E).

The paper models energy per bit for row-buffer and array accesses
(0.93/1.02 pJ/bit row-buffer read/write, 2.47/16.82 pJ/bit array
read/write, from [28] and [40]).  Every device access reports whether the
row buffer was hit; the meter integrates picojoules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import EnergyConfig


@dataclass
class EnergyMeter:
    """Accumulates NVM read/write energy in picojoules."""

    config: EnergyConfig = field(default_factory=EnergyConfig)
    read_pj: float = 0.0
    write_pj: float = 0.0

    def record_read(self, num_bytes: int, row_buffer_hit: bool) -> float:
        """Account for a read of ``num_bytes``; returns pJ charged."""
        bits = num_bytes * 8
        if row_buffer_hit:
            pj = bits * self.config.row_buffer_read_pj_per_bit
        else:
            # A row-buffer miss activates the array and then streams the
            # data through the row buffer.
            pj = bits * (
                self.config.array_read_pj_per_bit
                + self.config.row_buffer_read_pj_per_bit
            )
        self.read_pj += pj
        return pj

    def record_write(self, num_bytes: int, row_buffer_hit: bool) -> float:
        """Account for a write of ``num_bytes``; returns pJ charged."""
        bits = num_bytes * 8
        if row_buffer_hit:
            # Writes always eventually reach the array on NVM; a row-buffer
            # hit only saves the activation read.
            pj = bits * (
                self.config.row_buffer_write_pj_per_bit
                + self.config.array_write_pj_per_bit
            )
        else:
            pj = bits * (
                self.config.row_buffer_write_pj_per_bit
                + self.config.array_write_pj_per_bit
                + self.config.array_read_pj_per_bit
            )
        self.write_pj += pj
        return pj

    @property
    def total_pj(self) -> float:
        return self.read_pj + self.write_pj

    @property
    def total_nj(self) -> float:
        return self.total_pj / 1000.0

    def reset(self) -> None:
        self.read_pj = 0.0
        self.write_pj = 0.0

    def snapshot(self) -> dict:
        """Plain-dict view for reports."""
        return {
            "read_pj": self.read_pj,
            "write_pj": self.write_pj,
            "total_pj": self.total_pj,
        }


# -- snapshot declarations ----------------------------------------------------
EnergyMeter.__snapshot_state__ = "__all__"
