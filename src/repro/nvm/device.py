"""Functional + timed NVM device.

The device stores real bytes in sparse 4 KB pages (so a 512 GB device costs
only what is touched), and charges every access with:

* device latency (50 ns read / 150 ns write by default, Table II),
* channel occupancy through :class:`repro.nvm.bandwidth.ChannelModel`,
* energy through :class:`repro.nvm.energy.EnergyMeter` with a simple
  one-entry row-buffer locality model,
* wear through :class:`repro.nvm.wear.WearTracker`.

All persistence schemes read and write NVM *only* through this class, which
is what lets crash-recovery tests trust the device content as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, NamedTuple, Optional, Tuple

from repro.common.config import NVMConfig
from repro.common.errors import AddressError
from repro.nvm.bandwidth import ChannelModel
from repro.nvm.energy import EnergyMeter
from repro.nvm.wear import WearTracker

_PAGE = 4096


class AccessResult(NamedTuple):
    """Timing outcome of one device access."""

    start_ns: float
    completion_ns: float
    row_buffer_hit: bool

    @property
    def latency_ns(self) -> float:
        return self.completion_ns - self.start_ns


@dataclass
class DeviceStats:
    """Aggregate functional counters."""

    __snapshot_state__ = "__atoms__"

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0


class NVMDevice:
    """Byte-addressable non-volatile memory with timing and energy."""

    def __init__(
        self,
        config: Optional[NVMConfig] = None,
        *,
        wear_block_bytes: int = 2 * 1024 * 1024,
    ) -> None:
        self.config = config or NVMConfig()
        # Hot-path snapshots of config scalars (read/write run per
        # simulated memory access).
        self._capacity = self.config.capacity
        self._row_bytes = self.config.row_buffer_bytes
        self._read_latency_ns = self.config.read_latency_ns
        self._write_latency_ns = self.config.write_latency_ns
        self._pages: Dict[int, bytearray] = {}
        # Pages shared copy-on-write with one or more snapshots: a write
        # to a member must clone the page first (repro.snapshot).  Empty
        # (one cheap set miss per write) until a snapshot is captured.
        self._cow_shared: set = set()
        self.channel = ChannelModel(self.config.bandwidth_gb_per_s)
        self.energy = EnergyMeter(self.config.energy)
        self.wear = WearTracker(wear_block_bytes)
        # Inlined energy/wear accounting for the timed plane: the
        # pJ/bit coefficient sums match EnergyMeter.record_* term
        # order so totals agree bit-for-bit.
        e = self.config.energy
        self._rd_hit_pj = e.row_buffer_read_pj_per_bit
        self._rd_miss_pj = e.array_read_pj_per_bit + e.row_buffer_read_pj_per_bit
        self._wr_hit_pj = e.row_buffer_write_pj_per_bit + e.array_write_pj_per_bit
        self._wr_miss_pj = (
            e.row_buffer_write_pj_per_bit
            + e.array_write_pj_per_bit
            + e.array_read_pj_per_bit
        )
        self._wear_block = self.wear.block_bytes
        self._wear_writes = self.wear._writes
        self.stats = DeviceStats()
        self._open_row: Optional[int] = None

    # -- functional byte plane ---------------------------------------------

    def _check(self, addr: int, size: int) -> None:
        if addr < 0 or size <= 0 or addr + size > self._capacity:
            raise AddressError(
                f"access [{addr:#x}, +{size}) outside device of "
                f"{self.config.capacity} bytes"
            )

    def peek(self, addr: int, size: int) -> bytes:
        """Read bytes with no timing, energy, or stats (for tests/tools)."""
        self._check(addr, size)
        page_base = addr & ~(_PAGE - 1)
        if (addr + size - 1) & ~(_PAGE - 1) == page_base:
            # Single-page access (every cache-line/word access qualifies).
            page = self._pages.get(page_base)
            if page is None:
                return bytes(size)
            offset = addr - page_base
            return bytes(page[offset : offset + size])
        out = bytearray(size)
        cursor = addr
        filled = 0
        while filled < size:
            page_base = cursor & ~(_PAGE - 1)
            offset = cursor - page_base
            chunk = min(size - filled, _PAGE - offset)
            page = self._pages.get(page_base)
            if page is not None:
                out[filled : filled + chunk] = page[offset : offset + chunk]
            cursor += chunk
            filled += chunk
        return bytes(out)

    def poke(self, addr: int, data: bytes) -> None:
        """Write bytes with no timing, energy, or stats (for tests/tools)."""
        size = len(data)
        self._check(addr, max(1, size))
        page_base = addr & ~(_PAGE - 1)
        if size and (addr + size - 1) & ~(_PAGE - 1) == page_base:
            page = self._pages.get(page_base)
            if page is None:
                page = bytearray(_PAGE)
                self._pages[page_base] = page
            elif page_base in self._cow_shared:
                page = bytearray(page)
                self._pages[page_base] = page
                self._cow_shared.discard(page_base)
            offset = addr - page_base
            page[offset : offset + size] = data
            return
        cursor = addr
        consumed = 0
        size = len(data)
        while consumed < size:
            page_base = cursor & ~(_PAGE - 1)
            offset = cursor - page_base
            chunk = min(size - consumed, _PAGE - offset)
            page = self._pages.get(page_base)
            if page is None:
                page = bytearray(_PAGE)
                self._pages[page_base] = page
            elif page_base in self._cow_shared:
                page = bytearray(page)
                self._pages[page_base] = page
                self._cow_shared.discard(page_base)
            page[offset : offset + chunk] = data[consumed : consumed + chunk]
            cursor += chunk
            consumed += chunk

    # -- timed plane ---------------------------------------------------------

    def _row_hit(self, addr: int) -> bool:
        row = addr // self._row_bytes
        hit = row == self._open_row
        self._open_row = row
        return hit

    def read(self, addr: int, size: int, now_ns: float = 0.0):
        """Timed priority read; returns ``(data, AccessResult)``."""
        # peek()'s single-page fast path inlined (timed reads run per
        # LLC fill); multi-page or invalid accesses take the full call.
        page_base = addr & ~(_PAGE - 1)
        if (
            addr >= 0
            and 0 < size
            and addr + size <= self._capacity
            and (addr + size - 1) & ~(_PAGE - 1) == page_base
        ):
            page = self._pages.get(page_base)
            if page is None:
                data = bytes(size)
            else:
                offset = addr - page_base
                data = bytes(page[offset : offset + size])
        else:
            data = self.peek(addr, size)
        row = addr // self._row_bytes
        hit = row == self._open_row
        self._open_row = row
        stats = self.stats
        stats.reads += 1
        stats.bytes_read += size
        self.energy.read_pj += (size * 8) * (
            self._rd_hit_pj if hit else self._rd_miss_pj
        )
        finish = self.channel.read(now_ns, size) + self._read_latency_ns
        return data, AccessResult(now_ns, finish, hit)

    def write(
        self,
        addr: int,
        data: bytes,
        now_ns: float = 0.0,
        *,
        queued: bool = True,
    ) -> AccessResult:
        """Timed write; ``queued`` rides the write queue, else the caller
        waits behind it (a persist).  Returns an :class:`AccessResult`."""
        if not data:
            return AccessResult(now_ns, now_ns, True)
        size = len(data)
        # poke()'s single-page fast path inlined (timed writes run per
        # persist/eviction); multi-page or invalid accesses take the
        # full call.
        page_base = addr & ~(_PAGE - 1)
        if (
            addr >= 0
            and addr + size <= self._capacity
            and (addr + size - 1) & ~(_PAGE - 1) == page_base
        ):
            page = self._pages.get(page_base)
            if page is None:
                page = bytearray(_PAGE)
                self._pages[page_base] = page
            elif page_base in self._cow_shared:
                page = bytearray(page)
                self._pages[page_base] = page
                self._cow_shared.discard(page_base)
            offset = addr - page_base
            page[offset : offset + size] = data
        else:
            self.poke(addr, data)
        row = addr // self._row_bytes
        hit = row == self._open_row
        self._open_row = row
        stats = self.stats
        stats.writes += 1
        stats.bytes_written += size
        self.energy.write_pj += (size * 8) * (
            self._wr_hit_pj if hit else self._wr_miss_pj
        )
        block = addr // self._wear_block
        if (addr + size - 1) // self._wear_block == block:
            self._wear_writes[block] += size
        else:
            self.wear.record_write(addr, size)
        if queued:
            finish = self.channel.write_queued(now_ns, size)
        else:
            finish = self.channel.write_sync(now_ns, size)
        return AccessResult(now_ns, finish + self._write_latency_ns, hit)

    def write_batch(
        self, writes: Iterable[Tuple[int, bytes]], now_ns: float = 0.0
    ) -> None:
        """Queue many writes issued at the same instant.

        State evolution (content, stats, energy, wear, row-buffer
        sequence, channel backlog) is identical to calling
        ``write(..., queued=True)`` once per element at ``now_ns``; the
        per-write channel timing math and :class:`AccessResult`
        construction are batched away for callers — like GC migration —
        that never look at individual completions.
        """
        sizes = []
        for addr, data in writes:
            if not data:
                continue
            self.poke(addr, data)
            hit = self._row_hit(addr)
            size = len(data)
            self.stats.writes += 1
            self.stats.bytes_written += size
            self.energy.record_write(size, hit)
            self.wear.record_write(addr, size)
            sizes.append(size)
        if sizes:
            self.channel.write_queued_many(now_ns, sizes)

    # -- snapshots ---------------------------------------------------------------

    def __snapshot_clone__(self, memo: dict, clone) -> "NVMDevice":
        """Copy-on-write clone hook for :mod:`repro.snapshot`.

        Sparse pages are *shared* between source and clone; both sides
        mark every current page COW-shared, and the write paths clone a
        shared page before its first mutation.  Everything else (stats,
        channel, energy, wear, fault state in the subclass) is cloned
        through the engine, which preserves aliases like
        ``_wear_writes is wear._writes`` via the shared memo.
        """
        cls = self.__class__
        out = cls.__new__(cls)
        memo[id(self)] = out
        self._cow_shared.update(self._pages.keys())
        out_dict = out.__dict__
        for key, value in self.__dict__.items():
            if key == "_pages":
                out_dict[key] = dict(value)
            elif key == "_cow_shared":
                out_dict[key] = set(self._pages.keys())
            else:
                out_dict[key] = clone(value)
        return out

    # -- bookkeeping -----------------------------------------------------------

    def restore_power(self) -> None:
        """Reboot hook after a (simulated) power failure.

        The plain device has no power-failure state; the fault-injecting
        subclass disarms its power-loss budgets here.  Called by
        :meth:`repro.txn.system.MemorySystem.crash`.
        """

    def content_fingerprint(self) -> str:
        """SHA-256 over all non-zero content (order- and layout-stable).

        All-zero pages hash identically to untouched ones (missing pages
        read as zeros), so two devices with equal *readable* content
        always fingerprint equally — the byte-identity oracle the
        crash-sweep and parallel-recovery tests compare.
        """
        import hashlib

        digest = hashlib.sha256()
        zero = bytes(_PAGE)
        for page_base in sorted(self._pages):
            page = self._pages[page_base]
            if page == zero:
                continue
            digest.update(page_base.to_bytes(8, "little"))
            digest.update(page)
        return digest.hexdigest()

    @property
    def touched_bytes(self) -> int:
        """Bytes of backing storage actually allocated (sparse footprint)."""
        return len(self._pages) * _PAGE

    def reset_stats(self) -> None:
        """Clear counters/energy/wear but keep content (new measurement)."""
        self.stats = DeviceStats()
        self.energy.reset()
        self.wear.reset()
        self.channel.reset()
        self._open_row = None

    def clear(self) -> None:
        """Erase content and counters (fresh device)."""
        self._pages.clear()
        self._cow_shared.clear()
        self.reset_stats()

# AccessResult is a frozen timing record (floats/bool) — atom-shared.
AccessResult.__snapshot_state__ = "__atom__"
