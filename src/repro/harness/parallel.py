"""Fan the experiment matrix out over worker processes.

Cells are embarrassingly parallel: each builds its own
:class:`~repro.txn.system.MemorySystem` from scratch and every source of
randomness is seeded, so a cell computes the same
:class:`~repro.workloads.driver.RunResult` no matter which process runs
it.  :func:`run_matrix` exploits that with a ``ProcessPoolExecutor``
(fork start method — the workers inherit the imported simulator), then
seeds the in-process memo of :mod:`repro.harness.experiments` with the
returned results.  Figure runners executed afterwards hit the memo cell
for cell, so their output is identical to a sequential run's.

Workers and the parent both consult the on-disk cache
(:mod:`repro.harness.diskcache`), so a warm ``.bench_cache/`` makes the
fan-out skip simulation entirely regardless of ``jobs``.

Fault tolerance: one sick cell must not take down a thousand-cell
matrix.  Every cell gets ``1 + retries`` attempts with seeded
exponential backoff between rounds; a cell that exceeds ``timeout_s``
has its worker process killed (the pool is rebuilt — a hung fork holds
the GIL of nobody but itself, yet ``as_completed`` would wait forever);
cells that keep failing are *quarantined* — recorded on the report with
their final reason, while every healthy cell still completes.  Cells
that merely shared a pool with a hung neighbour are re-queued without
burning one of their attempts.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness import diskcache, experiments
from repro.workloads.driver import RunResult


@dataclass(frozen=True)
class CellSpec:
    """One (scheme, workload) cell of the experiment matrix."""

    scheme: str
    workload: str
    scale: str = "default"
    seed: int = 7
    item_bytes: int = 64
    extra_kwargs: Tuple[Tuple[str, int], ...] = ()

    @property
    def name(self) -> str:
        return f"{self.scheme}/{self.workload}"

    def key(self) -> tuple:
        return experiments.cell_key(
            self.scheme,
            self.workload,
            self.scale,
            self.seed,
            self.item_bytes,
            None,
            dict(self.extra_kwargs),
        )


@dataclass
class CellTiming:
    """How one cell was satisfied."""

    name: str
    seconds: float
    source: str  # "computed", "memo", or "disk"


@dataclass
class QuarantinedCell:
    """A cell that exhausted its retry budget; the matrix carries on."""

    name: str
    attempts: int
    reason: str


@dataclass
class MatrixReport:
    """Outcome of one :func:`run_matrix` call."""

    scale: str
    jobs: int
    total_s: float = 0.0
    results: Dict[str, RunResult] = field(default_factory=dict)
    timings: List[CellTiming] = field(default_factory=list)
    quarantined: List[QuarantinedCell] = field(default_factory=list)
    retries_total: int = 0

    @property
    def computed(self) -> int:
        return sum(1 for t in self.timings if t.source == "computed")

    @property
    def cache_hits(self) -> int:
        return sum(1 for t in self.timings if t.source in ("memo", "disk"))


def matrix_specs(scale: str, seed: int = 7) -> List[CellSpec]:
    """The full figure matrix: (native + persistence schemes) x workloads."""
    return [
        CellSpec(scheme, workload, scale, seed)
        for workload in experiments.MATRIX_WORKLOADS
        for scheme in ("native",) + experiments.PERSISTENCE_SCHEMES
    ]


def _run_spec(spec: CellSpec) -> dict:
    """Worker entry point: simulate one cell, return it as a plain dict."""
    result = experiments.run_cell(
        spec.scheme,
        spec.workload,
        spec.scale,
        seed=spec.seed,
        item_bytes=spec.item_bytes,
        extra_kwargs=dict(spec.extra_kwargs) or None,
    )
    return dataclasses.asdict(result)


def _backoff_s(attempt: int, base_s: float, rng: random.Random) -> float:
    """Seeded exponential backoff with jitter: attempt 1 ≈ base."""
    return base_s * (2 ** (attempt - 1)) * (0.5 + rng.random())


def run_matrix(
    specs: Sequence[CellSpec],
    jobs: Optional[int] = None,
    *,
    use_cache: bool = True,
    timeout_s: Optional[float] = None,
    retries: int = 2,
    backoff_base_s: float = 0.05,
    backoff_seed: int = 7,
    worker=_run_spec,
) -> MatrixReport:
    """Run ``specs``, fanning cache misses out over ``jobs`` processes.

    Results land in the in-process memo (via
    :func:`experiments.seed_cache`) and the returned report, keyed by
    ``scheme/workload``.  ``jobs=None`` uses ``os.cpu_count()``;
    ``jobs<=1`` degrades to a plain sequential loop in this process.

    Fault tolerance: every cell gets ``1 + retries`` attempts with
    seeded exponential backoff between rounds.  With ``timeout_s`` set,
    a worker still running past its deadline is killed and the pool
    rebuilt; its cell is charged one attempt, while cells that merely
    shared the doomed pool are re-queued for free.  A cell that burns
    all attempts lands in ``report.quarantined`` (with its final
    failure reason) instead of failing the whole matrix — the caller
    decides whether missing cells are fatal.  ``timeout_s`` is only
    enforceable on the multi-process path; the sequential path still
    retries and quarantines raised exceptions.  ``worker`` exists for
    tests (inject hangs/crashes); it must be a picklable module-level
    callable returning ``dataclasses.asdict`` of a ``RunResult``.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    scale = specs[0].scale if specs else "default"
    report = MatrixReport(scale=scale, jobs=jobs)
    started = time.perf_counter()
    rng = random.Random(backoff_seed)

    pending: List[CellSpec] = []
    for spec in specs:
        key = spec.key()
        probe_start = time.perf_counter()
        if use_cache and key in experiments._CELL_CACHE:
            report.results[spec.name] = experiments._CELL_CACHE[key]
            report.timings.append(
                CellTiming(spec.name, time.perf_counter() - probe_start, "memo")
            )
            continue
        if use_cache:
            cached = diskcache.load(key)
            if cached is not None:
                result = RunResult(**cached)
                experiments.seed_cache(key, result)
                report.results[spec.name] = result
                report.timings.append(
                    CellTiming(
                        spec.name, time.perf_counter() - probe_start, "disk"
                    )
                )
                continue
        pending.append(spec)

    def _record(spec: CellSpec, result: RunResult, elapsed: float) -> None:
        experiments.seed_cache(spec.key(), result)
        if use_cache:
            diskcache.store(spec.key(), result)
        report.results[spec.name] = result
        report.timings.append(CellTiming(spec.name, elapsed, "computed"))

    # queue holds (spec, attempts_used); a cell is quarantined once its
    # attempts reach 1 + retries.
    def _failed(
        spec: CellSpec, attempts: int, reason: str, queue: list
    ) -> float:
        """Charge one failed attempt; returns the backoff delay (0 if
        the cell was quarantined instead of re-queued)."""
        if attempts >= 1 + retries:
            report.quarantined.append(
                QuarantinedCell(spec.name, attempts, reason)
            )
            report.timings.append(CellTiming(spec.name, 0.0, "quarantined"))
            return 0.0
        report.retries_total += 1
        queue.append((spec, attempts))
        return _backoff_s(attempts, backoff_base_s, rng)

    if pending and jobs > 1:
        _run_parallel_rounds(
            pending, jobs, worker, timeout_s, _record, _failed
        )
    else:
        for spec in pending:
            attempts = 0
            while True:
                attempts += 1
                cell_start = time.perf_counter()
                try:
                    result = experiments.run_cell(
                        spec.scheme,
                        spec.workload,
                        spec.scale,
                        seed=spec.seed,
                        item_bytes=spec.item_bytes,
                        extra_kwargs=dict(spec.extra_kwargs) or None,
                        use_cache=use_cache,
                    )
                except Exception as exc:  # noqa: BLE001 — quarantine path
                    delay = _failed(
                        spec, attempts, f"cell raised: {exc!r}", []
                    )
                    if attempts >= 1 + retries:
                        break
                    time.sleep(delay)
                    continue
                report.results[spec.name] = result
                report.timings.append(
                    CellTiming(
                        spec.name,
                        time.perf_counter() - cell_start,
                        "computed",
                    )
                )
                break

    report.total_s = time.perf_counter() - started
    return report


def _run_parallel_rounds(
    pending: List[CellSpec],
    jobs: int,
    worker,
    timeout_s: Optional[float],
    record,
    failed,
) -> None:
    """Round-based pool execution with deadlines and retry re-queues.

    Each round submits every queued cell to a fresh fork pool and waits
    with a per-future deadline.  A deadline miss kills the straggler's
    worker processes (a hung cell would otherwise block ``shutdown``
    forever) and abandons the pool; completed cells keep their results,
    the hung cell is charged an attempt, and innocent still-running
    cells are re-queued without charge.
    """
    context = multiprocessing.get_context("fork")
    queue: List[Tuple[CellSpec, int]] = [(spec, 0) for spec in pending]
    while queue:
        round_specs, queue = queue, []
        max_delay = 0.0
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(round_specs)), mp_context=context
        )
        futures = {}
        for spec, attempts in round_specs:
            futures[pool.submit(worker, spec)] = (
                spec,
                attempts,
                time.perf_counter(),
            )
        not_done = set(futures)
        hung: List[concurrent.futures.Future] = []
        while not_done:
            wait_s = None
            if timeout_s is not None:
                now = time.perf_counter()
                wait_s = max(
                    0.0,
                    min(futures[f][2] + timeout_s for f in not_done) - now,
                )
            done, not_done = concurrent.futures.wait(
                not_done, timeout=wait_s
            )
            for future in done:
                spec, attempts, submit_time = futures[future]
                try:
                    result = RunResult(**future.result())
                except Exception as exc:  # noqa: BLE001 — quarantine path
                    max_delay = max(
                        max_delay,
                        failed(
                            spec,
                            attempts + 1,
                            f"worker raised: {exc!r}",
                            queue,
                        ),
                    )
                    continue
                record(spec, result, time.perf_counter() - submit_time)
            if timeout_s is not None and not_done:
                now = time.perf_counter()
                hung = [
                    f
                    for f in not_done
                    if now >= futures[f][2] + timeout_s
                ]
                if hung:
                    break
        if hung:
            # The pool is poisoned: kill its workers so shutdown cannot
            # block on the hung cell, then rebuild next round.
            for proc in list(getattr(pool, "_processes", {}).values()):
                proc.kill()
            pool.shutdown(wait=False, cancel_futures=True)
            for future in hung:
                spec, attempts, submit_time = futures[future]
                max_delay = max(
                    max_delay,
                    failed(
                        spec,
                        attempts + 1,
                        f"timed out after {timeout_s:.1f}s",
                        queue,
                    ),
                )
            for future in not_done - set(hung):
                spec, attempts, _ = futures[future]
                queue.append((spec, attempts))  # innocent: free re-run
        else:
            pool.shutdown(wait=True)
        if queue and max_delay > 0.0:
            time.sleep(max_delay)
