"""Fan the experiment matrix out over worker processes.

Cells are embarrassingly parallel: each builds its own
:class:`~repro.txn.system.MemorySystem` from scratch and every source of
randomness is seeded, so a cell computes the same
:class:`~repro.workloads.driver.RunResult` no matter which process runs
it.  :func:`run_matrix` exploits that with a ``ProcessPoolExecutor``
(fork start method — the workers inherit the imported simulator), then
seeds the in-process memo of :mod:`repro.harness.experiments` with the
returned results.  Figure runners executed afterwards hit the memo cell
for cell, so their output is identical to a sequential run's.

Workers and the parent both consult the on-disk cache
(:mod:`repro.harness.diskcache`), so a warm ``.bench_cache/`` makes the
fan-out skip simulation entirely regardless of ``jobs``.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness import diskcache, experiments
from repro.workloads.driver import RunResult


@dataclass(frozen=True)
class CellSpec:
    """One (scheme, workload) cell of the experiment matrix."""

    scheme: str
    workload: str
    scale: str = "default"
    seed: int = 7
    item_bytes: int = 64
    extra_kwargs: Tuple[Tuple[str, int], ...] = ()

    @property
    def name(self) -> str:
        return f"{self.scheme}/{self.workload}"

    def key(self) -> tuple:
        return experiments.cell_key(
            self.scheme,
            self.workload,
            self.scale,
            self.seed,
            self.item_bytes,
            None,
            dict(self.extra_kwargs),
        )


@dataclass
class CellTiming:
    """How one cell was satisfied."""

    name: str
    seconds: float
    source: str  # "computed", "memo", or "disk"


@dataclass
class MatrixReport:
    """Outcome of one :func:`run_matrix` call."""

    scale: str
    jobs: int
    total_s: float = 0.0
    results: Dict[str, RunResult] = field(default_factory=dict)
    timings: List[CellTiming] = field(default_factory=list)

    @property
    def computed(self) -> int:
        return sum(1 for t in self.timings if t.source == "computed")

    @property
    def cache_hits(self) -> int:
        return sum(1 for t in self.timings if t.source != "computed")


def matrix_specs(scale: str, seed: int = 7) -> List[CellSpec]:
    """The full figure matrix: (native + persistence schemes) x workloads."""
    return [
        CellSpec(scheme, workload, scale, seed)
        for workload in experiments.MATRIX_WORKLOADS
        for scheme in ("native",) + experiments.PERSISTENCE_SCHEMES
    ]


def _run_spec(spec: CellSpec) -> dict:
    """Worker entry point: simulate one cell, return it as a plain dict."""
    result = experiments.run_cell(
        spec.scheme,
        spec.workload,
        spec.scale,
        seed=spec.seed,
        item_bytes=spec.item_bytes,
        extra_kwargs=dict(spec.extra_kwargs) or None,
    )
    return dataclasses.asdict(result)


def run_matrix(
    specs: Sequence[CellSpec],
    jobs: Optional[int] = None,
    *,
    use_cache: bool = True,
) -> MatrixReport:
    """Run ``specs``, fanning cache misses out over ``jobs`` processes.

    Results land in the in-process memo (via
    :func:`experiments.seed_cache`) and the returned report, keyed by
    ``scheme/workload``.  ``jobs=None`` uses ``os.cpu_count()``;
    ``jobs<=1`` degrades to a plain sequential loop in this process.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    scale = specs[0].scale if specs else "default"
    report = MatrixReport(scale=scale, jobs=jobs)
    started = time.perf_counter()

    pending: List[CellSpec] = []
    for spec in specs:
        key = spec.key()
        probe_start = time.perf_counter()
        if use_cache and key in experiments._CELL_CACHE:
            report.results[spec.name] = experiments._CELL_CACHE[key]
            report.timings.append(
                CellTiming(spec.name, time.perf_counter() - probe_start, "memo")
            )
            continue
        if use_cache:
            cached = diskcache.load(key)
            if cached is not None:
                result = RunResult(**cached)
                experiments.seed_cache(key, result)
                report.results[spec.name] = result
                report.timings.append(
                    CellTiming(
                        spec.name, time.perf_counter() - probe_start, "disk"
                    )
                )
                continue
        pending.append(spec)

    if pending and jobs > 1:
        context = multiprocessing.get_context("fork")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)), mp_context=context
        ) as pool:
            futures = {}
            for spec in pending:
                futures[pool.submit(_run_spec, spec)] = (
                    spec,
                    time.perf_counter(),
                )
            for future in concurrent.futures.as_completed(futures):
                spec, submit_time = futures[future]
                result = RunResult(**future.result())
                key = spec.key()
                experiments.seed_cache(key, result)
                if use_cache:
                    diskcache.store(key, result)
                report.results[spec.name] = result
                report.timings.append(
                    CellTiming(
                        spec.name,
                        time.perf_counter() - submit_time,
                        "computed",
                    )
                )
    else:
        for spec in pending:
            cell_start = time.perf_counter()
            result = experiments.run_cell(
                spec.scheme,
                spec.workload,
                spec.scale,
                seed=spec.seed,
                item_bytes=spec.item_bytes,
                extra_kwargs=dict(spec.extra_kwargs) or None,
                use_cache=use_cache,
            )
            report.results[spec.name] = result
            report.timings.append(
                CellTiming(
                    spec.name, time.perf_counter() - cell_start, "computed"
                )
            )

    report.total_s = time.perf_counter() - started
    return report
