"""Command-line entry point: regenerate every figure and table.

Usage::

    python -m repro.harness [--scale smoke|default|paper] [--only FIG ...]
                            [--out DIR] [--jobs N] [--no-cache] [--profile]
                            [--telemetry DIR] [--faults] [--check]

Writes each figure's text rendering to ``<out>/<figure>.txt``, prints
them to stdout, and records harness timing in ``<out>/BENCH_harness.json``.
``--only fig7a fig8`` restricts the set.  ``--jobs N`` pre-computes the
workload matrix in N worker processes, then runs the figure generators
sequentially against the warmed cache — output is identical to a
sequential run.  ``--profile`` prints a cProfile top-20 per figure.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import os
import pathlib
import pstats
import sys
import time

from repro import bench
from repro.harness import diskcache, experiments, parallel

RUNNERS = {
    "table1": lambda scale: experiments.run_table1(),
    "fig7a": experiments.run_figure7a,
    "fig7b": experiments.run_figure7b,
    "fig8": experiments.run_figure8,
    "fig9": experiments.run_figure9,
    "table4": experiments.run_table4,
    "fig10": experiments.run_figure10,
    "fig11": experiments.run_figure11,
    "fig12": experiments.run_figure12,
    "fig13": experiments.run_figure13,
    "datasets": experiments.run_dataset_variants,
    "threads": experiments.run_thread_scaling,
    "regions": experiments.run_region_fraction_sweep,
    "profile": experiments.run_read_profile,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the HOOP paper's figures and tables.",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=sorted(experiments.SCALES),
        help="experiment size preset",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        choices=sorted(RUNNERS),
        help="subset of figures to run (default: all)",
    )
    parser.add_argument(
        "--out",
        default="results",
        help="directory for the rendered text tables",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=int(os.environ.get("REPRO_JOBS", "1")),
        help="worker processes to pre-compute the matrix (default 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not write the on-disk result cache",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print a cProfile top-20 (cumulative) per figure",
    )
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        help="run the telemetry matrix and write per-cell latency"
        " summaries (JSON) into DIR",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="also run the fault-tolerance report (faulty device)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="also run the correctness checkers (persist-ordering"
        " sanitizer + differential oracle) on a smoke trace",
    )
    args = parser.parse_args(argv)

    if args.no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    names = args.only or list(RUNNERS)
    started = time.perf_counter()
    diskcache.stats.reset()

    matrix_report = None
    if args.jobs > 1:
        # Pre-warm the cell memo in parallel; the runners below then hit
        # it cell for cell, producing byte-identical figures.
        specs = parallel.matrix_specs(args.scale)
        matrix_report = parallel.run_matrix(
            specs, jobs=args.jobs, use_cache=not args.no_cache
        )
        print(
            f"[matrix pre-warm took {matrix_report.total_s:.1f}s:"
            f" {matrix_report.computed} computed,"
            f" {matrix_report.cache_hits} cached, jobs={matrix_report.jobs}]\n"
        )

    figure_seconds = {}
    for name in names:
        start = time.perf_counter()
        runner = RUNNERS[name]
        profiler = None
        if args.profile:
            profiler = cProfile.Profile()
            profiler.enable()
        figure = runner(args.scale) if name != "table1" else runner(None)
        if profiler is not None:
            profiler.disable()
        text = figure.render()
        print(text)
        elapsed = time.perf_counter() - start
        figure_seconds[name] = round(elapsed, 4)
        print(f"[{name} took {elapsed:.1f}s]\n")
        if profiler is not None:
            buf = io.StringIO()
            stats = pstats.Stats(profiler, stream=buf)
            stats.sort_stats("cumulative").print_stats(20)
            print(f"--- cProfile {name} (top 20 cumulative) ---")
            print(buf.getvalue())
        (out_dir / f"{name}.txt").write_text(text + "\n")

    if args.faults:
        start = time.perf_counter()
        figure = experiments.run_fault_reports(args.scale)
        text = figure.render()
        print(text)
        elapsed = time.perf_counter() - start
        figure_seconds["faults"] = round(elapsed, 4)
        print(f"[faults took {elapsed:.1f}s]\n")
        (out_dir / "faults.txt").write_text(text + "\n")

    if args.telemetry:
        start = time.perf_counter()
        figure = experiments.run_telemetry_matrix(
            args.scale, out_dir=args.telemetry
        )
        text = figure.render()
        print(text)
        elapsed = time.perf_counter() - start
        figure_seconds["telemetry"] = round(elapsed, 4)
        print(f"[telemetry took {elapsed:.1f}s]\n")
        (out_dir / "telemetry.txt").write_text(text + "\n")

    check_failed = False
    if args.check:
        from repro.check.oracle import run_check_matrix

        start = time.perf_counter()
        check_result = run_check_matrix(crash_sample=6)
        text = check_result.render()
        print(text)
        elapsed = time.perf_counter() - start
        figure_seconds["check"] = round(elapsed, 4)
        print(f"[check took {elapsed:.1f}s]\n")
        (out_dir / "check.txt").write_text(text + "\n")
        check_failed = not check_result.ok

    payload = {
        "schema": bench.SCHEMA_VERSION,
        "scale": args.scale,
        "jobs": args.jobs,
        "figures": figure_seconds,
        "total_s": round(time.perf_counter() - started, 4),
        "code_fingerprint": diskcache.code_fingerprint(),
        "disk_cache": {
            "hits": diskcache.stats.hits,
            "misses": diskcache.stats.misses,
            "stores": diskcache.stats.stores,
        },
    }
    if matrix_report is not None:
        payload["matrix_prewarm_s"] = round(matrix_report.total_s, 4)
        payload["cells_computed"] = matrix_report.computed
        payload["cells_from_cache"] = matrix_report.cache_hits
    bench.write_report(payload, out_dir / "BENCH_harness.json")
    return 1 if check_failed else 0


if __name__ == "__main__":
    sys.exit(main())
