"""Command-line entry point: regenerate every figure and table.

Usage::

    python -m repro.harness [--scale smoke|default|paper] [--only FIG ...]
                            [--out DIR]

Writes each figure's text rendering to ``<out>/<figure>.txt`` and prints
them to stdout.  ``--only fig7a fig8`` restricts the set.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.harness import experiments

RUNNERS = {
    "table1": lambda scale: experiments.run_table1(),
    "fig7a": experiments.run_figure7a,
    "fig7b": experiments.run_figure7b,
    "fig8": experiments.run_figure8,
    "fig9": experiments.run_figure9,
    "table4": experiments.run_table4,
    "fig10": experiments.run_figure10,
    "fig11": experiments.run_figure11,
    "fig12": experiments.run_figure12,
    "fig13": experiments.run_figure13,
    "datasets": experiments.run_dataset_variants,
    "threads": experiments.run_thread_scaling,
    "regions": experiments.run_region_fraction_sweep,
    "profile": experiments.run_read_profile,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the HOOP paper's figures and tables.",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=sorted(experiments.SCALES),
        help="experiment size preset",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        choices=sorted(RUNNERS),
        help="subset of figures to run (default: all)",
    )
    parser.add_argument(
        "--out",
        default="results",
        help="directory for the rendered text tables",
    )
    args = parser.parse_args(argv)

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    names = args.only or list(RUNNERS)
    for name in names:
        start = time.time()
        runner = RUNNERS[name]
        figure = runner(args.scale) if name != "table1" else runner(None)
        text = figure.render()
        print(text)
        print(f"[{name} took {time.time() - start:.1f}s]\n")
        (out_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
