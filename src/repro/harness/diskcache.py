"""On-disk result cache for experiment cells.

Every simulated cell is deterministic in ``(code, scheme, workload,
scale, seed, item_bytes, config, extra_kwargs)``, so its
:class:`~repro.workloads.driver.RunResult` can be reused across
processes and across benchmark/pytest invocations.  Entries live under::

    .bench_cache/<code-fingerprint>/<key-digest>.json

The *code fingerprint* is a SHA-256 over every ``src/repro/**/*.py``
file (path + content), so any source edit — not just ones that change a
config — invalidates the whole cache directory at once.  Old fingerprint
directories are pruned lazily.  Invalidation is therefore conservative:
a stale hit is impossible as long as the simulation is deterministic,
which the seeded PRNGs guarantee.

Set ``REPRO_NO_CACHE=1`` to bypass the disk entirely (the in-process
memo in :mod:`repro.harness.experiments` still applies), and
``REPRO_BENCH_CACHE=<dir>`` to relocate the cache root (tests use a
temp dir).  All I/O failures degrade to cache misses — a read-only
checkout must never break a simulation — but abnormal ones (corrupt
entries, failed stores, failed prunes) are counted in
``CacheStats.degraded`` and surfaced in ``BENCH_harness.json``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from dataclasses import dataclass
from typing import Optional

_SRC_ROOT = pathlib.Path(__file__).resolve().parents[1]  # src/repro
_REPO_ROOT = _SRC_ROOT.parents[1]
_KEEP_FINGERPRINTS = 3  # old code versions pruned beyond this many


@dataclass
class CacheStats:
    """Disk-cache traffic for one process (reported in BENCH_harness.json)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    # I/O or decode failures the cache absorbed (corrupt entry, full or
    # read-only disk, permission error).  Each still degrades to a miss
    # or a skipped store — the simulation is unaffected — but a non-zero
    # count in BENCH_harness.json says the cache is not actually caching.
    degraded: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.degraded = 0


stats = CacheStats()

_fingerprint: Optional[str] = None


def enabled() -> bool:
    """Disk caching is on unless ``REPRO_NO_CACHE`` is set non-empty."""
    return not os.environ.get("REPRO_NO_CACHE")


def cache_root() -> pathlib.Path:
    override = os.environ.get("REPRO_BENCH_CACHE")
    if override:
        return pathlib.Path(override)
    return _REPO_ROOT / ".bench_cache"


def code_fingerprint() -> str:
    """SHA-256 over every tracked source file (memoized per process)."""
    global _fingerprint
    if _fingerprint is None:
        digest = hashlib.sha256()
        for path in sorted(_SRC_ROOT.rglob("*.py")):
            digest.update(str(path.relative_to(_SRC_ROOT)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint = digest.hexdigest()[:20]
    return _fingerprint


def key_digest(key: tuple) -> str:
    """Stable digest of a :func:`repro.harness.experiments.cell_key`.

    Cell keys are nested tuples of primitives, so ``repr`` is
    deterministic across processes (no ids, no unordered containers).
    """
    return hashlib.sha256(repr(key).encode()).hexdigest()[:32]


def _entry_path(key: tuple) -> pathlib.Path:
    return cache_root() / code_fingerprint() / (key_digest(key) + ".json")


def load(key: tuple) -> Optional[dict]:
    """Fetch a cached cell as a plain dict, or None on any miss/error."""
    if not enabled():
        return None
    try:
        with open(_entry_path(key)) as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        stats.misses += 1  # the ordinary cold-cache miss
        return None
    except (OSError, ValueError):
        # Unreadable or corrupt entry (torn concurrent write, bad disk):
        # a miss, but a counted abnormal one.
        stats.misses += 1
        stats.degraded += 1
        return None
    stats.hits += 1
    return payload.get("result")


def store(key: tuple, result) -> None:
    """Persist a finished cell (dataclass instance or plain dict)."""
    if not enabled():
        return
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        result = dataclasses.asdict(result)
    path = _entry_path(key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp.%d" % os.getpid())
        with open(tmp, "w") as fh:
            json.dump({"key": repr(key), "result": result}, fh)
        os.replace(tmp, path)  # atomic: concurrent workers can race here
        stats.stores += 1
        _prune()
    except OSError:
        # Read-only checkout or full disk: the result is simply not
        # cached; nothing to clean up beyond the counter (the tmp file,
        # if it was created, is inside the pruned cache dir).
        stats.degraded += 1


def _prune() -> None:
    """Drop cache directories for all but the newest code fingerprints."""
    root = cache_root()
    try:
        dirs = [p for p in root.iterdir() if p.is_dir()]
    except OSError:
        stats.degraded += 1
        return
    if len(dirs) <= _KEEP_FINGERPRINTS:
        return
    dirs.sort(key=lambda p: p.stat().st_mtime, reverse=True)
    for stale in dirs[_KEEP_FINGERPRINTS:]:
        try:
            for entry in stale.iterdir():
                entry.unlink()
            stale.rmdir()
        except OSError:
            # Another worker may be pruning (or writing) concurrently;
            # the directory survives until the next prune.
            stats.degraded += 1
