"""The evaluation harness: one entry point per paper figure/table.

Every ``run_*`` function returns a :class:`repro.stats.report.FigureData`
whose rows mirror the paper's plot series; the benchmarks print them and
write them under ``results/``.  ``Scale`` presets trade fidelity for wall
time — ``smoke`` for CI, ``default`` for local iteration, ``paper`` for
the recorded EXPERIMENTS.md numbers.
"""

from repro.harness.experiments import (
    SCALES,
    Scale,
    run_cell,
    run_figure7a,
    run_figure7b,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_figure13,
    run_dataset_variants,
    run_read_profile,
    run_region_fraction_sweep,
    run_thread_scaling,
    run_table1,
    run_table4,
)

__all__ = [
    "Scale",
    "SCALES",
    "run_cell",
    "run_figure7a",
    "run_figure7b",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "run_figure12",
    "run_figure13",
    "run_dataset_variants",
    "run_thread_scaling",
    "run_region_fraction_sweep",
    "run_table1",
    "run_table4",
    "run_read_profile",
]
