"""Experiment runners: one function per figure/table of the evaluation.

The mapping to the paper (also indexed in DESIGN.md §3):

=============  ====================================================
Table I        qualitative scheme traits
Fig. 7a        transaction throughput, normalized to Opt-Redo
Fig. 7b        critical-path latency, normalized to Native
Fig. 8         NVM write traffic per transaction
Fig. 9         NVM energy per transaction
Table IV       GC data-reduction ratio vs transactions per GC pass
Fig. 10        throughput vs GC trigger period
Fig. 11        recovery time vs threads and NVM bandwidth
Fig. 12        YCSB throughput vs NVM read/write latency
Fig. 13        YCSB throughput vs mapping-table size
§IV-C profile  loads per LLC miss, parallel-read fraction, miss ratio
=============  ====================================================

Runs are memoized per ``(scale, scheme, workload, seed, overrides)`` so
the four workload-matrix figures share one simulation per cell.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import json
from pathlib import Path

from repro.common.config import (
    FaultConfig,
    GCConfig,
    HoopConfig,
    NVMConfig,
    SystemConfig,
)
from repro.common.units import KB, MB, MS, US
from repro.harness import diskcache
from repro.schemes import ALL_SCHEME_NAMES, scheme_class
from repro.stats.report import FigureData, fault_tolerance_figure
from repro.telemetry import Telemetry
from repro.txn.system import MemorySystem
from repro.workloads.driver import RunResult, WorkloadDriver, make_workload

PERSISTENCE_SCHEMES = ("hoop", "opt-redo", "opt-undo", "osp", "lsm", "lad")
MATRIX_WORKLOADS = (
    "vector",
    "hashmap",
    "queue",
    "rbtree",
    "btree",
    "ycsb",
    "tpcc",
)


@dataclass(frozen=True)
class Scale:
    """How big an experiment run is."""

    name: str
    threads: int
    transactions: int
    warmup: int
    gc_period_ns: float
    use_paper_config: bool
    workload_kwargs: Tuple[Tuple[str, Tuple[Tuple[str, int], ...]], ...]

    def system_config(self) -> SystemConfig:
        if self.use_paper_config:
            base = SystemConfig.paper_default()
        else:
            base = SystemConfig.small()
        hoop = dataclasses.replace(
            base.hoop, gc=GCConfig(period_ns=self.gc_period_ns)
        )
        return base.replace(hoop=hoop)

    def kwargs_for(self, workload: str) -> Dict[str, int]:
        for name, pairs in self.workload_kwargs:
            if name == workload:
                return dict(pairs)
        return {}


def _scale(
    name: str,
    threads: int,
    transactions: int,
    warmup: int,
    gc_period_ns: float,
    use_paper_config: bool,
    overrides: Dict[str, Dict[str, int]],
) -> Scale:
    frozen = tuple(
        (workload, tuple(sorted(kwargs.items())))
        for workload, kwargs in sorted(overrides.items())
    )
    return Scale(
        name,
        threads,
        transactions,
        warmup,
        gc_period_ns,
        use_paper_config,
        frozen,
    )


_SMOKE_SIZES = {
    "vector": {"capacity": 2048},
    "hashmap": {"keyspace": 2048, "buckets": 512},
    "rbtree": {"keyspace": 4096},
    "btree": {"keyspace": 4096},
    "ycsb": {"records": 512},
    "tpcc": {"items": 512, "customers_per_district": 16},
}

_DEFAULT_SIZES = {
    "vector": {"capacity": 8192},
    "hashmap": {"keyspace": 8192, "buckets": 2048},
    "rbtree": {"keyspace": 16384},
    "btree": {"keyspace": 16384},
    "ycsb": {"records": 2048},
    "tpcc": {"items": 2048, "customers_per_district": 64},
}

SCALES: Dict[str, Scale] = {
    # CI-fast: a couple of seconds per cell.
    "smoke": _scale("smoke", 4, 200, 20, 0.2 * MS, False, _SMOKE_SIZES),
    # Local iteration: minutes for the whole matrix.
    "default": _scale("default", 4, 800, 80, 0.5 * MS, False, _DEFAULT_SIZES),
    # The recorded numbers: paper topology, 8 threads (paper §IV-A).
    "paper": _scale("paper", 8, 2000, 200, 2 * MS, True, {}),
}


def get_scale(scale: str) -> Scale:
    try:
        return SCALES[scale]
    except KeyError:
        raise KeyError(
            f"unknown scale {scale!r}; known: {', '.join(SCALES)}"
        ) from None


# -- one measured cell -------------------------------------------------------------

# In-process memo, LRU-bounded.  The full smoke matrix is 56 cells; the
# bound only matters for open-ended ablation sweeps that vary configs.
_CELL_CACHE: "OrderedDict[tuple, RunResult]" = OrderedDict()
_CELL_CACHE_MAX = 512


def _freeze(value):
    """Recursively convert ``value`` into a hashable, deterministic tuple."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return tuple(
            (f.name, _freeze(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def cell_key(
    scheme: str,
    workload: str,
    scale: str,
    seed: int,
    item_bytes: int,
    config: Optional[SystemConfig],
    extra_kwargs: Optional[Dict[str, int]],
) -> tuple:
    """Canonical cache key for one cell.

    An explicit ``config`` contributes its *field values* (not identity),
    so ablation sweeps that rebuild equal configs still share cells.
    """
    return (
        scheme,
        workload,
        scale,
        seed,
        item_bytes,
        _freeze(config) if config is not None else None,
        tuple(sorted((extra_kwargs or {}).items())),
    )


def run_cell(
    scheme: str,
    workload: str,
    scale: str = "default",
    *,
    seed: int = 7,
    item_bytes: int = 64,
    config: Optional[SystemConfig] = None,
    extra_kwargs: Optional[Dict[str, int]] = None,
    use_cache: bool = True,
) -> RunResult:
    """Run one (scheme, workload) cell and return its metrics."""
    preset = get_scale(scale)
    key = cell_key(
        scheme, workload, scale, seed, item_bytes, config, extra_kwargs
    )
    if use_cache and key in _CELL_CACHE:
        _CELL_CACHE.move_to_end(key)
        return _CELL_CACHE[key]
    if use_cache:
        cached = diskcache.load(key)
        if cached is not None:
            result = RunResult(**cached)
            seed_cache(key, result)
            return result
    system_config = config or preset.system_config()
    system = MemorySystem(system_config, scheme=scheme)
    kwargs = preset.kwargs_for(workload)
    kwargs.update(extra_kwargs or {})
    wl = make_workload(
        workload, system, item_bytes=item_bytes, seed=seed, **kwargs
    )
    driver = WorkloadDriver(system, threads=preset.threads, seed=seed)
    result = driver.run(
        wl, preset.transactions, warmup=preset.warmup
    )
    result.extras["scheme_stats_stores"] = system.scheme.stats.tx_stores
    if scheme == "hoop":
        hs = system.scheme.hoop_stats
        gcs = system.scheme.controller.gc.stats
        result.extras.update(
            {
                "parallel_reads": hs.parallel_reads,
                "mapping_hits": hs.mapping_hits_on_miss,
                "mapping_misses": hs.mapping_misses_on_miss,
                "gc_passes": gcs.passes,
                "gc_reduction": gcs.data_reduction_ratio,
                "fill_reads": hs.fill_home_reads + hs.fill_slice_reads,
                "llc_misses": system.hierarchy.stats.llc_misses,
            }
        )
    if use_cache:
        seed_cache(key, result)
        diskcache.store(key, result)
    return result


def seed_cache(key: tuple, result: RunResult) -> None:
    """Install a finished cell in the in-process memo (LRU-bounded).

    Used by :mod:`repro.harness.parallel` to pre-warm the memo with
    results computed in worker processes, so the figure runners that
    follow hit the cache exactly as in a sequential run.
    """
    _CELL_CACHE[key] = result
    while len(_CELL_CACHE) > _CELL_CACHE_MAX:
        _CELL_CACHE.popitem(last=False)


def clear_cache() -> None:
    _CELL_CACHE.clear()


# -- Table I --------------------------------------------------------------------


def run_table1() -> FigureData:
    """The qualitative comparison table, generated from scheme traits."""
    fig = FigureData(
        "Table I",
        "Crash-consistency technique comparison",
        [
            "Scheme",
            "Approach",
            "Read latency",
            "On critical path",
            "Flush & fence",
            "Write traffic",
        ],
    )
    for name in ("hoop",) + tuple(n for n in ALL_SCHEME_NAMES if n != "hoop"):
        traits = scheme_class(name).traits
        fig.add_row(
            name,
            traits.approach,
            traits.read_latency,
            "Yes" if traits.extra_writes_on_critical_path else "No",
            "Yes" if traits.requires_flush_fence else "No",
            traits.write_traffic,
        )
    fig.add_note(
        "Generated from each scheme's declared traits; matches the paper's"
        " rows for WrAP/ATOM/SSP/LSNVMM/LAD analogues."
    )
    return fig


# -- the four workload-matrix figures ----------------------------------------------


def _matrix(scale: str, seed: int) -> Dict[Tuple[str, str], RunResult]:
    cells = {}
    for workload in MATRIX_WORKLOADS:
        for scheme in ("native",) + PERSISTENCE_SCHEMES:
            cells[(scheme, workload)] = run_cell(
                scheme, workload, scale, seed=seed
            )
    return cells


def run_figure7a(scale: str = "default", seed: int = 7) -> FigureData:
    """Throughput normalized to Opt-Redo (higher is better)."""
    cells = _matrix(scale, seed)
    fig = FigureData(
        "Figure 7a",
        "Transaction throughput (normalized to Opt-Redo)",
        ["Workload"] + list(("ideal",) + PERSISTENCE_SCHEMES),
    )
    for workload in MATRIX_WORKLOADS:
        base = cells[("opt-redo", workload)].throughput_tx_per_ms
        row = [workload, cells[("native", workload)].throughput_tx_per_ms / base]
        for scheme in PERSISTENCE_SCHEMES:
            row.append(
                cells[(scheme, workload)].throughput_tx_per_ms / base
            )
        fig.add_row(*row)
    _add_mean_row(fig)
    fig.add_note(
        "Paper: HOOP +74.3%/+45.1%/+33.8%/+27.9%/+24.3% vs"
        " Redo/Undo/OSP/LSM/LAD; -20.6% vs Ideal."
    )
    return fig


def run_figure7b(scale: str = "default", seed: int = 7) -> FigureData:
    """Critical-path latency normalized to Native (lower is better)."""
    cells = _matrix(scale, seed)
    fig = FigureData(
        "Figure 7b",
        "Critical-path latency (normalized to Native)",
        ["Workload"] + list(PERSISTENCE_SCHEMES),
    )
    for workload in MATRIX_WORKLOADS:
        base = cells[("native", workload)].mean_latency_ns
        fig.add_row(
            workload,
            *(
                cells[(scheme, workload)].mean_latency_ns / base
                for scheme in PERSISTENCE_SCHEMES
            ),
        )
    _add_mean_row(fig)
    fig.add_note(
        "Paper: HOOP is 24.1% above Native on average and"
        " 45.1/52.8/44.3/60.5/21.6% below Redo/Undo/OSP/LSM/LAD."
    )
    return fig


def run_figure8(scale: str = "default", seed: int = 7) -> FigureData:
    """NVM write traffic per transaction (normalized to HOOP)."""
    cells = _matrix(scale, seed)
    fig = FigureData(
        "Figure 8",
        "NVM write traffic per transaction",
        ["Workload", "ideal B/tx"]
        + [f"{s} (xHOOP)" for s in PERSISTENCE_SCHEMES],
    )
    for workload in MATRIX_WORKLOADS:
        hoop = max(cells[("hoop", workload)].bytes_per_tx, 1e-9)
        fig.add_row(
            workload,
            cells[("native", workload)].bytes_per_tx,
            *(
                cells[(scheme, workload)].bytes_per_tx / hoop
                for scheme in PERSISTENCE_SCHEMES
            ),
        )
    _add_mean_row(fig, skip=2)
    fig.add_note(
        "Paper: Redo/Undo write 2.1x/1.9x HOOP; HOOP is below"
        " OSP/LSM/LAD by 21.2/12.5/11.6% on average."
    )
    fig.add_note(
        "Normalized to HOOP because Native's eviction-only traffic can"
        " approach zero when a working set fits the LLC."
    )
    return fig


def run_figure9(scale: str = "default", seed: int = 7) -> FigureData:
    """NVM energy per transaction (pJ, and ratio to HOOP)."""
    cells = _matrix(scale, seed)
    fig = FigureData(
        "Figure 9",
        "NVM energy per transaction",
        ["Workload", "ideal pJ/tx"]
        + [f"{s} (xHOOP)" for s in PERSISTENCE_SCHEMES],
    )
    for workload in MATRIX_WORKLOADS:
        def per_tx(scheme: str) -> float:
            cell = cells[(scheme, workload)]
            return cell.energy_pj / max(cell.transactions, 1)

        hoop = max(per_tx("hoop"), 1e-9)
        fig.add_row(
            workload,
            per_tx("native"),
            *(per_tx(scheme) / hoop for scheme in PERSISTENCE_SCHEMES),
        )
    _add_mean_row(fig, skip=2)
    fig.add_note(
        "Paper: HOOP consumes 37.6/29.6/10.8% less energy than OSP/LSM/LAD."
    )
    return fig


def _add_mean_row(fig: FigureData, skip: int = 1) -> None:
    """Append a geometric-mean row over the numeric columns."""
    if not fig.rows:
        return
    means = ["geomean"] + ["" for _ in range(skip - 1)]
    for col in range(skip, len(fig.columns)):
        values = [row[col] for row in fig.rows if isinstance(row[col], float)]
        if values and all(v > 0 for v in values):
            product = 1.0
            for v in values:
                product *= v
            means.append(product ** (1.0 / len(values)))
        else:
            means.append("")
    fig.rows.append(means)


# -- Table IV: GC data reduction ----------------------------------------------------


def run_table4(scale: str = "default", seed: int = 7) -> FigureData:
    """GC data-reduction ratio vs transactions between collections."""
    preset = get_scale(scale)
    tx_counts = {
        "smoke": (10, 100, 500),
        "default": (10, 100, 1000, 4000),
        "paper": (10, 100, 1000, 10000),
    }[preset.name]
    fig = FigureData(
        "Table IV",
        "Average data reduction in the GC of HOOP",
        ["Tx between GCs"] + list(MATRIX_WORKLOADS),
    )
    for count in tx_counts:
        row = [count]
        for workload in MATRIX_WORKLOADS:
            config = preset.system_config()
            # Disable periodic GC and give the mapping table headroom so
            # the collection window is exactly `count` transactions; the
            # forced pass at the end measures the coalescing opportunity
            # that accumulated across the whole window.
            from repro.common.units import MB as _MB

            hoop = dataclasses.replace(
                config.hoop,
                gc=GCConfig(period_ns=1e15),
                mapping_table_bytes=64 * _MB,
            )
            config = config.replace(hoop=hoop)
            system = MemorySystem(config, scheme="hoop")
            wl = make_workload(
                workload,
                system,
                seed=seed,
                **preset.kwargs_for(workload),
            )
            driver = WorkloadDriver(system, threads=preset.threads, seed=seed)
            gc = system.scheme.controller.gc
            # Drain the load phase so the window holds only measured txns.
            wl.setup(core=0)
            gc.run(system.now_ns, on_demand=True)
            scanned_before = gc.stats.words_scanned
            migrated_before = gc.stats.words_migrated
            driver.run(wl, count, setup=False, warmup=0, quiesce=False)
            gc.run(system.now_ns, on_demand=True)
            scanned = gc.stats.words_scanned - scanned_before
            migrated = gc.stats.words_migrated - migrated_before
            ratio = 1.0 - migrated / scanned if scanned else 0.0
            row.append(ratio)
        fig.add_row(*row)
    fig.add_note(
        "Paper: ~25% at 10 txns rising to ~82% at 10,000 txns; the ratio"
        " grows because more same-word overwrites coalesce per pass."
    )
    return fig


# -- Figure 10: GC period sweep ------------------------------------------------------


def run_figure10(scale: str = "default", seed: int = 7) -> FigureData:
    """Throughput of the synthetic benchmarks vs GC trigger period.

    The paper sweeps 2-14 ms on a cycle-accurate simulator; our simulated
    runs cover less wall-clock, so the sweep spans the same *regimes*
    (eager GC that wastes bandwidth, a sweet spot, and on-demand GC on
    the critical path) around the scale's base period.
    """
    preset = get_scale(scale)
    base = preset.gc_period_ns
    multipliers = (0.2, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)
    workloads = ("vector", "hashmap", "queue", "rbtree", "btree")
    # Run long enough (and with a tight enough region) that the reserved
    # space turns over several times: the long-period side must hit
    # on-demand GC, as the paper describes for periods past ~11 ms.
    transactions = preset.transactions * 4
    fig = FigureData(
        "Figure 10",
        "Throughput vs GC trigger period (HOOP)",
        ["GC period (us)"] + list(workloads) + ["on-demand GCs"],
    )
    for mult in multipliers:
        period = base * mult
        row = [period / US]
        on_demand_total = 0
        for workload in workloads:
            config = preset.system_config()
            # Small blocks keep the experiment fast while the region
            # still turns over several times within the run.
            block_bytes = 16 * KB
            slots = block_bytes // 128 - 1
            demand_blocks = max(1, (transactions * 2) // slots)
            blocks_needed = max(4, demand_blocks // 2)
            fraction = min(
                0.5,
                blocks_needed * block_bytes / config.nvm.capacity,
            )
            hoop_cfg = dataclasses.replace(
                config.hoop,
                oop_block_bytes=block_bytes,
                gc=GCConfig(period_ns=period),
                oop_region_fraction=fraction,
            )
            config = config.replace(hoop=hoop_cfg)
            system = MemorySystem(config, scheme="hoop")
            wl = make_workload(
                workload, system, seed=seed, **preset.kwargs_for(workload)
            )
            driver = WorkloadDriver(system, threads=preset.threads, seed=seed)
            result = driver.run(
                wl, transactions, warmup=preset.warmup, quiesce=False
            )
            row.append(result.throughput_tx_per_ms)
            on_demand_total += system.scheme.hoop_stats.on_demand_gc
        row.append(on_demand_total)
        fig.add_row(*row)
    fig.add_note(
        "Paper: peak throughput at 8-10 ms periods; shorter periods lose"
        " coalescing, longer ones trigger on-demand GC on the critical path."
    )
    return fig


# -- Figure 11: recovery --------------------------------------------------------------


def run_figure11(scale: str = "default", seed: int = 7) -> FigureData:
    """Recovery time vs recovery threads and NVM bandwidth."""
    preset = get_scale(scale)
    populate_txs = {
        "smoke": 400,
        "default": 1500,
        "paper": 6000,
    }[preset.name]
    thread_counts = (1, 2, 4, 8, 16)
    bandwidths = (10.0, 15.0, 20.0, 25.0)
    target_bytes = 1024**3  # the paper recovers a 1 GB OOP region

    config = preset.system_config()
    hoop_cfg = dataclasses.replace(
        config.hoop, gc=GCConfig(period_ns=1e15)
    )
    config = config.replace(hoop=hoop_cfg)
    system = MemorySystem(config, scheme="hoop")
    wl = make_workload("ycsb", system, seed=seed, **preset.kwargs_for("ycsb"))
    driver = WorkloadDriver(system, threads=preset.threads, seed=seed)
    driver.run(wl, populate_txs, warmup=0, quiesce=False)

    fig = FigureData(
        "Figure 11",
        "Recovery time of a 1 GB OOP region (extrapolated)",
        ["Threads"] + [f"{bw:.0f} GB/s (ms)" for bw in bandwidths],
    )
    populated = None
    for threads in thread_counts:
        row = [threads]
        for bw in bandwidths:
            system.crash()
            report = system.scheme.controller.recovery.recover(
                threads=threads,
                bandwidth_gb_per_s=bw,
                clear_region=False,
            )
            populated = report.bytes_scanned
            scale_up = target_bytes / max(report.bytes_scanned, 1)
            row.append(report.elapsed_ns * scale_up / 1e6)
        fig.add_row(*row)
    fig.add_note(
        f"Populated {populated or 0} bytes of OOP state and extrapolated"
        " linearly to 1 GB (the analytic time model is linear in bytes)."
    )
    fig.add_note(
        "Paper: 47 ms at 25 GB/s (2.3x faster than 10 GB/s); scaling with"
        " threads saturates once the channel is the bottleneck."
    )
    return fig


# -- Figure 12: NVM latency sensitivity -----------------------------------------------


def run_figure12(scale: str = "default", seed: int = 7) -> FigureData:
    """YCSB throughput vs NVM read and write latency (1 KB values)."""
    preset = get_scale(scale)
    latencies = (50.0, 100.0, 150.0, 200.0, 250.0)
    fig = FigureData(
        "Figure 12",
        "YCSB throughput vs NVM latency (HOOP, 1 KB values)",
        ["Latency (ns)", "read sweep (tx/ms)", "write sweep (tx/ms)"],
    )

    def run_with(read_ns: float, write_ns: float) -> float:
        config = preset.system_config()
        nvm = dataclasses.replace(
            config.nvm, read_latency_ns=read_ns, write_latency_ns=write_ns
        )
        config = config.replace(nvm=nvm)
        # Caching is safe here: the config's field values are part of the
        # cell key, so each latency point is its own cache entry.
        result = run_cell(
            "hoop",
            "ycsb",
            scale,
            seed=seed,
            item_bytes=1024,
            config=config,
        )
        return result.throughput_tx_per_ms

    for latency in latencies:
        fig.add_row(
            latency,
            run_with(latency, 150.0),
            run_with(50.0, latency),
        )
    fig.add_note(
        "Paper: throughput improves monotonically as either latency"
        " drops.  In our build the read sweep is steeper: HOOP's commit"
        " is a single queued-slice persist, while every LLC miss pays"
        " the read latency."
    )
    return fig


# -- Figure 13: mapping-table size ------------------------------------------------------


def run_figure13(scale: str = "default", seed: int = 7) -> FigureData:
    """YCSB throughput vs mapping-table size."""
    preset = get_scale(scale)
    sizes = {
        "smoke": (8 * KB, 16 * KB, 32 * KB, 64 * KB, 256 * KB),
        "default": (16 * KB, 32 * KB, 64 * KB, 128 * KB, 512 * KB, 2 * MB),
        "paper": (64 * KB, 128 * KB, 256 * KB, 512 * KB, 2 * MB, 8 * MB),
    }[preset.name]
    fig = FigureData(
        "Figure 13",
        "YCSB throughput vs mapping-table size (HOOP)",
        ["Table size (KB)", "tx/ms", "on-demand GCs"],
    )
    for size in sizes:
        config = preset.system_config()
        hoop_cfg = dataclasses.replace(
            config.hoop, mapping_table_bytes=size
        )
        config = config.replace(hoop=hoop_cfg)
        system = MemorySystem(config, scheme="hoop")
        wl = make_workload(
            "ycsb",
            system,
            item_bytes=1024,
            seed=seed,
            **preset.kwargs_for("ycsb"),
        )
        driver = WorkloadDriver(system, threads=preset.threads, seed=seed)
        result = driver.run(
            wl, preset.transactions, warmup=preset.warmup, quiesce=False
        )
        fig.add_row(
            size / KB,
            result.throughput_tx_per_ms,
            system.scheme.hoop_stats.on_demand_gc,
        )
    fig.add_note(
        "Paper: small tables force frequent on-demand GC; the knee sits"
        " where the table covers the inter-GC working set (2 MB in Fig. 13)."
    )
    return fig


# -- thread scalability (the multi-core context of §IV-A) ---------------------------


def run_thread_scaling(scale: str = "default", seed: int = 7) -> FigureData:
    """Hashmap throughput vs worker threads, HOOP vs Opt-Redo vs Ideal.

    The paper runs 8 threads on 16 cores; this sweep shows where each
    scheme stops scaling — the logging baseline hits the NVM channel
    first, which is the bandwidth argument of §IV-B made visible.
    """
    preset = get_scale(scale)
    max_threads = preset.system_config().num_cores
    thread_counts = [t for t in (1, 2, 4, 8, 16) if t <= max_threads]
    schemes = ("native", "hoop", "opt-redo")
    fig = FigureData(
        "Thread scaling",
        "Hashmap throughput vs threads (tx/ms)",
        ["Threads"] + list(schemes),
    )
    for threads in thread_counts:
        row = [threads]
        for scheme in schemes:
            config = preset.system_config()
            system = MemorySystem(config, scheme=scheme)
            wl = make_workload(
                "hashmap", system, seed=seed, **preset.kwargs_for("hashmap")
            )
            driver = WorkloadDriver(system, threads=threads, seed=seed)
            result = driver.run(
                wl, preset.transactions, warmup=preset.warmup
            )
            row.append(result.throughput_tx_per_ms)
        fig.add_row(*row)
    fig.add_note(
        "Heavier write traffic saturates the shared channel at lower"
        " thread counts; HOOP tracks the ideal curve longest."
    )
    return fig


# -- OOP region fraction sweep (10% default, §III-H) ----------------------------------


def run_region_fraction_sweep(
    scale: str = "default", seed: int = 7
) -> FigureData:
    """HOOP throughput vs reserved OOP-region size.

    §III-H reserves 10% of NVM capacity.  Too little reserved space
    forces on-demand GC onto the critical path; past the knee, extra
    reservation buys nothing but lost capacity.
    """
    preset = get_scale(scale)
    fractions = (0.001, 0.002, 0.005, 0.01, 0.02, 0.05)
    transactions = preset.transactions * 6
    fig = FigureData(
        "Region sweep",
        "Hashmap throughput vs OOP region fraction (HOOP)",
        ["Fraction", "tx/ms", "on-demand GCs", "blocks reclaimed"],
    )
    for fraction in fractions:
        config = preset.system_config()
        # Periodic GC off: reclamation happens only when the reserved
        # space itself demands it, which is what the sweep measures.
        hoop_cfg = dataclasses.replace(
            config.hoop,
            oop_block_bytes=16 * KB,
            oop_region_fraction=fraction,
            gc=GCConfig(period_ns=1e15),
        )
        config = config.replace(hoop=hoop_cfg)
        try:
            system = MemorySystem(config, scheme="hoop")
        except Exception:
            continue  # fraction too small to carve two blocks
        wl = make_workload(
            "hashmap", system, seed=seed, **preset.kwargs_for("hashmap")
        )
        driver = WorkloadDriver(system, threads=preset.threads, seed=seed)
        result = driver.run(
            wl, transactions, warmup=preset.warmup, quiesce=False
        )
        fig.add_row(
            fraction,
            result.throughput_tx_per_ms,
            system.scheme.hoop_stats.on_demand_gc,
            system.scheme.controller.region.stats.blocks_reclaimed,
        )
    fig.add_note(
        "The paper reserves 10%; the knee appears once the region holds"
        " several GC windows' worth of slices."
    )
    return fig


# -- dataset-size variants (the paper's 64 B / 1 KB item datasets) ------------------


def run_dataset_variants(scale: str = "default", seed: int = 7) -> FigureData:
    """Throughput/traffic for the paper's two item-size datasets.

    §IV-A: "Each workload has two different data sets consisted of 64
    bytes and 1 KB items" (YCSB uses 512 B and 1 KB values).  Larger items
    mean more word stores per transaction, which stresses data packing
    (more full slices) and commit drains.
    """
    variants = (
        ("vector", 64),
        ("vector", 1024),
        ("hashmap", 64),
        ("hashmap", 1024),
        ("ycsb", 512),
        ("ycsb", 1024),
    )
    fig = FigureData(
        "Dataset variants",
        "HOOP vs Opt-Redo across item sizes",
        [
            "Workload",
            "Item B",
            "hoop tx/ms",
            "hoop B/tx",
            "redo tx/ms",
            "redo B/tx",
            "traffic ratio",
        ],
    )
    for workload, item_bytes in variants:
        hoop = run_cell(
            "hoop", workload, scale, seed=seed, item_bytes=item_bytes
        )
        redo = run_cell(
            "opt-redo", workload, scale, seed=seed, item_bytes=item_bytes
        )
        fig.add_row(
            workload,
            item_bytes,
            hoop.throughput_tx_per_ms,
            hoop.bytes_per_tx,
            redo.throughput_tx_per_ms,
            redo.bytes_per_tx,
            redo.bytes_per_tx / max(hoop.bytes_per_tx, 1e-9),
        )
    fig.add_note(
        "The paper's headline ratios hold across both dataset sizes;"
        " absolute traffic grows with the item size."
    )
    return fig


# -- §IV-C read-path profile --------------------------------------------------------------


def run_read_profile(scale: str = "default", seed: int = 7) -> FigureData:
    """HOOP's read-path statistics (the §IV-C profiling paragraph)."""
    fig = FigureData(
        "§IV-C profile",
        "HOOP read-path profile",
        [
            "Workload",
            "LLC miss ratio",
            "NVM loads per miss",
            "parallel-read fraction",
        ],
    )
    for workload in MATRIX_WORKLOADS:
        result = run_cell("hoop", workload, scale, seed=seed)
        misses = max(result.extras.get("llc_misses", 0), 1)
        reads = result.extras.get("fill_reads", 0)
        parallel = result.extras.get("parallel_reads", 0)
        fig.add_row(
            workload,
            result.llc_miss_ratio,
            reads / misses,
            parallel / misses,
        )
    fig.add_note(
        "Paper: 12.1% average LLC miss ratio, 1.28 NVM loads per miss,"
        " 3.4% of misses issue parallel home+OOP reads."
    )
    return fig


# -- telemetry: per-cell latency percentiles -----------------------------------------


def run_telemetry_matrix(
    scale: str = "default",
    seed: int = 7,
    out_dir: Optional[str] = None,
) -> FigureData:
    """Commit-latency percentiles for every (scheme, workload) cell.

    Each cell runs with a live :class:`~repro.telemetry.Telemetry` hub;
    the cells are *not* cached (a telemetry-enabled run records extra
    state and must never be conflated with the plain matrix cells).
    With ``out_dir`` the full per-cell summary dict is also written to
    ``telemetry_<scheme>_<workload>.json`` for offline comparison.
    """
    preset = get_scale(scale)
    fig = FigureData(
        "Telemetry matrix",
        "commit-latency percentiles per cell (us, log2-bucket bounds)",
        [
            "Scheme",
            "Workload",
            "commits",
            "p50",
            "p95",
            "p99",
            "max",
            "gc p99",
        ],
    )
    out_path = Path(out_dir) if out_dir else None
    if out_path is not None:
        out_path.mkdir(parents=True, exist_ok=True)
    for scheme in ("native",) + PERSISTENCE_SCHEMES:
        for workload in MATRIX_WORKLOADS:
            telemetry = Telemetry()
            system = MemorySystem(
                preset.system_config(), scheme=scheme, telemetry=telemetry
            )
            wl = make_workload(
                workload, system, seed=seed, **preset.kwargs_for(workload)
            )
            driver = WorkloadDriver(
                system, threads=preset.threads, seed=seed
            )
            driver.run(wl, preset.transactions, warmup=preset.warmup)
            summary = telemetry.summary()
            commit = summary["histograms"].get("commit_latency_ns", {})
            gc = summary["histograms"].get("gc_pause_ns", {})
            fig.add_row(
                scheme,
                workload,
                commit.get("count", 0),
                commit.get("p50", 0) / 1e3,
                commit.get("p95", 0) / 1e3,
                commit.get("p99", 0) / 1e3,
                commit.get("max", 0) / 1e3,
                gc.get("p99", 0) / 1e3,
            )
            if out_path is not None:
                cell_file = out_path / f"telemetry_{scheme}_{workload}.json"
                cell_file.write_text(
                    json.dumps(summary, indent=2, sort_keys=True)
                )
    fig.add_note(
        "Percentiles are log2-bucket upper bounds over the measured"
        " window (warm-up excluded); gc p99 covers real GC passes only."
    )
    if out_path is not None:
        fig.add_note(f"per-cell summaries written to {out_path}")
    return fig


# -- fault-tolerance report ----------------------------------------------------------


def run_fault_reports(scale: str = "default", seed: int = 7) -> FigureData:
    """Fault-tolerance counters per scheme under transient read faults.

    Runs the hashmap workload on a fault-injecting device (no power
    cuts: every scheme must finish the run, so only recoverable faults
    are enabled) and flattens each scheme's
    :func:`~repro.stats.report.fault_tolerance_figure` into one table.
    """
    preset = get_scale(scale)
    fig = FigureData(
        "Fault report",
        "fault-tolerance counters per scheme (hashmap, transient reads)",
        ["Scheme", "Counter", "Value"],
    )
    for scheme in ("hoop", "opt-redo", "opt-undo"):
        config = preset.system_config().replace(
            faults=FaultConfig(
                enabled=True, read_error_rate=5e-4, seed=seed
            )
        )
        system = MemorySystem(config, scheme=scheme)
        wl = make_workload(
            "hashmap", system, seed=seed, **preset.kwargs_for("hashmap")
        )
        driver = WorkloadDriver(system, threads=preset.threads, seed=seed)
        driver.run(wl, preset.transactions, warmup=preset.warmup)
        for counter, value in fault_tolerance_figure(system).rows:
            fig.add_row(scheme, counter, value)
    fig.add_note(
        "Transient read faults retry with backoff at the memory port;"
        " counters come from the device injector and the port stats."
    )
    return fig
