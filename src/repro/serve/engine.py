"""The parallel shard-execution engine: lock-step epochs over workers.

The cluster's shards share nothing, so a serving run is one big
embarrassingly-parallel computation — *if* the timeline is carved up
deterministically.  This module does the carving:

* :func:`drive` — the coordinator loop both execution modes share.
  Each round it computes the next **global event horizon** (the min
  over every shard's next-event clock — which embeds batch deadlines,
  busy-until instants, recovery horizons, promotion/lease-expiry wakes
  — and the next client arrival) plus one epoch quantum, routes the
  arrivals due by that horizon in canonical ``(arrival_ns, client_id)``
  order, and broadcasts ``advance_to(horizon)``.
* :class:`InProcessBackend` — ``workers == 0``: the executors advance
  in shard order on the coordinator's own hub.  This *is* the
  sequential mode; it exists so both modes run literally the same
  driver.
* :class:`WorkerPoolBackend` — ``workers > 0``: persistent forked
  worker processes, one pipe each.  Shards are placed round-robin at
  startup as :func:`~repro.snapshot.wire.to_wire` blobs; every epoch
  the workers run their shards' admissions/batches/ships/recoveries up
  to the horizon and reply with (per-shard events, ack-progress
  records, next-event clocks), which the coordinator merges **in shard
  order** — the same order the in-process backend produces them.

Determinism contract: a ``--workers W`` run is bit-identical to
``--workers 0`` — same acks, same oracle verdicts, same keyspace
fingerprints, same latency histograms.  Three mechanisms carry it:
per-shard event order is a total order ``(time, kind, seq)``
independent of epoch boundaries (:mod:`repro.serve.shard`); every
metric with float accumulation is per-shard single-writer and merged
in shard order (:meth:`~repro.telemetry.hub.Telemetry.merge_metrics`);
and all RNG streams stay per-shard/per-client ``derive(...)`` seeded,
so no stream is ever shared across a partition boundary.  (Shared
machine-level histograms — e.g. ``commit_latency_ns`` across shards on
different workers — keep exact bucket counts and extrema but may
differ from sequential in the last bits of their float ``total``; the
serve report only consumes per-shard sinks.)

Fault tolerance reuses the :mod:`repro.harness.parallel` discipline:
a worker that dies (or exceeds ``worker_timeout_s``) is killed and
respawned with seeded exponential backoff, its shards are re-placed
from the last checkpoint (wire blobs + the worker's metric sinks,
taken every ``checkpoint_every`` epochs), and the journal of commands
since that checkpoint is replayed — deterministically reproducing the
lost state, with replayed replies discarded so nothing double-merges.
A worker that keeps dying past its retry budget fails the run loudly.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ConfigError, ReproError
from repro.serve.client import ArrivalStream, make_clients
from repro.snapshot.wire import from_wire, to_wire
from repro.telemetry.hub import Telemetry

__all__ = ["EngineConfig", "EngineError", "drive"]


class EngineError(ReproError):
    """The worker pool could not complete the run (retries exhausted)."""


@dataclass(frozen=True)
class EngineConfig:
    """How a serving run *executes* — never what it computes.

    Deliberately separate from :class:`~repro.serve.ServeConfig`
    ("everything that determines a serving run"): every field here may
    change between runs without changing a single byte of the report.
    ``workers == 0`` advances the shard executors in-process;
    ``workers > 0`` fans them out over that many forked worker
    processes in lock-step epochs of ``epoch_us`` simulated
    microseconds past each global horizon.  ``kill_worker_at`` is the
    fault-injection hook for the worker-death recovery path (CI's
    mid-run recovery smoke): worker W calls ``os._exit`` at the start
    of epoch E.
    """

    workers: int = 0
    epoch_us: float = 1000.0
    checkpoint_every: int = 8
    worker_timeout_s: Optional[float] = None
    retries: int = 2
    backoff_base_s: float = 0.05
    backoff_seed: int = 7
    kill_worker_at: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        """Reject execution configs that cannot work."""
        if self.workers < 0:
            raise ConfigError("workers must be >= 0")
        if self.epoch_us <= 0:
            raise ConfigError("epoch_us must be positive")
        if self.checkpoint_every < 1:
            raise ConfigError("checkpoint_every must be >= 1")
        if self.retries < 0:
            raise ConfigError("retries must be >= 0")


# -- the shared coordinator loop ----------------------------------------------


def drive(cluster, engine_cfg: EngineConfig) -> None:
    """Run a cluster to completion through lock-step epochs.

    The loop is identical for both backends — that is the point: mode
    selection changes *where* ``advance_to`` runs, never what horizons
    are chosen or in what order arrivals are routed.
    """
    cfg = cluster.cfg
    clients = make_clients(
        cfg.clients,
        aggregate_rate_per_s=cfg.rate_per_s,
        duration_ns=cfg.duration_ms * 1e6,
        keyspace=cfg.keyspace,
        value_bytes=cfg.value_bytes,
        read_fraction=cfg.read_fraction,
        zipf_theta=cfg.zipf_theta,
        seed=cfg.seed,
    )
    stream = ArrivalStream(clients, cluster.router)
    for executor in cluster.sorted_executors():
        executor.arm_kills()
    workers = min(engine_cfg.workers, cfg.shards)
    if workers > 0:
        backend = WorkerPoolBackend(engine_cfg, cluster.telemetry, workers)
    else:
        backend = InProcessBackend(cluster)
    try:
        next_map = backend.place(cluster.executors)
        quantum_ns = engine_cfg.epoch_us * 1e3
        epoch = 0
        while True:
            floor_ns = min(
                stream.peek_ns(),
                min(next_map.values(), default=math.inf),
            )
            if floor_ns == math.inf:
                break  # no arrivals left, every shard heap drained
            horizon = floor_ns + quantum_ns
            arrivals: Dict[int, list] = {}
            for request in stream.take_until(horizon):
                arrivals.setdefault(request.shard, []).append(request)
            epoch += 1
            next_map = backend.advance(epoch, horizon, arrivals)
        cluster.epochs = epoch
        if cfg.verify_final:
            backend.finalize()
        backend.collect(cluster)
    finally:
        backend.close()


# -- in-process backend (workers == 0) ----------------------------------------


class InProcessBackend:
    """Sequential mode: advance the executors right here, in shard order."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    def place(self, executors) -> Dict[int, float]:
        """No placement needed; report the initial next-event clocks."""
        return {
            shard_id: executor.next_event_ns()
            for shard_id, executor in sorted(executors.items())
        }

    def advance(
        self, epoch: int, horizon_ns: float, arrivals: Dict[int, list]
    ) -> Dict[int, float]:
        """Submit this epoch's arrivals and advance each shard in order."""
        next_map: Dict[int, float] = {}
        for executor in self.cluster.sorted_executors():
            for request in arrivals.get(executor.shard_id, ()):
                executor.submit(request)
            executor.advance_to(horizon_ns)
            next_map[executor.shard_id] = executor.next_event_ns()
        return next_map

    def finalize(self) -> None:
        """Run every shard's end-of-run oracle sweep, in shard order."""
        for executor in self.cluster.sorted_executors():
            executor.final_verify()

    def collect(self, cluster) -> None:
        """Nothing to gather — the executors never left this process."""

    def close(self) -> None:
        """Nothing to tear down."""


# -- worker pool backend (workers > 0) ----------------------------------------


class _WorkerDied(Exception):
    """Internal: the worker's pipe broke, it exited, or it timed out."""


class _Worker:
    """Coordinator-side handle of one persistent worker process."""

    __slots__ = (
        "index",
        "shards",
        "process",
        "conn",
        "checkpoint",
        "journal",
        "attempts",
        "kill_at",
    )

    def __init__(self, index: int, shards: List[int], kill_at) -> None:
        self.index = index
        self.shards = shards
        self.process = None
        self.conn = None
        # ("place", {shard: wire blob}, metric export) — what a fresh
        # process needs to reconstruct this worker as of the last
        # checkpoint; the journal replays everything since.
        self.checkpoint = None
        self.journal: List[tuple] = []
        self.attempts = 0
        self.kill_at = kill_at


def _backoff_s(attempt: int, base_s: float, rng: random.Random) -> float:
    """Seeded exponential backoff with jitter: attempt 1 ≈ base."""
    return base_s * (2 ** (attempt - 1)) * (0.5 + rng.random())


class WorkerPoolBackend:
    """Persistent forked workers advancing their shards in lock-step."""

    def __init__(
        self, engine_cfg: EngineConfig, telemetry, workers: int
    ) -> None:
        self.cfg = engine_cfg
        self.telemetry = telemetry
        self.worker_count = workers
        self._context = multiprocessing.get_context("fork")
        self._workers: List[_Worker] = []
        self._rng = random.Random(engine_cfg.backoff_seed)
        self.progress: Dict[int, dict] = {}

    # -- lifecycle ------------------------------------------------------------

    def place(self, executors) -> Dict[int, float]:
        """Partition shards round-robin, spawn workers, wire the state over."""
        shard_ids = sorted(executors)
        kill = self.cfg.kill_worker_at
        for index in range(self.worker_count):
            shards = shard_ids[index :: self.worker_count]
            worker = _Worker(
                index,
                shards,
                kill[1] if kill is not None and kill[0] == index else None,
            )
            worker.checkpoint = (
                "place",
                {sid: to_wire(executors[sid]) for sid in shards},
                None,
            )
            self._spawn(worker)
            self._workers.append(worker)
        next_map: Dict[int, float] = {}
        for worker, _, reply in self._broadcast(lambda w: w.checkpoint):
            next_map.update(reply[1])
        return next_map

    def _spawn(self, worker: _Worker) -> None:
        """Start (or restart) one worker process on a fresh pipe."""
        parent, child = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(child, worker.kill_at),
            daemon=True,
        )
        process.start()
        child.close()
        worker.process = process
        worker.conn = parent
        # The kill hook fires once: a revived replacement must survive.
        worker.kill_at = None

    def close(self) -> None:
        """Stop every worker (best effort — they are daemons anyway)."""
        for worker in self._workers:
            try:
                worker.conn.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in self._workers:
            if worker.process is not None:
                worker.process.join(timeout=2.0)
                if worker.process.is_alive():
                    worker.process.kill()

    # -- epoch protocol -------------------------------------------------------

    def advance(
        self, epoch: int, horizon_ns: float, arrivals: Dict[int, list]
    ) -> Dict[int, float]:
        """One lock-step epoch across the pool; merge in shard order."""
        checkpoint = epoch % self.cfg.checkpoint_every == 0

        def command_for(worker: _Worker) -> tuple:
            routed = {
                sid: arrivals[sid] for sid in worker.shards if sid in arrivals
            }
            return ("advance", epoch, horizon_ns, routed, checkpoint)

        chunks: List[tuple] = []
        next_map: Dict[int, float] = {}
        for worker, command, reply in self._broadcast(command_for):
            _, _, worker_chunks, worker_next, worker_checkpoint = reply
            chunks.extend(worker_chunks)
            next_map.update(worker_next)
            if worker_checkpoint is not None:
                worker.checkpoint = ("place",) + worker_checkpoint
                worker.journal = []
            else:
                worker.journal.append(command)
        self._merge_chunks(chunks)
        return next_map

    def finalize(self) -> None:
        """Broadcast the end-of-run oracle sweep; merge its events."""
        replies = self._broadcast(lambda worker: ("final",))
        chunks: List[tuple] = []
        for worker, command, reply in replies:
            worker.journal.append(command)
            chunks.extend(reply[1])
        self._merge_chunks(chunks)

    def collect(self, cluster) -> None:
        """Wire every executor back and fold worker metrics into the hub.

        Per-shard sinks (``shardN/…``) are adopted wholesale — exactly
        one worker ever wrote each, so adoption reproduces the
        in-process floats bit for bit; shared machine-level sinks merge
        additively in worker order.
        """
        for worker, _, reply in self._broadcast(lambda w: ("collect",)):
            _, blobs, metrics = reply
            for shard_id, blob in sorted(blobs.items()):
                cluster.executors[shard_id] = from_wire(
                    blob, telemetry=self.telemetry
                )
            self.telemetry.merge_metrics(
                metrics, adopt=lambda name: name.startswith("shard")
            )

    def _merge_chunks(self, chunks: List[tuple]) -> None:
        """Fold per-shard (events, progress) replies in shard order."""
        for shard_id, events, progress in sorted(
            chunks, key=lambda chunk: chunk[0]
        ):
            self.telemetry.absorb_events(events)
            self.progress[shard_id] = progress

    # -- transport with death recovery ----------------------------------------

    def _broadcast(self, command_for) -> List[tuple]:
        """Send one command to every worker, gather every reply.

        Sends are pipelined (all workers compute concurrently); the
        gather phase recovers any worker that died or hung, replaying
        it from its checkpoint+journal before re-asking the current
        command.  Returns ``(worker, command, reply)`` in worker-index
        order — deterministic merge fodder for the callers.
        """
        sent: List[Tuple[_Worker, tuple]] = []
        for worker in self._workers:
            command = command_for(worker)
            sent.append((worker, command))
            try:
                self._send(worker, command)
            except _WorkerDied as exc:
                self._recover(worker, exc)
                self._send_or_recover(worker, command)
        replies: List[tuple] = []
        for worker, command in sent:
            while True:
                try:
                    reply = self._recv(worker)
                    break
                except _WorkerDied as exc:
                    self._recover(worker, exc)
                    self._send_or_recover(worker, command)
            replies.append((worker, command, reply))
        return replies

    def _send_or_recover(self, worker: _Worker, command: tuple) -> None:
        """Send, recovering (and recharging) until the pipe accepts it."""
        while True:
            try:
                self._send(worker, command)
                return
            except _WorkerDied as exc:
                self._recover(worker, exc)

    def _send(self, worker: _Worker, command: tuple) -> None:
        try:
            worker.conn.send(command)
        except (BrokenPipeError, OSError, ValueError) as exc:
            raise _WorkerDied(f"send failed: {exc!r}") from exc

    def _recv(self, worker: _Worker):
        """Receive one reply, policing liveness and the optional timeout."""
        timeout = self.cfg.worker_timeout_s
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        conn = worker.conn
        while True:
            try:
                if conn.poll(0.2):
                    return conn.recv()
            except (EOFError, OSError) as exc:
                raise _WorkerDied(f"pipe closed: {exc!r}") from exc
            if not worker.process.is_alive():
                # Drain a reply the worker managed to write before dying.
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError):
                    pass
                raise _WorkerDied(
                    f"worker {worker.index} exited "
                    f"(code {worker.process.exitcode})"
                )
            if deadline is not None and time.monotonic() > deadline:
                worker.process.kill()
                worker.process.join()
                raise _WorkerDied(
                    f"worker {worker.index} timed out after "
                    f"{timeout:.1f}s (killed)"
                )

    def _recover(self, worker: _Worker, reason: Exception) -> None:
        """Respawn a dead worker and replay it back to the present.

        Each failed attempt is charged against the worker's retry
        budget with seeded exponential backoff (the
        :mod:`repro.harness.parallel` discipline); exhausting the
        budget raises :class:`EngineError` — a run never silently
        proceeds with missing shards.  Replayed replies are discarded
        (their events/metrics were already merged upstream or are
        re-exported at the next checkpoint/collect), except checkpoint
        refreshes, which keep future replays short.
        """
        while True:
            worker.attempts += 1
            if worker.attempts > self.cfg.retries:
                raise EngineError(
                    f"worker {worker.index} (shards {worker.shards}) "
                    f"failed {worker.attempts} times; last: {reason}"
                )
            time.sleep(
                _backoff_s(
                    worker.attempts, self.cfg.backoff_base_s, self._rng
                )
            )
            if worker.process is not None and worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            self._spawn(worker)
            try:
                self._send(worker, worker.checkpoint)
                self._recv(worker)
                for command in worker.journal:
                    self._send(worker, command)
                    reply = self._recv(worker)
                    if command[0] == "advance" and command[4]:
                        worker.checkpoint = ("place",) + reply[4]
                return
            except _WorkerDied as exc:
                reason = exc


# -- the worker process -------------------------------------------------------


def _worker_main(conn, kill_at_epoch: Optional[int]) -> None:
    """One worker: rebuild shards from wire, step them epoch by epoch.

    The worker owns a private telemetry hub: every rebuilt executor
    points at it (the wire layer's sentinel substitution), events are
    drained per shard per epoch into the reply, and the metric sinks
    travel back once — in checkpoints and at collect.  ``kill_at_epoch``
    is the recovery-smoke hook: die (hard, no cleanup) at the start of
    that epoch's processing.
    """
    hub = Telemetry()
    executors: Dict[int, object] = {}
    while True:
        try:
            command = conn.recv()
        except (EOFError, OSError):
            return
        op = command[0]
        if op == "place":
            _, blobs, metrics = command
            hub = Telemetry()
            if metrics is not None:
                # Checkpoint restore: refill the fresh hub's sinks so
                # post-replay exports match an uninterrupted worker's.
                hub.merge_metrics(metrics)
            executors = {
                shard_id: from_wire(blob, telemetry=hub)
                for shard_id, blob in sorted(blobs.items())
            }
            conn.send(
                (
                    "placed",
                    {
                        shard_id: executor.next_event_ns()
                        for shard_id, executor in executors.items()
                    },
                )
            )
        elif op == "advance":
            _, epoch, horizon_ns, arrivals, checkpoint = command
            if kill_at_epoch is not None and epoch >= kill_at_epoch:
                os._exit(3)
            chunks = []
            next_map = {}
            for shard_id in sorted(executors):
                executor = executors[shard_id]
                for request in arrivals.get(shard_id, ()):
                    executor.submit(request)
                executor.advance_to(horizon_ns)
                chunks.append(
                    (shard_id, hub.drain_events(), executor.progress())
                )
                next_map[shard_id] = executor.next_event_ns()
            snapshot = None
            if checkpoint:
                snapshot = (
                    {
                        shard_id: to_wire(executor)
                        for shard_id, executor in executors.items()
                    },
                    hub.export_metrics(),
                )
            conn.send(("advanced", epoch, chunks, next_map, snapshot))
        elif op == "final":
            chunks = []
            for shard_id in sorted(executors):
                executor = executors[shard_id]
                executor.final_verify()
                chunks.append(
                    (shard_id, hub.drain_events(), executor.progress())
                )
            conn.send(("finalized", chunks))
        elif op == "collect":
            conn.send(
                (
                    "collected",
                    {
                        shard_id: to_wire(executor)
                        for shard_id, executor in executors.items()
                    },
                    hub.export_metrics(),
                )
            )
        elif op == "stop":
            conn.close()
            return
