"""The sharded serving cluster: event loop, shards, and failover.

One :class:`ServeCluster` owns N :class:`Shard` machines (each a full
:class:`~repro.txn.system.MemorySystem` running the configured
persistence scheme on a fault-injectable NVM device), the consistent-
hash router, the admission queues, the batch scheduler, open-loop
clients, and the acked-write oracle.  Everything runs in *simulated*
time on a single deterministic event loop.

Scheduling is the same min-clock discipline as
:class:`~repro.workloads.driver.WorkloadDriver`: a heap of
``(time_ns, seq, …)`` events is always popped in nondecreasing time
order, so shared decisions (admission, batching, failover) are made in
a globally consistent timeline while each shard's own clock advances
independently through its transactions.  Ties break on a monotone
sequence number — the loop is a pure function of the config and seed.

Failover: an armed deadline power cut
(:meth:`~repro.faults.injector.FaultInjector.arm_power_loss_at`) kills
one shard mid-batch.  The cluster catches the
:class:`~repro.common.errors.PowerLossError`, drives the standard
``crash()``/``recover()`` path, verifies the shard against the
acked-write oracle (including all-or-nothing for the in-flight batch),
holds the shard RECOVERING for the recovery model's simulated duration
while its queue keeps absorbing traffic (overflow sheds with typed
retryable rejections), requeues the failed batch, and resumes.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from repro.common import rng as rng_util
from repro.common.config import FaultConfig, SystemConfig
from repro.common.errors import PowerLossError
from repro.serve.admission import AdmissionController, RetryableRejection
from repro.serve.batcher import BatchScheduler
from repro.serve.client import OP_GET, Request, make_clients
from repro.serve.oracle import AckOracle, value_words
from repro.serve.router import ConsistentHashRouter
from repro.telemetry.hub import Telemetry
from repro.txn.system import MemorySystem

# Shard lifecycle states.
UP = "up"
RECOVERING = "recovering"

# Event kinds: a client's next arrival, or a shard wake-up (batch
# deadline, busy-until, or recovery completion — the pump sorts it out).
_ARRIVAL = 0
_WAKE = 1


class Shard:
    """One shard: a simulated NVM machine plus its slice of the keyspace."""

    def __init__(
        self,
        shard_id: int,
        *,
        scheme: str,
        keys: List[int],
        value_bytes: int,
        seed: int,
        telemetry: Telemetry,
    ) -> None:
        faults = FaultConfig(
            enabled=True,
            seed=rng_util.derive(seed, "shard", shard_id, "faults"),
        )
        config = SystemConfig.small().replace(faults=faults)
        self.system = MemorySystem(config, scheme=scheme, telemetry=telemetry)
        self.shard_id = shard_id
        self.value_bytes = value_bytes
        # Slot directory: a pure function of (router, keyspace) — see
        # ConsistentHashRouter.partition — so it survives any crash by
        # recomputation, never by being volatile runtime state.
        self._slot = {key: index for index, key in enumerate(keys)}
        self.base = self.system.allocate(max(1, len(keys)) * value_bytes)
        self.state = UP
        self.recover_at_ns = 0.0
        self.kills = 0
        self.recoveries = 0
        self.acked = 0

    def addr_of(self, key: int) -> int:
        """Home-region address of one key's value slot."""
        return self.base + self._slot[key] * self.value_bytes

    @property
    def clock_ns(self) -> float:
        """The shard's service clock (core 0 does all the serving)."""
        return self.system.clocks[0]


class ServeCluster:
    """N shards behind a router, driven by one simulated-time event loop."""

    def __init__(self, cfg, *, telemetry: Optional[Telemetry] = None) -> None:
        self.cfg = cfg
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        shard_ids = list(range(cfg.shards))
        self.router = ConsistentHashRouter(shard_ids, seed=cfg.seed)
        partition = self.router.partition(cfg.keyspace)
        self.shards: Dict[int, Shard] = {
            shard_id: Shard(
                shard_id,
                scheme=cfg.scheme,
                keys=partition[shard_id],
                value_bytes=cfg.value_bytes,
                seed=cfg.seed,
                telemetry=self.telemetry,
            )
            for shard_id in shard_ids
        }
        self.admission = AdmissionController(
            shard_ids, queue_depth=cfg.queue_depth
        )
        self.batcher = BatchScheduler(
            batch_size=cfg.batch_size,
            batch_wait_ns=cfg.batch_wait_us * 1e3,
        )
        self.oracle = AckOracle(shard_ids)
        self.now_ns = 0.0
        self.offered = 0
        self.admitted = 0
        self.acked_puts = 0
        self.acked_gets = 0
        self.retried = 0
        self.shed_on_failover = 0
        self.batches = 0
        self.oracle_failures: List[str] = []
        self.last_completion_ns = 0.0
        self._events: List[tuple] = []
        self._seq = 0

    # -- event plumbing -------------------------------------------------------

    def _push(self, time_ns: float, kind: int, arg: int) -> None:
        self._seq += 1
        heapq.heappush(self._events, (time_ns, self._seq, kind, arg))

    # -- the run --------------------------------------------------------------

    def run(self) -> None:
        """Drive the whole open-loop run to completion (queues drained)."""
        cfg = self.cfg
        clients = make_clients(
            cfg.clients,
            aggregate_rate_per_s=cfg.rate_per_s,
            duration_ns=cfg.duration_ms * 1e6,
            keyspace=cfg.keyspace,
            value_bytes=cfg.value_bytes,
            read_fraction=cfg.read_fraction,
            zipf_theta=cfg.zipf_theta,
            seed=cfg.seed,
        )
        pending: Dict[int, Request] = {}
        for client_id, client in clients.items():
            request = client.next_request()
            if request is not None:
                pending[client_id] = request
                self._push(request.arrival_ns, _ARRIVAL, client_id)
        if cfg.kill_shard is not None:
            kill_at_ms = (
                cfg.kill_at_ms
                if cfg.kill_at_ms is not None
                else cfg.duration_ms * 0.4
            )
            shard = self.shards[cfg.kill_shard]
            shard.system.device.injector.arm_power_loss_at(
                kill_at_ms * 1e6, torn=cfg.torn_kill
            )
        while self._events:
            time_ns, _, kind, arg = heapq.heappop(self._events)
            if time_ns > self.now_ns:
                self.now_ns = time_ns
            if kind == _ARRIVAL:
                request = pending.pop(arg)
                nxt = clients[arg].next_request()
                if nxt is not None:
                    pending[arg] = nxt
                    self._push(nxt.arrival_ns, _ARRIVAL, arg)
                self._admit(request)
                self._pump(request.shard)
            else:
                self._pump(arg)
        if cfg.verify_final:
            self._final_verify()

    # -- admission ------------------------------------------------------------

    def _admit(self, request: Request) -> None:
        request.shard = self.router.shard_for(request.key)
        shard = self.shards[request.shard]
        self.offered += 1
        recovering = shard.state == RECOVERING
        if recovering:
            retry_after = max(shard.recover_at_ns - self.now_ns, 0.0)
        else:
            retry_after = self.batcher.batch_wait_ns
        try:
            self.admission.admit(
                request, recovering=recovering, retry_after_ns=retry_after
            )
        except RetryableRejection as rejection:
            self.telemetry.emit(
                self.now_ns,
                "serve_reject",
                "serve",
                {"shard": request.shard, "kind": rejection.kind},
            )
            return
        self.admitted += 1
        self.telemetry.record(
            f"shard{request.shard}/queue_depth",
            self.admission.depth(request.shard),
        )
        self.telemetry.sample(
            f"shard{request.shard}/admitted", self.now_ns
        )

    # -- the shard pump -------------------------------------------------------

    def _pump(self, shard_id: int) -> None:
        """Advance one shard: recovery completion, then batch formation."""
        shard = self.shards[shard_id]
        if shard.state == RECOVERING:
            if self.now_ns + 1e-9 < shard.recover_at_ns:
                return  # the recovery-completion wake is already queued
            self._complete_recovery(shard)
        if shard.clock_ns > self.now_ns + 1e-9:
            # Busy until its clock; re-pump then.
            self._push(shard.clock_ns, _WAKE, shard_id)
            return
        queue = self.admission.queues[shard_id]
        if not queue:
            return
        if self.batcher.ready(queue, self.now_ns):
            self._execute_batch(shard)
        else:
            self._push(self.batcher.deadline_ns(queue), _WAKE, shard_id)

    # -- batch execution ------------------------------------------------------

    def _execute_batch(self, shard: Shard) -> None:
        """One batch: GET loads, then all PUTs as one transaction."""
        system = shard.system
        batch = self.batcher.take(self.admission.queues[shard.shard_id])
        start = max(self.now_ns, shard.clock_ns)
        system.clocks[0] = start
        self.telemetry.record("batch_size", len(batch))
        puts: List[Request] = []
        try:
            for request in batch:
                if request.op != OP_GET:
                    puts.append(request)
                    continue
                system.load(
                    shard.addr_of(request.key),
                    shard.value_bytes,
                    core=0,
                )
                request.completion_ns = system.clocks[0]
                self._ack(shard, request)
            stores = [
                (shard.addr_of(request.key), request.value)
                for request in puts
            ]
            tx = system.run_batch(stores, core=0) if stores else None
        except PowerLossError as exc:
            issued = getattr(exc, "issued_stores", [])
            staged: Dict[int, bytes] = {}
            for addr, value in issued:
                for word_addr, word in value_words(addr, value):
                    staged[word_addr] = word
            unacked = [r for r in batch if r.completion_ns <= 0.0]
            self._failover(shard, staged, unacked)
            return
        if tx is not None:
            completion = tx.end_ns
            for request in puts:
                request.completion_ns = completion
                self.oracle.record_ack(
                    shard.shard_id,
                    shard.addr_of(request.key),
                    request.value,
                )
                self._ack(shard, request)
        self.batches += 1
        self._push(shard.clock_ns, _WAKE, shard.shard_id)

    def _ack(self, shard: Shard, request: Request) -> None:
        """Acknowledgement instant: count + latency histograms."""
        latency = request.latency_ns
        if request.op == OP_GET:
            self.acked_gets += 1
        else:
            self.acked_puts += 1
        shard.acked += 1
        if request.completion_ns > self.last_completion_ns:
            self.last_completion_ns = request.completion_ns
        self.telemetry.record("request_latency_ns", latency)
        self.telemetry.record(
            f"shard{shard.shard_id}/request_latency_ns", latency
        )

    # -- failover -------------------------------------------------------------

    def _failover(
        self,
        shard: Shard,
        staged: Dict[int, bytes],
        unacked: List[Request],
    ) -> None:
        """Power died mid-batch: crash, recover, verify, requeue, hold."""
        system = shard.system
        shard.kills += 1
        self.telemetry.emit(
            self.now_ns,
            "shard_kill",
            "serve",
            {"shard": shard.shard_id, "staged_words": len(staged)},
        )
        system.crash()
        report = system.recover(threads=self.cfg.recovery_threads)
        failure = self.oracle.verify_shard(system, shard.shard_id, staged)
        if failure:
            self.oracle_failures.append(
                f"shard {shard.shard_id} after kill: {failure}"
            )
        elapsed = getattr(report, "elapsed_ns", 0.0) or 0.0
        recovery_ns = max(elapsed, self.cfg.recovery_floor_ns)
        shard.state = RECOVERING
        shard.recover_at_ns = self.now_ns + recovery_ns
        fitted = self.admission.requeue_front(unacked)
        self.retried += fitted
        self.shed_on_failover += len(unacked) - fitted
        self.telemetry.emit(
            self.now_ns,
            "shard_recovering",
            "serve",
            {
                "shard": shard.shard_id,
                "recovery_ns": recovery_ns,
                "requeued": fitted,
            },
        )
        self._push(shard.recover_at_ns, _WAKE, shard.shard_id)

    def _complete_recovery(self, shard: Shard) -> None:
        """Recovery horizon reached: shard serves again (cold caches)."""
        shard.state = UP
        cores = len(shard.system.clocks)
        shard.system.clocks = [shard.recover_at_ns] * cores
        shard.recoveries += 1
        self.telemetry.emit(
            shard.recover_at_ns,
            "shard_recovered",
            "serve",
            {"shard": shard.shard_id},
        )

    # -- end-of-run verification ----------------------------------------------

    def _final_verify(self) -> None:
        """Crash+recover every shard once more; all promises must hold."""
        for shard_id, shard in sorted(self.shards.items()):
            shard.system.crash()
            shard.system.recover(threads=self.cfg.recovery_threads)
            failure = self.oracle.verify_shard(shard.system, shard_id)
            if failure:
                self.oracle_failures.append(
                    f"shard {shard_id} final sweep: {failure}"
                )
