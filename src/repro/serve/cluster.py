"""The sharded serving cluster: coordinator over shard executors.

One :class:`ServeCluster` owns N replication groups (each a
:class:`~repro.serve.replica.ReplicationGroup`: one primary plus R
backups, every replica a full :class:`~repro.txn.system.MemorySystem`
running the configured persistence scheme on a fault-injectable NVM
device), the consistent-hash router, open-loop clients, and — per
shard — a :class:`~repro.serve.shard.ShardExecutor` bundling the
shard's admission queue, batch policy, acked-write oracle slice, and
failover state machines.  Everything runs in *simulated* time and a
run is a pure function of the config and seed.

PR 9 split the old single event loop into coordinator + shard-local
stepping.  The cluster no longer pops individual events; it drives
lock-step *epochs* (:func:`repro.serve.engine.drive`): each round it
computes the next global event horizon — the min over every shard's
next-event clock and the next client arrival — routes the arrivals due
by that horizon (in the canonical ``(arrival_ns, client_id)`` order of
:class:`~repro.serve.client.ArrivalStream`), and advances every shard
executor to the horizon.  Because shards share nothing and each
shard's internal event order is a total order independent of epoch
boundaries, the outcome is bit-identical whether the executors advance
in-process (``workers=0``) or on a pool of worker processes
(``--workers W`` — see :mod:`repro.serve.engine`).

Failover semantics (armed deadline power cuts, crash/recover/verify,
lease-expiry promotion, rejoin catch-up, divergence fingerprints) are
unchanged from PR 8 and live in :class:`~repro.serve.shard.ShardExecutor`;
the legacy ``UP``/``RECOVERING`` names remain part of the telemetry
and report vocabulary.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.serve.replica import (
    GROUP_RECOVERING,
    GROUP_UP,
    ReplicationGroup,
)
from repro.serve.router import ConsistentHashRouter
from repro.serve.shard import ShardExecutor
from repro.telemetry.hub import Telemetry

# Legacy shard lifecycle names (PR 7); group states superseded them but
# the strings are part of the telemetry/report vocabulary.
UP = GROUP_UP
RECOVERING = GROUP_RECOVERING


class ServeCluster:
    """N shard executors behind a router, advanced in lock-step epochs."""

    def __init__(self, cfg, *, telemetry=None) -> None:
        self.cfg = cfg
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        shard_ids = list(range(cfg.shards))
        self.router = ConsistentHashRouter(shard_ids, seed=cfg.seed)
        partition = self.router.partition(cfg.keyspace)
        self.executors: Dict[int, ShardExecutor] = {
            shard_id: ShardExecutor(
                cfg,
                ReplicationGroup(
                    shard_id,
                    scheme=cfg.scheme,
                    keys=partition[shard_id],
                    value_bytes=cfg.value_bytes,
                    seed=cfg.seed,
                    telemetry=self.telemetry,
                    replicas=cfg.replicas,
                    recovery_threads=cfg.recovery_threads,
                    lease_ns=cfg.lease_us * 1e3,
                    apply_every=cfg.apply_every,
                ),
                telemetry=self.telemetry,
            )
            for shard_id in shard_ids
        }
        self.epochs = 0

    # -- structure ------------------------------------------------------------

    @property
    def groups(self) -> Dict[int, ReplicationGroup]:
        """The replication groups by shard id (through the executors)."""
        return {
            shard_id: executor.group
            for shard_id, executor in self.executors.items()
        }

    def sorted_executors(self) -> List[ShardExecutor]:
        """Executors in shard-id order — the canonical merge order."""
        return [self.executors[sid] for sid in sorted(self.executors)]

    # -- the run --------------------------------------------------------------

    def run(self, engine=None) -> None:
        """Drive the whole open-loop run to completion (queues drained).

        ``engine`` is an optional
        :class:`~repro.serve.engine.EngineConfig`; the default runs the
        executors in-process, ``workers > 0`` fans them out over a
        lock-step worker pool with a bit-identical result.
        """
        from repro.serve.engine import EngineConfig, drive

        drive(self, engine if engine is not None else EngineConfig())

    # -- aggregates (summed over executors in shard order) ---------------------

    def _sum(self, attribute: str) -> int:
        return sum(
            getattr(executor, attribute)
            for executor in self.sorted_executors()
        )

    @property
    def offered(self) -> int:
        """Requests offered across all shards."""
        return self._sum("offered")

    @property
    def admitted(self) -> int:
        """Requests admitted across all shards."""
        return self._sum("admitted")

    @property
    def acked_puts(self) -> int:
        """Acknowledged PUTs across all shards."""
        return self._sum("acked_puts")

    @property
    def acked_gets(self) -> int:
        """Acknowledged GETs across all shards."""
        return self._sum("acked_gets")

    @property
    def retried(self) -> int:
        """Requests requeued after a failed batch, across all shards."""
        return self._sum("retried")

    @property
    def shed_on_failover(self) -> int:
        """In-flight requests shed during failover, across all shards."""
        return self._sum("shed_on_failover")

    @property
    def batches(self) -> int:
        """Batches executed across all shards."""
        return self._sum("batches")

    @property
    def primary_kills(self) -> int:
        """Primary power cuts across all shards."""
        return self._sum("primary_kills")

    @property
    def backup_kills(self) -> int:
        """Backup power cuts across all shards."""
        return self._sum("backup_kills")

    @property
    def divergence_checks(self) -> int:
        """Divergence-oracle passes across all shards."""
        return self._sum("divergence_checks")

    @property
    def oracle_acked_puts(self) -> int:
        """Acked words recorded by the oracle, across all shards."""
        return sum(
            executor.oracle.acked_puts
            for executor in self.sorted_executors()
        )

    @property
    def oracle_verifications(self) -> int:
        """Oracle verification passes across all shards."""
        return sum(
            executor.oracle.verifications
            for executor in self.sorted_executors()
        )

    @property
    def oracle_failures(self) -> List[str]:
        """Every shard's oracle failures, concatenated in shard order."""
        failures: List[str] = []
        for executor in self.sorted_executors():
            failures.extend(executor.oracle_failures)
        return failures

    @property
    def last_completion_ns(self) -> float:
        """The latest acknowledgement instant across all shards."""
        executors = self.sorted_executors()
        if not executors:
            return 0.0
        return max(executor.last_completion_ns for executor in executors)

    @property
    def rejections(self) -> Dict[str, int]:
        """Admission rejections by kind, summed in shard order."""
        merged: Dict[str, int] = {}
        for executor in self.sorted_executors():
            for kind, count in executor.admission.rejections.items():
                merged[kind] = merged.get(kind, 0) + count
        return merged

    def queue_depth(self, shard_id: int) -> int:
        """One shard's current admission-queue depth."""
        return self.executors[shard_id].admission.depth(shard_id)
