"""Admission control: bounded per-shard queues with typed backpressure.

An open-loop arrival stream will, at any offered rate above a shard's
service capacity — or whenever a shard is down recovering — grow an
unbounded backlog unless something says no.  The admission controller
is that something: each shard gets a bounded FIFO, and a request that
cannot be queued is rejected with a *typed, retryable* error carrying a
``retry_after_ns`` hint, so a well-behaved client can back off instead
of hammering:

* :class:`QueueFullRejection` — the shard is up but its queue is at
  capacity (the shard is the bottleneck; retry after roughly one batch
  service time);
* :class:`ShardRecoveringRejection` — the shard is mid-recovery and
  its queue is full of traffic already waiting for it; the hint is the
  recovery ETA;
* :class:`FailoverRejection` — the shard's replication group is
  between a primary kill and the backup's promotion; the hint is the
  promotion ETA (the deposed primary's lease expiry).

A recovering shard's queue keeps *accepting* requests while it has
room: bounded queueing-through-failover is what turns a shard kill
into a latency blip instead of an error storm, and the acked-write
oracle still holds because nothing queued is acknowledged until its
batch commits after recovery.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from repro.common.errors import ReproError
from repro.serve.client import Request


class RetryableRejection(ReproError):
    """Base of all admission rejections: safe to retry after the hint."""

    kind = "retryable"

    def __init__(self, message: str, *, shard: int, retry_after_ns: float):
        super().__init__(message)
        self.shard = shard
        self.retry_after_ns = retry_after_ns


class QueueFullRejection(RetryableRejection):
    """The shard's bounded queue is at capacity (backpressure)."""

    kind = "queue_full"


class ShardRecoveringRejection(RetryableRejection):
    """The shard is recovering from a crash and its queue is full."""

    kind = "shard_recovering"


class FailoverRejection(RetryableRejection):
    """The shard's replication group is mid-failover and its queue is full.

    Distinct from :class:`ShardRecoveringRejection` because the hint is
    different in kind: a promotion completes at the deposed primary's
    lease expiry (microseconds, deterministic), not at a recovery
    horizon — clients should retry soon, against the same shard, and
    will land on the newly promoted primary.
    """

    kind = "failing_over"


class AdmissionController:
    """Bounded per-shard FIFOs and the accept/reject decision."""

    def __init__(self, shard_ids, *, queue_depth: int) -> None:
        if queue_depth <= 0:
            raise ValueError("queue depth must be positive")
        self.queue_depth = queue_depth
        self.queues: Dict[int, Deque[Request]] = {
            shard: deque() for shard in shard_ids
        }
        self.rejections: Dict[str, int] = {}

    def admit(
        self,
        request: Request,
        *,
        recovering: bool,
        retry_after_ns: float,
        failing_over: bool = False,
    ) -> None:
        """Queue ``request`` on its shard or raise a typed rejection.

        ``recovering`` / ``failing_over`` select the rejection type
        when the queue is full (``failing_over`` wins when both are
        set — a promotion in flight is the more specific state);
        ``retry_after_ns`` is the hint stamped on the rejection (batch
        service time for a healthy shard, recovery ETA for a
        recovering one, promotion ETA mid-failover).
        """
        queue = self.queues[request.shard]
        if len(queue) >= self.queue_depth:
            if failing_over:
                cls, reason = FailoverRejection, "failing over"
            elif recovering:
                cls, reason = ShardRecoveringRejection, "recovering"
            else:
                cls, reason = QueueFullRejection, "full"
            self.rejections[cls.kind] = self.rejections.get(cls.kind, 0) + 1
            raise cls(
                f"shard {request.shard} queue {reason} "
                f"({len(queue)}/{self.queue_depth})",
                shard=request.shard,
                retry_after_ns=retry_after_ns,
            )
        queue.append(request)

    def requeue_front(self, requests) -> int:
        """Put a failed batch back at the head, oldest first.

        Returns how many fit; the rest (queue refilled past capacity
        while the batch was in flight never happens — the batch freed
        the slots — but guard anyway) are dropped by the caller as
        shed.  Never raises: failover must not die on backpressure.
        """
        fitted = 0
        for request in reversed(list(requests)):
            queue = self.queues[request.shard]
            if len(queue) >= self.queue_depth:
                break
            request.retries += 1
            queue.appendleft(request)
            fitted += 1
        return fitted

    def depth(self, shard: int) -> int:
        """Current queue depth of one shard."""
        return len(self.queues[shard])


# -- snapshot/wire declarations -----------------------------------------------
# Queues of in-flight requests travel by value with their executor.
AdmissionController.__snapshot_state__ = "__all__"
