"""Replication groups: synchronous redo shipping, deterministic failover.

A single shard machine (PR 7) still stalls its keyspace while it
recovers from a crash.  This module turns each shard into a
**replication group** — one primary plus R backups, every replica a
full fault-injectable :class:`~repro.txn.system.MemorySystem` — so an
acknowledged write survives even the *destruction* of the machine that
acknowledged it.

The unit of replication is the word-granular redo record HOOP already
materializes at the memory controller: the ``(home address, value)``
write set of one batch transaction (see
:meth:`repro.txn.system.MemorySystem.run_batch` and its
``redo_words``).  A batch commit on the primary synchronously ships
that record to every live backup *before* the acknowledgement:

* the **primary** folds the encoded record into the batch transaction
  itself (data stores + log entry + log header, one failure-atomic
  commit — the redo stream is materialized atomically with the data,
  exactly the paper's out-of-place commit unit);
* each **backup** appends the record to its own durable *replication
  log* as one failure-atomic transaction on its own machine, and
  applies the logged values to its home-region slots lazily (every
  ``apply_every`` batches) — the acked-visible state (the log) is
  decoupled from the in-place home region, the same split the
  out-of-place schemes make at machine scope;
* the acknowledgement instant is the **max** over the primary commit
  and every live backup's ship commit — synchronous replication by
  construction.

Failover is lease/epoch based and entirely deterministic in simulated
time: a primary kill starts a promotion at the old primary's lease
expiry; the freshest live backup (highest durably shipped sequence,
ties to the lowest replica index) replays its shipped-but-unapplied
tail, bumps the group epoch durably in its log header, reconciles any
backup that missed the final records, and serves.  The old primary
rejoins by catch-up: a full image copy from the new primary's durable
projection, then delta re-ships until its clock rejoins the present.
The replica lifecycle (``LEASED`` → ``PROMOTING`` → ``SERVING``-as-
``LEASED`` → ``REJOINING``) is documented for operators in
``docs/serving.md``.

Determinism contract: every method advances only the clocks of the
machines it touches, draws no randomness of its own (fault seeds are
derived per replica via :func:`repro.common.rng.derive`), and is a
pure function of the group's configuration and call sequence — a
replicated serve run replays bit-identically, like everything else in
the simulator.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common import rng as rng_util
from repro.common.config import FaultConfig, SystemConfig
from repro.common.errors import PowerLossError, ReproError
from repro.snapshot import clone_state
from repro.telemetry.hub import Telemetry
from repro.txn.system import MemorySystem

_WORD = 8
# Log header: one cache line of five u64 words
# [magic, epoch, shipped_seq, applied_seq, write_off].
_HEADER_BYTES = 64
_MAGIC = 0x52504C4F47763101  # "RPLOGv1" + 0x01
# Entry framing: [seq, epoch, nstores] then per store [addr, nbytes].
_ENTRY_FIXED = 3 * _WORD
_STORE_FIXED = 2 * _WORD

# Replica lifecycle states (the failover state machine of
# docs/serving.md; SERVING is the steady half of LEASED).
LEASED = "leased"          # primary: holds the serving lease
BACKUP = "backup"          # live backup: receives synchronous ships
PROMOTING = "promoting"    # chosen backup replaying its shipped tail
REJOINING = "rejoining"    # recovered machine catching up
DEAD = "dead"              # killed; recovery hold not yet elapsed

# Group-level states.
GROUP_UP = "up"
GROUP_FAILING_OVER = "failing_over"
GROUP_RECOVERING = "recovering"

# Chunk size (stores per transaction) for the rejoin image copy: big
# enough to amortize commit cost, small enough to bound one tx.
_CATCHUP_CHUNK = 64


class StaleEpochError(ReproError):
    """A ship from a fenced-out epoch reached a replica.

    Epoch fencing: a replica never accepts a redo record stamped with
    an epoch older than the one durably recorded in its log header.
    The deterministic event loop never produces this by itself — the
    guard exists so any future scheduling bug fails loudly instead of
    silently un-fencing a deposed primary.
    """


def encode_entry(seq: int, epoch: int, stores: Sequence[Tuple[int, bytes]]) -> bytes:
    """Serialize one redo record as a word-aligned log entry.

    Layout: ``[seq, epoch, nstores]`` then per store ``[addr, nbytes]``
    followed by the value bytes.  Every field is a little-endian u64
    and every value a multiple of 8 bytes (the serve config enforces
    word-aligned slots), so an entry always lands on word boundaries —
    which is what lets the acked-write oracle treat a torn ship as
    ordinary word-granular staged state.  Pure function; no clocks.
    """
    parts = [
        seq.to_bytes(_WORD, "little"),
        epoch.to_bytes(_WORD, "little"),
        len(stores).to_bytes(_WORD, "little"),
    ]
    for addr, value in stores:
        if addr % _WORD or len(value) % _WORD:
            raise ValueError("redo records must be word-aligned")
        parts.append(addr.to_bytes(_WORD, "little"))
        parts.append(len(value).to_bytes(_WORD, "little"))
        parts.append(value)
    return b"".join(parts)


def decode_entries(buf: bytes) -> List[Tuple[int, int, List[Tuple[int, bytes]]]]:
    """Walk a byte range of consecutive entries back into redo records.

    Inverse of :func:`encode_entry` over a concatenation; returns
    ``[(seq, epoch, [(addr, value), ...]), ...]`` in log order.  The
    caller passes exactly ``entries_base .. write_off`` from a durable
    header, so framing is trusted (every entry was written by one
    failure-atomic transaction).  Pure function; no clocks.
    """
    out: List[Tuple[int, int, List[Tuple[int, bytes]]]] = []
    off = 0
    end = len(buf)
    while off + _ENTRY_FIXED <= end:
        seq = int.from_bytes(buf[off : off + _WORD], "little")
        epoch = int.from_bytes(buf[off + _WORD : off + 2 * _WORD], "little")
        nstores = int.from_bytes(
            buf[off + 2 * _WORD : off + 3 * _WORD], "little"
        )
        off += _ENTRY_FIXED
        stores: List[Tuple[int, bytes]] = []
        for _ in range(nstores):
            addr = int.from_bytes(buf[off : off + _WORD], "little")
            nbytes = int.from_bytes(buf[off + _WORD : off + 2 * _WORD], "little")
            off += _STORE_FIXED
            stores.append((addr, buf[off : off + nbytes]))
            off += nbytes
        out.append((seq, epoch, stores))
    return out


def keyspace_fingerprint(system, slot_addrs: Sequence[int], value_bytes: int) -> str:
    """SHA-256 over the durable bytes of every key slot, in key order.

    The divergence oracle's unit of comparison: two replicas whose
    keyspace slots are byte-identical fingerprint equally regardless of
    how their logs, scheme metadata, or wear differ.  Read via raw
    device peeks, so call it on a *durable projection* (post
    crash+recover clone), never on a live machine whose latest commits
    may still sit out-of-place.  Deterministic; advances no clocks.
    """
    digest = hashlib.sha256()
    peek = system.device.peek
    for addr in slot_addrs:
        digest.update(peek(addr, value_bytes))
    return digest.hexdigest()


class Replica:
    """One member of a replication group: a machine plus its redo log.

    Replica 0 of a group boots as the primary (state :data:`LEASED`);
    the rest boot as :data:`BACKUP`.  With ``log_bytes == 0`` (an
    unreplicated R=0 group) no log region is allocated and the replica
    is bit-identical to the PR 7 single-machine shard, fault seed
    included.  All mutating methods advance only this machine's core-0
    clock; the volatile sequence mirrors (``shipped_seq`` etc.) are
    updated strictly *after* the backing transaction commits, so a
    power cut mid-commit leaves them truthful.
    """

    def __init__(
        self,
        shard_id: int,
        index: int,
        *,
        scheme: str,
        keys: Sequence[int],
        value_bytes: int,
        seed: int,
        telemetry: Telemetry,
        log_bytes: int,
        recovery_threads: int,
    ) -> None:
        if index == 0:
            # Replica 0 keeps the PR 7 shard derivation so R=0 groups
            # are bit-identical to the unreplicated serving layer.
            fault_seed = rng_util.derive(seed, "shard", shard_id, "faults")
        else:
            fault_seed = rng_util.derive(
                seed, "shard", shard_id, "replica", index, "faults"
            )
        config = SystemConfig.small().replace(
            faults=FaultConfig(enabled=True, seed=fault_seed)
        )
        self.system = MemorySystem(config, scheme=scheme, telemetry=telemetry)
        self.shard_id = shard_id
        self.index = index
        self.value_bytes = value_bytes
        self.recovery_threads = recovery_threads
        self._slot = {key: i for i, key in enumerate(keys)}
        self.base = self.system.allocate(max(1, len(keys)) * value_bytes)
        self.slot_addrs = [
            self.base + i * value_bytes for i in range(len(self._slot))
        ]
        if log_bytes:
            self.log_base: Optional[int] = self.system.allocate(log_bytes)
            self.entries_base = self.log_base + _HEADER_BYTES
            self.log_limit = self.log_base + log_bytes
        else:
            self.log_base = None
            self.entries_base = 0
            self.log_limit = 0
        self.state = LEASED if index == 0 else BACKUP
        # Volatile mirrors of the durable log header (authoritative
        # copy lives in NVM; these track it transaction by transaction).
        self.epoch = 1
        self.shipped_seq = 0
        self.applied_seq = 0
        self.write_off = self.entries_base
        # Shipped-but-unapplied records, and the full in-log history
        # since the last compaction (the delta catch-up source).
        self.tail: List[Tuple[int, List[Tuple[int, bytes]]]] = []
        self.entries: List[Tuple[int, int, List[Tuple[int, bytes]]]] = []
        self.recover_at_ns = 0.0
        self.kills = 0
        self.recoveries = 0
        self.acked = 0

    def addr_of(self, key: int) -> int:
        """Home-region address of one key's value slot."""
        return self.base + self._slot[key] * self.value_bytes

    @property
    def clock_ns(self) -> float:
        """This machine's service clock (core 0 does all the work)."""
        return self.system.clocks[0]

    @property
    def live(self) -> bool:
        """Is this replica serving or shippable (not dead/rejoining)?"""
        return self.state in (LEASED, BACKUP, PROMOTING)

    # -- log plumbing ----------------------------------------------------------

    def _header_bytes(
        self,
        *,
        epoch: Optional[int] = None,
        shipped: Optional[int] = None,
        applied: Optional[int] = None,
        write_off: Optional[int] = None,
    ) -> bytes:
        words = (
            _MAGIC,
            self.epoch if epoch is None else epoch,
            self.shipped_seq if shipped is None else shipped,
            self.applied_seq if applied is None else applied,
            self.write_off if write_off is None else write_off,
        )
        raw = b"".join(w.to_bytes(_WORD, "little") for w in words)
        return raw + bytes(_HEADER_BYTES - len(raw))

    def _needs_compaction(self, entry_len: int) -> bool:
        return self.write_off + entry_len > self.log_limit

    def stage_local_entry(
        self, seq: int, epoch: int, stores: Sequence[Tuple[int, bytes]]
    ) -> Tuple[List[Tuple[int, bytes]], Callable[[], None]]:
        """Primary-side append: extra stores to fold into the data batch.

        Returns ``(log_stores, commit)``: the encoded entry + header
        writes to run *inside* the same batch transaction as the data
        (redo materialized atomically with commit), and a ``commit``
        callback the caller invokes only after that transaction
        returns — a power cut mid-batch leaves the volatile mirrors
        untouched, matching whatever the durable log resolved to.
        The primary applies data directly, so its ``applied_seq``
        always equals its ``shipped_seq``.
        """
        entry = encode_entry(seq, epoch, stores)
        at = self.write_off
        if self._needs_compaction(len(entry)):
            # The primary's tail is always empty; compaction is just a
            # wrap of the write offset, folded into this same commit.
            at = self.entries_base
        header = self._header_bytes(
            epoch=epoch, shipped=seq, applied=seq, write_off=at + len(entry)
        )
        log_stores = [(at, entry), (self.log_base, header)]
        record = (seq, epoch, [(a, bytes(v)) for a, v in stores])

        def commit() -> None:
            if at == self.entries_base and self.write_off != self.entries_base:
                self.entries = []  # compacted: prior history is gone
            self.epoch = epoch
            self.shipped_seq = seq
            self.applied_seq = seq
            self.write_off = at + len(entry)
            self.entries.append(record)

        return log_stores, commit

    def receive_ship(
        self,
        seq: int,
        epoch: int,
        stores: Sequence[Tuple[int, bytes]],
        start_ns: float,
    ) -> float:
        """Backup-side append: durably log one shipped redo record.

        Runs one failure-atomic transaction (entry + header) on this
        machine starting no earlier than ``start_ns`` (the primary's
        commit instant — redo exists only after commit) and returns the
        ship's commit time, which joins the ack max.  The record lands
        in the volatile ``tail`` for a later :meth:`apply_tail`.
        Raises :class:`StaleEpochError` for a fenced-out epoch and
        propagates :class:`~repro.common.errors.PowerLossError` if this
        backup dies mid-ship (the entry is then all-or-nothing, like
        any transaction).
        """
        if epoch < self.epoch:
            raise StaleEpochError(
                f"replica {self.shard_id}/{self.index} at epoch "
                f"{self.epoch} refused ship from epoch {epoch}"
            )
        if self._needs_compaction(
            _ENTRY_FIXED
            + sum(_STORE_FIXED + len(v) for _, v in stores)
        ):
            self.apply_tail(start_ns, reset=True)
            start_ns = max(start_ns, self.clock_ns)
        entry = encode_entry(seq, epoch, stores)
        at = self.write_off
        header = self._header_bytes(
            epoch=epoch, shipped=seq, write_off=at + len(entry)
        )
        self.system.clocks[0] = max(start_ns, self.clock_ns)
        self.system.run_batch([(at, entry), (self.log_base, header)], core=0)
        self.epoch = epoch
        self.shipped_seq = seq
        self.write_off = at + len(entry)
        record = [(a, bytes(v)) for a, v in stores]
        self.tail.append((seq, record))
        self.entries.append((seq, epoch, record))
        return self.clock_ns

    def apply_tail(
        self,
        start_ns: float,
        *,
        epoch: Optional[int] = None,
        reset: bool = False,
    ) -> float:
        """Replay shipped-but-unapplied records into the home region.

        One failure-atomic transaction writes every tail record's words
        to their home slots and advances ``applied_seq`` to
        ``shipped_seq`` in the header — so a crash mid-apply leaves
        either the old tail (to be replayed again, idempotently) or the
        new applied horizon, never a half-applied mix.  ``epoch`` bumps
        the durable epoch in the same commit (promotion), ``reset``
        additionally wraps the write offset (compaction, discarding the
        volatile entry history).  Returns this machine's clock after
        the commit; a no-op tail without an epoch bump costs nothing.
        """
        if epoch is None and not self.tail and not reset:
            return self.clock_ns
        stores: List[Tuple[int, bytes]] = []
        for _, record in self.tail:
            stores.extend(record)
        write_off = self.entries_base if reset else None
        header = self._header_bytes(
            epoch=epoch, applied=self.shipped_seq, write_off=write_off
        )
        stores.append((self.log_base, header))
        self.system.clocks[0] = max(start_ns, self.clock_ns)
        self.system.run_batch(stores, core=0)
        if epoch is not None:
            self.epoch = epoch
        self.applied_seq = self.shipped_seq
        self.tail = []
        if reset:
            self.write_off = self.entries_base
            self.entries = []
        return self.clock_ns

    def entries_since(
        self, seq: int
    ) -> Optional[List[Tuple[int, int, List[Tuple[int, bytes]]]]]:
        """Redo records with sequence above ``seq``, or None on a gap.

        The delta catch-up source: ``None`` means compaction discarded
        a needed record and the caller must fall back to a full image
        copy.  Pure accessor; no clocks.
        """
        if seq >= self.shipped_seq:
            return []
        delta = [e for e in self.entries if e[0] > seq]
        expected = self.shipped_seq - seq
        if len(delta) != expected:
            return None
        return delta

    def reset_log(self, *, epoch: int, seq: int, start_ns: float) -> float:
        """Durably restamp the log after a full-image catch-up.

        One header transaction records the caught-up horizon: new
        epoch, ``shipped == applied == seq`` (the image already
        contains everything up to ``seq``), empty entry area.  Clears
        the volatile tail/history mirrors to match.  Returns the clock
        after the commit.
        """
        self.epoch = epoch
        self.shipped_seq = seq
        self.applied_seq = seq
        self.write_off = self.entries_base
        self.tail = []
        self.entries = []
        header = self._header_bytes()
        self.system.clocks[0] = max(start_ns, self.clock_ns)
        self.system.run_batch([(self.log_base, header)], core=0)
        return self.clock_ns

    def refresh_from_durable_log(self) -> None:
        """Rebuild the volatile mirrors from the durable log after a crash.

        Reads the recovered header and entry area via raw peeks (the
        recovery hold already charges the simulated cost of a log scan)
        and reconstructs ``tail`` as every logged record above the
        durable applied horizon — exactly what a promoted or resuming
        replica must replay.  A virgin header (no magic) resets to the
        empty-log state.  No-op for unreplicated replicas.
        """
        if self.log_base is None:
            return
        peek = self.system.device.peek
        raw = peek(self.log_base, _HEADER_BYTES)
        magic = int.from_bytes(raw[:_WORD], "little")
        if magic != _MAGIC:
            self.epoch = max(self.epoch, 1)
            self.shipped_seq = 0
            self.applied_seq = 0
            self.write_off = self.entries_base
            self.tail = []
            self.entries = []
            return
        self.epoch = int.from_bytes(raw[_WORD : 2 * _WORD], "little")
        self.shipped_seq = int.from_bytes(raw[2 * _WORD : 3 * _WORD], "little")
        self.applied_seq = int.from_bytes(raw[3 * _WORD : 4 * _WORD], "little")
        self.write_off = int.from_bytes(raw[4 * _WORD : 5 * _WORD], "little")
        span = (
            peek(self.entries_base, self.write_off - self.entries_base)
            if self.write_off > self.entries_base
            else b""
        )
        self.entries = decode_entries(span)
        self.tail = [
            (seq, record)
            for seq, _, record in self.entries
            if seq > self.applied_seq
        ]

    def durable_projection(self):
        """What this replica would serve after a crash, non-destructively.

        Clones the whole machine (copy-on-write snapshot engine),
        crashes and recovers the *clone*, replays the clone's durable
        shipped-but-unapplied tail through a real transaction, then
        crashes and recovers once more so the replayed words are
        in-place durable — a simulated promotion on a throwaway copy.
        The live machine is untouched: clocks, caches, and fault state
        all stay exactly as they were, preserving bit-identical
        replays.  Returns the projected clone for peeking.
        """
        clone = clone_state(self.system)
        clone.crash()
        clone.recover(threads=self.recovery_threads)
        if self.log_base is not None:
            peek = clone.device.peek
            raw = peek(self.log_base, _HEADER_BYTES)
            if int.from_bytes(raw[:_WORD], "little") == _MAGIC:
                applied = int.from_bytes(raw[3 * _WORD : 4 * _WORD], "little")
                write_off = int.from_bytes(
                    raw[4 * _WORD : 5 * _WORD], "little"
                )
                span = (
                    peek(self.entries_base, write_off - self.entries_base)
                    if write_off > self.entries_base
                    else b""
                )
                stores: List[Tuple[int, bytes]] = []
                for seq, _, record in decode_entries(span):
                    if seq > applied:
                        stores.extend(record)
                if stores:
                    clone.run_batch(stores, core=0)
                    clone.crash()
                    clone.recover(threads=self.recovery_threads)
        return clone

    def fingerprint(self) -> str:
        """Durable keyspace fingerprint of this replica's projection."""
        return keyspace_fingerprint(
            self.durable_projection(), self.slot_addrs, self.value_bytes
        )


class ShipOutcome:
    """What one replicated batch commit produced.

    ``tx`` is the primary's closed batch transaction (None for an
    all-GET batch), ``ack_ns`` the acknowledgement instant (max of the
    primary commit and every live backup's ship commit), and
    ``dead_backups`` the replicas whose ship transaction died to an
    injected power cut — the cluster drives their crash/recover/rejoin.
    """

    __slots__ = ("tx", "ack_ns", "dead_backups")

    def __init__(self, tx, ack_ns: float, dead_backups: List[Replica]):
        self.tx = tx
        self.ack_ns = ack_ns
        self.dead_backups = dead_backups


class ReplicationGroup:
    """One shard's replica set: primary, backups, epoch, and lease.

    Owns the deterministic failover protocol; the cluster event loop
    calls in at batch execution, promotion wakes, and rejoin wakes.
    With ``replicas == 0`` the group degenerates to the PR 7
    single-machine shard (no log region, no shipping, identical fault
    seeds and clocks).  All simulated-time decisions (lease expiry,
    promotion instant, catch-up convergence) are pure functions of the
    config, the seed, and the call sequence.
    """

    def __init__(
        self,
        shard_id: int,
        *,
        scheme: str,
        keys: Sequence[int],
        value_bytes: int,
        seed: int,
        telemetry: Telemetry,
        replicas: int = 0,
        log_bytes: int = 1 << 20,
        recovery_threads: int = 2,
        lease_ns: float = 250_000.0,
        apply_every: int = 4,
    ) -> None:
        self.shard_id = shard_id
        self.telemetry = telemetry
        self.apply_every = apply_every
        self.lease_ns = lease_ns
        log = log_bytes if replicas > 0 else 0
        self.replicas: List[Replica] = [
            Replica(
                shard_id,
                index,
                scheme=scheme,
                keys=keys,
                value_bytes=value_bytes,
                seed=seed,
                telemetry=telemetry,
                log_bytes=log,
                recovery_threads=recovery_threads,
            )
            for index in range(1 + replicas)
        ]
        self.primary_index = 0
        self.state = GROUP_UP
        self.epoch = 1
        self.next_seq = 1
        self.lease_expiry_ns = lease_ns
        self.promote_at_ns = 0.0
        self.promotions = 0
        self.rejoins = 0
        self.reconciled_records = 0

    # -- accessors -------------------------------------------------------------

    @property
    def primary(self) -> Replica:
        """The replica currently holding the serving lease."""
        return self.replicas[self.primary_index]

    @property
    def replication_enabled(self) -> bool:
        """Does this group ship redo records (R >= 1)?"""
        return len(self.replicas) > 1

    def backups(self) -> List[Replica]:
        """Every non-primary replica, in replica-index order."""
        return [
            r for r in self.replicas if r.index != self.primary_index
        ]

    def live_backups(self) -> List[Replica]:
        """Backups currently shippable (state :data:`BACKUP`)."""
        return [r for r in self.backups() if r.state == BACKUP]

    @property
    def kills(self) -> int:
        """Total injected kills across every replica of the group."""
        return sum(r.kills for r in self.replicas)

    @property
    def recoveries(self) -> int:
        """Total completed recoveries across every replica."""
        return sum(r.recoveries for r in self.replicas)

    @property
    def acked(self) -> int:
        """Requests acknowledged by this group (any primary)."""
        return sum(r.acked for r in self.replicas)

    def replication_lag(self) -> int:
        """Records shipped but not yet applied by the laggiest live backup."""
        live = self.live_backups()
        if not live:
            return 0
        return max(
            self.primary.shipped_seq - r.applied_seq for r in live
        )

    # -- the replicated commit path --------------------------------------------

    def commit_and_ship(
        self, stores: Sequence[Tuple[int, bytes]], core: int = 0
    ) -> ShipOutcome:
        """Commit one batch on the primary and ship its redo records.

        The primary's transaction carries the data stores plus the
        encoded redo entry and header (one atomic commit); each live
        backup then appends the record starting at the primary's commit
        instant (ships run in parallel across backups in simulated
        time).  The primary's clock is advanced to the ack instant —
        synchronous replication stalls the next batch until every live
        backup is durable.  A backup that dies mid-ship is returned in
        ``dead_backups`` (its entry all-or-nothing); a primary power
        cut propagates as :class:`~repro.common.errors.PowerLossError`
        with ``issued_stores`` annotated by ``run_batch``.  Backups
        whose tail reached ``apply_every`` apply it off the ack path.
        """
        primary = self.primary
        system = primary.system
        if not stores:
            return ShipOutcome(None, system.clocks[core], [])
        if not self.replication_enabled:
            tx = system.run_batch(stores, core=core)
            self.lease_expiry_ns = tx.end_ns + self.lease_ns
            return ShipOutcome(tx, tx.end_ns, [])
        seq = self.next_seq
        log_stores, commit = primary.stage_local_entry(seq, self.epoch, stores)
        tx = system.run_batch(list(stores) + log_stores, core=core)
        commit()
        self.next_seq = seq + 1
        commit_end = tx.end_ns
        ack_ns = commit_end
        dead: List[Replica] = []
        for replica in self.live_backups():
            try:
                end = replica.receive_ship(seq, self.epoch, stores, commit_end)
                ack_ns = max(ack_ns, end)
                if len(replica.tail) >= self.apply_every:
                    replica.apply_tail(replica.clock_ns)
            except PowerLossError:
                dead.append(replica)
        system.clocks[core] = ack_ns
        self.lease_expiry_ns = ack_ns + self.lease_ns
        return ShipOutcome(tx, ack_ns, dead)

    # -- failover --------------------------------------------------------------

    def begin_replica_recovery(
        self, replica: Replica, now_ns: float, *, floor_ns: float
    ) -> float:
        """Crash+recover a killed replica; start its recovery hold.

        Runs the machine's real crash/recovery path immediately (the
        scheme replays its own logs), marks the replica :data:`DEAD`,
        and returns the simulated instant its hold expires — the
        recovery report's elapsed time floored at ``floor_ns``, after
        which the cluster drives the rejoin (or, for an unreplicated
        group, resumes serving).
        """
        replica.kills += 1
        system = replica.system
        system.crash()
        report = system.recover(threads=replica.recovery_threads)
        elapsed = getattr(report, "elapsed_ns", 0.0) or 0.0
        replica.state = DEAD
        replica.recover_at_ns = now_ns + max(elapsed, floor_ns)
        return replica.recover_at_ns

    def choose_successor(self) -> Optional[Replica]:
        """The freshest live backup: highest shipped seq, lowest index.

        Deterministic promotion rule; ``None`` when no backup is live
        (the group must fall back to recovering its dead primary).
        """
        live = self.live_backups()
        if not live:
            return None
        return max(live, key=lambda r: (r.shipped_seq, -r.index))

    def promote(self, now_ns: float) -> Replica:
        """Promote the freshest live backup to primary at a new epoch.

        The successor replays its shipped-but-unapplied tail and bumps
        the epoch durably in the same commit (:data:`PROMOTING`), then
        every other live backup is reconciled — records the successor
        holds that they missed are re-shipped from its log (delta), or
        by a full image copy if compaction discarded them.  The group
        resumes :data:`GROUP_UP` with the successor :data:`LEASED`.
        Raises if no live backup exists; the caller checks
        :meth:`choose_successor` first.
        """
        successor = self.choose_successor()
        if successor is None:
            raise ReproError(
                f"group {self.shard_id}: promotion with no live backup"
            )
        self.epoch += 1
        successor.state = PROMOTING
        successor.apply_tail(max(now_ns, successor.clock_ns), epoch=self.epoch)
        for other in self.live_backups():
            delta = successor.entries_since(other.shipped_seq)
            if delta is None:
                self.catch_up(other, now_ns, source=successor)
                continue
            for seq, _, record in delta:
                try:
                    other.receive_ship(
                        seq, self.epoch, record, max(now_ns, other.clock_ns)
                    )
                    self.reconciled_records += 1
                except PowerLossError:
                    # An armed cut on this backup fires during the
                    # reconcile ship; the cluster sweeps dead backups
                    # right after promotion.
                    break
        self.primary_index = successor.index
        successor.state = LEASED
        self.state = GROUP_UP
        self.promotions += 1
        self.next_seq = successor.shipped_seq + 1
        self.lease_expiry_ns = (
            max(now_ns, successor.clock_ns) + self.lease_ns
        )
        return successor

    def resume_solo(self, replica: Replica, now_ns: float) -> None:
        """Resume a recovered replica as primary with no failover target.

        The unreplicated path (and the degraded replicated path when
        every backup is dead too): the machine that crashed serves
        again itself at a bumped epoch, its volatile log mirrors
        refreshed from the durable log it just recovered.
        """
        replica.refresh_from_durable_log()
        if self.replication_enabled:
            self.epoch += 1
            replica.apply_tail(now_ns, epoch=self.epoch)
            self.next_seq = replica.shipped_seq + 1
        replica.state = LEASED
        self.primary_index = replica.index
        self.state = GROUP_UP
        self.lease_expiry_ns = max(now_ns, replica.clock_ns) + self.lease_ns

    # -- rejoin ----------------------------------------------------------------

    def catch_up(
        self,
        replica: Replica,
        now_ns: float,
        *,
        source: Optional[Replica] = None,
    ) -> float:
        """Full-image catch-up of a rejoining replica from the primary.

        Copies the primary's durable projection of every key slot into
        the rejoiner in chunked failure-atomic transactions (the
        fuzzy-snapshot transfer runs off the primary's critical path —
        only the rejoiner's clock advances), then durably restamps the
        rejoiner's log at the image horizon.  Returns the rejoiner's
        clock after the copy; :meth:`try_go_live` then closes the gap
        for records shipped since the image was taken.
        """
        src = source if source is not None else self.primary
        image_seq = src.shipped_seq
        projection = src.durable_projection()
        peek = projection.device.peek
        replica.system.clocks[0] = max(now_ns, replica.clock_ns)
        chunk: List[Tuple[int, bytes]] = []
        for addr in replica.slot_addrs:
            chunk.append((addr, peek(addr, replica.value_bytes)))
            if len(chunk) >= _CATCHUP_CHUNK:
                replica.system.run_batch(chunk, core=0)
                chunk = []
        if chunk:
            replica.system.run_batch(chunk, core=0)
        return replica.reset_log(
            epoch=self.epoch, seq=image_seq, start_ns=replica.clock_ns
        )

    def try_go_live(self, replica: Replica, now_ns: float) -> Optional[float]:
        """Finish a rejoin: delta re-ship, then join the live set.

        Re-ships any records the primary accepted since the replica's
        horizon (``None`` gap falls back to another image copy).  When
        the replica is fully caught up *and* its clock has rejoined the
        present it becomes a live :data:`BACKUP` and the method returns
        None; otherwise it returns the simulated instant to try again
        (the replica's clock) — the cluster schedules a wake there.
        """
        delta = self.primary.entries_since(replica.shipped_seq)
        if delta is None:
            self.catch_up(replica, now_ns)
            return replica.clock_ns
        for seq, _, record in delta:
            replica.receive_ship(
                seq, self.epoch, record, max(now_ns, replica.clock_ns)
            )
        if replica.clock_ns > now_ns + 1e-9:
            return replica.clock_ns
        replica.state = BACKUP
        replica.recoveries += 1
        self.rejoins += 1
        return None

    # -- verification ----------------------------------------------------------

    def live_projections(self) -> Dict[int, object]:
        """One durable projection per live replica, by index.

        The projection (clone + crash + recover + tail replay, see
        :meth:`Replica.durable_projection`) is the expensive step of
        every verification pass, so callers compute this map *once*
        per pass and feed it to both :meth:`divergence_of` and the
        acked-write oracle — one scratch clone per replica instead of
        one per check.
        """
        return {
            r.index: r.durable_projection() for r in self.replicas if r.live
        }

    def live_fingerprints(self) -> Dict[int, str]:
        """Durable keyspace fingerprint of every live replica, by index."""
        return {
            r.index: r.fingerprint() for r in self.replicas if r.live
        }

    def divergence_of(self, projections: Dict[int, object]) -> Optional[str]:
        """Compare already-computed projections; None when identical.

        ``projections`` maps replica index to a durable projection (as
        from :meth:`live_projections`); fingerprints are taken over
        each replica's key slots, so the caller pays for the clones
        once per verification pass, not once per check.
        """
        prints: Dict[int, str] = {}
        for replica in self.replicas:
            projection = projections.get(replica.index)
            if projection is None:
                continue
            prints[replica.index] = keyspace_fingerprint(
                projection, replica.slot_addrs, replica.value_bytes
            )
        if len(set(prints.values())) <= 1:
            return None
        detail = ", ".join(
            f"replica {index}={fp[:12]}" for index, fp in sorted(prints.items())
        )
        return f"shard {self.shard_id} replicas diverged: {detail}"

    def divergence(self) -> Optional[str]:
        """Compare live replicas' durable keyspaces; None when identical.

        The divergence oracle: after every failover (and at the end of
        a run) all live replicas must project bit-identical keyspace
        content — acked or not, a replica chain that disagrees with
        itself is broken even if no promise was violated yet.
        """
        return self.divergence_of(self.live_projections())


# -- snapshot/wire declarations -----------------------------------------------
# A group (machines, logs, volatile mirrors, fault state) is deep state:
# everything travels by value when a group is wired between processes or
# cloned; only the telemetry hub is shared/substituted.
Replica.__snapshot_state__ = "__all__"
ReplicationGroup.__snapshot_state__ = "__all__"
ShipOutcome.__snapshot_state__ = "__all__"
