"""Open-loop clients: Poisson arrivals over simulated time.

The load generator is *open-loop*: request arrival instants are drawn
from a Poisson process (exponential inter-arrival gaps at the client's
share of the aggregate rate) independent of how fast the cluster is
serving — the standard model for internet-facing traffic, and the one
that actually exercises queueing, batching, and backpressure (a
closed-loop client would politely slow down exactly when the system
gets interesting).

Seed discipline: every client derives its own independent RNG streams
(arrivals, keys, ops, values) via :func:`repro.common.rng.derive` from
``(seed, "client", client_id, label)``.  No stream is shared between
clients, so the request timeline is a pure function of the config —
bit-identical no matter how runs are interleaved or parallelized, the
same discipline the harness result cache relies on.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.common import rng as rng_util
from repro.workloads.zipfian import ZipfianGenerator

OP_PUT = "put"
OP_GET = "get"


@dataclass(slots=True)
class Request:
    """One client request travelling through the serving layer.

    ``slots=True`` because requests are the hottest allocation in a
    serving run (one per arrival, plus queue/batch/ack traversals):
    dropping the per-instance ``__dict__`` cuts a request from ~216 to
    ~168 traced bytes (two allocations to one) and measurably trims
    allocator time at high offered rates (numbers in
    ``docs/internals.md``).
    """

    key: int
    op: str
    value: Optional[bytes]
    client: int
    seq: int
    arrival_ns: float
    # Stamped by the cluster as the request progresses.
    shard: int = -1
    retries: int = 0
    completion_ns: float = field(default=0.0)

    @property
    def latency_ns(self) -> float:
        """Arrival to acknowledgement (0 until acked)."""
        if self.completion_ns <= 0.0:
            return 0.0
        return self.completion_ns - self.arrival_ns


class OpenLoopClient:
    """One client: an iterator of requests with Poisson arrival times."""

    __slots__ = (
        "client_id",
        "rate_per_ns",
        "duration_ns",
        "value_bytes",
        "read_fraction",
        "_arrival_rng",
        "_op_rng",
        "_value_rng",
        "_keys",
        "_clock_ns",
        "_seq",
    )

    def __init__(
        self,
        client_id: int,
        *,
        rate_per_s: float,
        duration_ns: float,
        keyspace: int,
        value_bytes: int,
        read_fraction: float = 0.0,
        zipf_theta: float = 0.9,
        seed: int = 0,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("client rate must be positive")
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        self.client_id = client_id
        self.rate_per_ns = rate_per_s / 1e9
        self.duration_ns = duration_ns
        self.value_bytes = value_bytes
        self.read_fraction = read_fraction
        self._arrival_rng = rng_util.make_rng(
            rng_util.derive(seed, "client", client_id, "arrivals")
        )
        self._op_rng = rng_util.make_rng(
            rng_util.derive(seed, "client", client_id, "ops")
        )
        self._value_rng = rng_util.make_rng(
            rng_util.derive(seed, "client", client_id, "values")
        )
        self._keys = ZipfianGenerator(
            keyspace,
            theta=zipf_theta,
            rng=rng_util.make_rng(
                rng_util.derive(seed, "client", client_id, "keys")
            ),
        )
        self._clock_ns = 0.0
        self._seq = 0

    def next_request(self) -> Optional[Request]:
        """The client's next request, or None once the run is over."""
        self._clock_ns += self._arrival_rng.expovariate(self.rate_per_ns)
        if self._clock_ns > self.duration_ns:
            return None
        is_get = (
            self.read_fraction > 0.0
            and self._op_rng.random() < self.read_fraction
        )
        key = self._keys.next_scrambled()
        value = (
            None
            if is_get
            else rng_util.random_bytes(self._value_rng, self.value_bytes)
        )
        request = Request(
            key=key,
            op=OP_GET if is_get else OP_PUT,
            value=value,
            client=self.client_id,
            seq=self._seq,
            arrival_ns=self._clock_ns,
        )
        self._seq += 1
        return request

    def __iter__(self) -> Iterator[Request]:
        """Drain the client's whole timeline (mainly for tests)."""
        while True:
            request = self.next_request()
            if request is None:
                return
            yield request


class ArrivalStream:
    """Every client's requests merged into one canonical routed timeline.

    The stream defines the *global arrival order* — ``(arrival_ns,
    client_id)`` — and stamps each request's shard as it is popped, so
    both execution modes consume byte-identical per-shard request
    sequences: the sequential driver and the parallel engine each pull
    from one ArrivalStream on the coordinator and hand requests to
    shard executors in this order.  (Two clients never tie in practice
    — arrival instants are continuous exponentials — but the client-id
    tiebreak makes even that case deterministic.)
    """

    __slots__ = ("_clients", "_router", "_heap")

    def __init__(self, clients: Dict[int, "OpenLoopClient"], router) -> None:
        self._clients = clients
        self._router = router
        self._heap: List[tuple] = []
        for client_id, client in sorted(clients.items()):
            request = client.next_request()
            if request is not None:
                heapq.heappush(
                    self._heap, (request.arrival_ns, client_id, request)
                )

    def peek_ns(self) -> float:
        """The next arrival instant (``inf`` once every client is done)."""
        return self._heap[0][0] if self._heap else math.inf

    def take_until(self, horizon_ns: float) -> List[Request]:
        """Pop, route, and return every arrival at or before the horizon."""
        taken: List[Request] = []
        heap = self._heap
        while heap and heap[0][0] <= horizon_ns:
            _, client_id, request = heapq.heappop(heap)
            request.shard = self._router.shard_for(request.key)
            taken.append(request)
            nxt = self._clients[client_id].next_request()
            if nxt is not None:
                heapq.heappush(heap, (nxt.arrival_ns, client_id, nxt))
        return taken


def make_clients(
    count: int,
    *,
    aggregate_rate_per_s: float,
    duration_ns: float,
    keyspace: int,
    value_bytes: int,
    read_fraction: float,
    zipf_theta: float,
    seed: int,
) -> Dict[int, OpenLoopClient]:
    """Build ``count`` clients splitting the aggregate offered rate."""
    if count <= 0:
        raise ValueError("need at least one client")
    per_client = aggregate_rate_per_s / count
    return {
        client_id: OpenLoopClient(
            client_id,
            rate_per_s=per_client,
            duration_ns=duration_ns,
            keyspace=keyspace,
            value_bytes=value_bytes,
            read_fraction=read_fraction,
            zipf_theta=zipf_theta,
            seed=seed,
        )
        for client_id in range(count)
    }


# -- snapshot/wire declarations -----------------------------------------------
# Requests are scalar-only records (bytes values are immutable), clients
# are plain attribute bags with RNG streams the engine knows how to fork.
Request.__snapshot_state__ = "__atoms__"
OpenLoopClient.__snapshot_state__ = "__all__"
