"""Consistent-hash request router: key -> shard.

The serving layer fronts N independent shard machines; the router
decides which shard owns which key.  A consistent-hash ring (each shard
contributes ``vnodes`` seeded virtual points; a key maps to the first
point clockwise of its own hash) keeps two properties the cluster
relies on:

* **determinism** — the ring is built from :func:`stable_hash`
  (BLAKE2b), never Python's per-process-salted ``hash()``, so the same
  ``(shards, seed)`` pair routes every key identically in every
  process.  This is what lets the durability oracle recompute a key's
  owner after the fact, and what makes serve runs replay bit-identically
  under harness parallelism.
* **minimal movement** — growing the cluster from N to N+1 shards
  remaps only ~1/(N+1) of the keyspace (tested), the classic
  consistent-hashing contract that makes resharding a migration of one
  slice rather than a full reshuffle.

Routing never changes when a shard dies: the keys a shard owns are only
durable *on that shard*, so its traffic queues (or sheds with a typed
retryable rejection) until recovery brings it back — see
:mod:`repro.serve.admission`.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Sequence, Tuple


def stable_hash(*parts) -> int:
    """64-bit process-stable hash of a label path (BLAKE2b, not hash())."""
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(str(part).encode())
        h.update(b"/")
    return int.from_bytes(h.digest(), "little")


class ConsistentHashRouter:
    """Maps integer keys onto shard ids via a consistent-hash ring."""

    def __init__(
        self,
        shard_ids: Sequence[int],
        *,
        vnodes: int = 64,
        seed: int = 0,
    ) -> None:
        if not shard_ids:
            raise ValueError("router needs at least one shard")
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.shard_ids = list(shard_ids)
        self.vnodes = vnodes
        self.seed = seed
        points: List[Tuple[int, int]] = []
        for shard in self.shard_ids:
            for replica in range(vnodes):
                points.append(
                    (stable_hash(seed, "shard", shard, replica), shard)
                )
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_for(self, key: int) -> int:
        """The shard owning ``key`` (first ring point clockwise)."""
        point = stable_hash(self.seed, "key", key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def partition(self, keyspace: int) -> dict:
        """``{shard_id: sorted key list}`` for keys ``0..keyspace-1``.

        The cluster derives each shard's slot directory from this at
        setup; because it is a pure function of ``(shards, seed)``, the
        directory can always be recomputed after a crash — it is
        configuration, not volatile runtime state.
        """
        owned = {shard: [] for shard in self.shard_ids}
        for key in range(keyspace):
            owned[self.shard_for(key)].append(key)
        return owned


# -- snapshot/wire declarations -----------------------------------------------
# The ring is immutable after construction (pure function of config).
ConsistentHashRouter.__snapshot_state__ = "__shared__"
