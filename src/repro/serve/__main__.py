"""Run the sharded serving layer from the command line.

Usage::

    python -m repro.serve --shards 4 --rate 100000 --duration-ms 20
                          [--scheme hoop] [--clients 8]
                          [--replicas 1 [--kill-primary-at-ms 6]
                           [--kill-backup-at-ms 6]
                           [--double-kill-at-ms 12]]
                          [--kill-shard 1 [--kill-at-ms 8] [--torn]]
                          [--batch-size 8] [--batch-wait-us 50]
                          [--queue-depth 64] [--read-fraction 0.25]
                          [--value-bytes 64] [--keyspace 4096]
                          [--seed 7] [--out report.json]

The run is entirely simulated time and fully deterministic in its
arguments.  ``--kill-shard`` injects a power cut on one shard
mid-traffic and drives failover: crash, scheme recovery, oracle
verification of every acknowledged write, queue-through-recovery, and
resumption.  With ``--replicas R`` every shard becomes a replication
group (synchronous redo shipping to R backups before the ack);
``--kill-primary-at-ms`` then destroys the primary mid-batch and the
freshest backup promotes at the lease expiry, ``--kill-backup-at-ms``
kills a backup mid-ship (serving never stalls), and
``--double-kill-at-ms`` additionally destroys the *promoted* primary.
The exit code is nonzero if any acknowledged write was lost or any two
live replicas' durable keyspaces diverged — the things a serving layer
may never do.

``--workers W`` executes the same run on a pool of W worker processes
advancing the shards in lock-step epochs (see
:mod:`repro.serve.engine`); the report is bit-identical to
``--workers 0``, which CI diffs on every push.  ``--kill-worker-at
W:E`` is the recovery smoke: worker W dies hard at epoch E, is
respawned, and replays from its last checkpoint — again with an
identical report.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.serve import (
    SERVABLE_SCHEMES,
    EngineConfig,
    ServeConfig,
    run_serve,
)


def _parse_kill_worker(text: str):
    """Parse ``--kill-worker-at W:E`` into ``(worker, epoch)``."""
    try:
        worker, epoch = text.split(":")
        return (int(worker), int(epoch))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected WORKER:EPOCH (e.g. 1:3), got {text!r}"
        ) from exc


def _dump_profile(profiler, path: str) -> str:
    """Write the run's cProfile stats (top cumulative) to ``path``."""
    import io
    import pstats

    text = io.StringIO()
    stats = pstats.Stats(profiler, stream=text)
    stats.sort_stats("cumulative").print_stats(40)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text.getvalue())
    return path


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Sharded transactional KV serving over simulated NVM.",
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--scheme", default="hoop", choices=sorted(SERVABLE_SCHEMES)
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--rate", type=float, default=100_000.0,
        help="aggregate offered load, requests/s (default 100k)",
    )
    parser.add_argument(
        "--duration-ms", type=float, default=20.0,
        help="open-loop arrival window, simulated ms (default 20)",
    )
    parser.add_argument("--keyspace", type=int, default=4096)
    parser.add_argument("--value-bytes", type=int, default=64)
    parser.add_argument("--read-fraction", type=float, default=0.25)
    parser.add_argument("--zipf-theta", type=float, default=0.9)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--batch-wait-us", type=float, default=50.0)
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument(
        "--kill-shard", type=int, default=None,
        help="power-cut this shard mid-traffic and verify failover",
    )
    parser.add_argument(
        "--kill-at-ms", type=float, default=None,
        help="kill instant (default: 40%% of the duration)",
    )
    parser.add_argument(
        "--torn", action="store_true",
        help="make the killing write torn (partial line)",
    )
    parser.add_argument(
        "--replicas", type=int, default=0,
        help="backups per shard (synchronous redo shipping; default 0)",
    )
    parser.add_argument(
        "--lease-us", type=float, default=250.0,
        help="primary lease; promotion fires at its expiry (default 250)",
    )
    parser.add_argument(
        "--apply-every", type=int, default=4,
        help="backup applies its shipped tail every N batches (default 4)",
    )
    parser.add_argument(
        "--kill-primary-at-ms", type=float, default=None,
        help="destroy the primary (of --kill-shard or shard 0) and promote",
    )
    parser.add_argument(
        "--kill-backup-at-ms", type=float, default=None,
        help="destroy backup replica 1 mid-ship (needs --replicas >= 1)",
    )
    parser.add_argument(
        "--double-kill-at-ms", type=float, default=None,
        help="also destroy the promoted primary at this instant",
    )
    parser.add_argument("--recovery-threads", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--no-final-verify", action="store_true",
        help="skip the end-of-run crash+recover oracle sweep",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (0 = in-process; result is bit-identical"
        " either way)",
    )
    parser.add_argument(
        "--epoch-us", type=float, default=1000.0,
        help="lock-step epoch quantum past each global horizon,"
        " simulated us (default 1000)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=8,
        help="worker checkpoint cadence in epochs (default 8)",
    )
    parser.add_argument(
        "--kill-worker-at", type=_parse_kill_worker, default=None,
        metavar="W:E",
        help="fault injection: worker W dies hard at epoch E and must"
        " recover from its checkpoint (needs --workers > W)",
    )
    parser.add_argument(
        "--profile", default=None, metavar="PATH",
        help="cProfile the run; top functions by cumulative time are"
        " written to PATH",
    )
    parser.add_argument(
        "--out", default=None, help="write the full report as JSON"
    )
    return parser


def main(argv=None) -> int:
    """Entry point: run one serving experiment, print the outcome."""
    args = build_parser().parse_args(argv)
    cfg = ServeConfig(
        shards=args.shards,
        scheme=args.scheme,
        clients=args.clients,
        rate_per_s=args.rate,
        duration_ms=args.duration_ms,
        keyspace=args.keyspace,
        value_bytes=args.value_bytes,
        read_fraction=args.read_fraction,
        zipf_theta=args.zipf_theta,
        batch_size=args.batch_size,
        batch_wait_us=args.batch_wait_us,
        queue_depth=args.queue_depth,
        kill_shard=args.kill_shard,
        kill_at_ms=args.kill_at_ms,
        torn_kill=args.torn,
        recovery_threads=args.recovery_threads,
        verify_final=not args.no_final_verify,
        seed=args.seed,
        replicas=args.replicas,
        lease_us=args.lease_us,
        apply_every=args.apply_every,
        kill_primary_at_ms=args.kill_primary_at_ms,
        kill_backup_at_ms=args.kill_backup_at_ms,
        double_kill_at_ms=args.double_kill_at_ms,
    )
    engine = EngineConfig(
        workers=args.workers,
        epoch_us=args.epoch_us,
        checkpoint_every=args.checkpoint_every,
        kill_worker_at=args.kill_worker_at,
    )
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    report = run_serve(cfg, engine=engine)
    if profiler is not None:
        profiler.disable()
        print(f"  profile -> {_dump_profile(profiler, args.profile)}")
    latency = report.latency
    print(
        f"serve[{report.scheme}] shards={report.shards} "
        f"offered={report.offered} admitted={report.admitted} "
        f"acked={report.acked_puts}p/{report.acked_gets}g "
        f"batches={report.batches}"
    )
    print(
        f"  throughput {report.requests_per_s:,.0f} req/s "
        f"({report.transactions_per_s:,.0f} txn/s) over "
        f"{report.makespan_ns / 1e6:.2f} simulated ms"
    )
    print(
        f"  latency p50={latency['p50']:,.0f}ns "
        f"p95={latency['p95']:,.0f}ns p99={latency['p99']:,.0f}ns "
        f"max={latency['max']:,.0f}ns"
    )
    if report.rejected or report.retried:
        print(
            f"  backpressure rejected={report.rejected} "
            f"retried={report.retried} shed={report.shed_on_failover}"
        )
    if report.kills:
        print(
            f"  failover kills={report.kills} "
            f"recoveries={report.recoveries}"
        )
    if report.replicas:
        shipped = report.replication.get("records_shipped", 0.0)
        print(
            f"  replication R={report.replicas} "
            f"shipped={shipped:,.0f} promotions={report.promotions} "
            f"rejoins={report.rejoins} backup-kills={report.backup_kills} "
            f"divergence-checks={report.divergence_checks}"
        )
    print(
        f"  oracle: {report.oracle_acked_puts} acked puts, "
        f"{report.oracle_verifications} verifications, "
        + ("CLEAN" if report.clean else "ACKED-WRITE LOSS")
    )
    for failure in report.oracle_failures:
        print(f"    LOST: {failure}", file=sys.stderr)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        print(f"  report -> {args.out}")
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
