"""The acked-write durability oracle: no acknowledged write is ever lost.

A serving system's core promise is that an acknowledgement means
*durable*: once the cluster has told a client "written", no crash may
un-write it.  This module proves the promise mechanically instead of
asserting it:

* every committed PUT is recorded word-by-word (address -> 8-byte
  value, last-ack-wins per word) against its shard *at the instant the
  batch transaction's commit returned* — the acknowledgement edge;
* after any shard crash+recovery (the injected ``--kill-shard``
  failover, and the end-of-run sweep that crashes every shard once
  more), the shard's durable NVM bytes are checked against its acked
  words with :func:`repro.crashtest.verify_atomic_durability` — the
  same verifier the crash-point sweep trusts — including the
  all-or-nothing check for the one batch that was mid-transaction when
  power died.

Word granularity matches the verifier's: PUT values are multiples of 8
bytes at 8-byte-aligned slots (enforced by the serve config), so one
value decomposes exactly into oracle words.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.crashtest import verify_atomic_durability

_WORD = 8


def value_words(addr: int, value: bytes) -> List:
    """Split one slot write into ``(word_addr, 8-byte value)`` pairs."""
    if addr % _WORD or len(value) % _WORD:
        raise ValueError("oracle requires 8-byte-aligned slot writes")
    return [
        (addr + offset, value[offset : offset + _WORD])
        for offset in range(0, len(value), _WORD)
    ]


class AckOracle:
    """Per-shard map of every acknowledged word and its verifier."""

    def __init__(self, shard_ids) -> None:
        self._acked: Dict[int, Dict[int, bytes]] = {
            shard: {} for shard in shard_ids
        }
        self.acked_puts = 0
        self.verifications = 0

    def record_ack(self, shard: int, addr: int, value: bytes) -> None:
        """One PUT's commit returned: its words are now promises."""
        words = self._acked[shard]
        for word_addr, word in value_words(addr, value):
            words[word_addr] = word
        self.acked_puts += 1

    def acked_words(self, shard: int) -> Dict[int, bytes]:
        """The shard's promised words (addr -> last acked 8-byte value)."""
        return self._acked[shard]

    def verify_shard(
        self,
        system,
        shard: int,
        staged: Optional[Dict[int, bytes]] = None,
    ) -> Optional[str]:
        """Check a recovered shard against its promises.

        ``staged`` carries the words of the one transaction that was
        in flight when power died (empty/None if the crash hit an idle
        shard); the verifier requires it to be all-or-nothing while
        every acked word must be exactly durable.  Returns the failure
        message, or None when the promise held.
        """
        self.verifications += 1
        return verify_atomic_durability(
            system, self._acked[shard], staged or {}
        )
