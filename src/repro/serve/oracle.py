"""The acked-write durability oracle: no acknowledged write is ever lost.

A serving system's core promise is that an acknowledgement means
*durable*: once the cluster has told a client "written", no crash may
un-write it.  This module proves the promise mechanically instead of
asserting it:

* every committed PUT is recorded word-by-word (address -> 8-byte
  value, last-ack-wins per word) against its shard *at the instant the
  batch transaction's commit returned* — the acknowledgement edge (for
  a replicated shard, after every live backup's ship committed too);
* after any shard crash+recovery (the injected ``--kill-shard`` /
  ``--kill-primary-at-ms`` failovers, and the end-of-run sweep that
  crashes every shard once more), the shard's durable NVM bytes are
  checked against its acked words with
  :func:`repro.crashtest.verify_atomic_durability` — the same verifier
  the crash-point sweep trusts — including the all-or-nothing check
  for the one batch that was mid-transaction when power died;
* with replication enabled, *every replica* is held to the same
  promise: :meth:`AckOracle.verify_replica` checks a replica's durable
  projection (crash + recover + shipped-tail replay, computed on a
  clone — see :meth:`repro.serve.replica.Replica.durable_projection`)
  against the full ack history, so an acked write must survive even
  the destruction of the machine that acknowledged it.

Word granularity matches the verifier's: PUT values are multiples of 8
bytes at 8-byte-aligned slots (enforced by the serve config), so one
value decomposes exactly into oracle words — the decomposition is the
same redo-record export the replication layer ships
(:meth:`repro.txn.system.MemorySystem.redo_words`).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.crashtest import verify_atomic_durability
from repro.txn.system import MemorySystem

_WORD = 8


def value_words(addr: int, value: bytes) -> List:
    """Split one slot write into ``(word_addr, 8-byte value)`` pairs.

    Thin wrapper over the canonical redo export
    (:meth:`repro.txn.system.MemorySystem.redo_words`) for a single
    store — the oracle and the replication layer must decompose writes
    identically or a shipped record could verify differently than it
    was promised.
    """
    return MemorySystem.redo_words([(addr, value)])


class AckOracle:
    """Per-shard map of every acknowledged word and its verifier."""

    def __init__(self, shard_ids) -> None:
        self._acked: Dict[int, Dict[int, bytes]] = {
            shard: {} for shard in shard_ids
        }
        self.acked_puts = 0
        self.verifications = 0

    def record_ack(self, shard: int, addr: int, value: bytes) -> None:
        """One PUT's commit returned: its words are now promises."""
        words = self._acked[shard]
        for word_addr, word in value_words(addr, value):
            words[word_addr] = word
        self.acked_puts += 1

    def acked_words(self, shard: int) -> Dict[int, bytes]:
        """The shard's promised words (addr -> last acked 8-byte value)."""
        return self._acked[shard]

    def verify_shard(
        self,
        system,
        shard: int,
        staged: Optional[Dict[int, bytes]] = None,
    ) -> Optional[str]:
        """Check a recovered shard against its promises.

        ``staged`` carries the words of the one transaction that was
        in flight when power died (empty/None if the crash hit an idle
        shard); the verifier requires it to be all-or-nothing while
        every acked word must be exactly durable.  Returns the failure
        message, or None when the promise held.
        """
        self.verifications += 1
        return verify_atomic_durability(
            system, self._acked[shard], staged or {}
        )

    def verify_replica(
        self,
        projection,
        shard: int,
        replica_index: int,
        staged: Optional[Dict[int, bytes]] = None,
    ) -> Optional[str]:
        """Check one replica's durable projection against the shard's acks.

        ``projection`` is the crash+recover+tail-replay clone from
        :meth:`repro.serve.replica.Replica.durable_projection` — what
        this replica would serve if promoted right now.  Every word the
        *group* ever acknowledged must be present (synchronous shipping
        is exactly the mechanism that makes this hold; this check is
        what would catch it lying).  Counts as one verification;
        failure messages are prefixed with the replica index.
        """
        failure = self.verify_shard(projection, shard, staged)
        if failure:
            return f"replica {replica_index}: {failure}"
        return None


# -- snapshot/wire declarations -----------------------------------------------
# The acked-word maps are promises in flight: they travel by value with
# their shard executor.
AckOracle.__snapshot_state__ = "__all__"
