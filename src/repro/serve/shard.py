"""Shard-local execution: one replication group's event loop slice.

PR 9 split the old monolithic cluster loop in two.  A
:class:`ShardExecutor` owns everything that is *per-shard* — the
replication group, the shard's bounded admission queue, the batch
policy, the acked-write oracle slice, the wake heap, and every
failover/promotion/rejoin state machine — and exposes exactly the
epoch-bounded stepping API the coordinator drives:

* :meth:`ShardExecutor.submit` — hand over a routed arrival (pushed as
  a heap event at its arrival instant, *not* executed yet);
* :meth:`ShardExecutor.advance_to` — run every queued event up to and
  including a simulated-time horizon;
* :meth:`ShardExecutor.next_event_ns` — the shard's next event clock,
  which the coordinator folds into the global horizon;
* :meth:`ShardExecutor.final_verify` — the end-of-run oracle sweep for
  this shard alone.

Shards share nothing (each group's keys, machines, fault seeds, and
RNG streams are derived per shard), so a cluster run is the same
computation whether the executors are advanced interleaved on one
event loop, round-robin in epochs, or on worker processes — which is
the whole basis of the parallel engine's bit-identical claim
(:mod:`repro.serve.engine`).

Event ordering within a shard is total and mode-independent: the heap
key is ``(time_ns, kind, seq)`` with arrivals ordered before wakes at
the same instant, and ``seq`` a per-shard monotone counter.  Arrivals
are always submitted in the canonical global arrival order
(:class:`~repro.serve.client.ArrivalStream`), so per-shard sequence
numbers — and therefore every tie-break — are identical in every
execution mode.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List

from repro.common.errors import PowerLossError
from repro.serve.admission import AdmissionController, RetryableRejection
from repro.serve.batcher import BatchScheduler
from repro.serve.client import OP_GET, Request
from repro.serve.oracle import AckOracle
from repro.serve.replica import (
    BACKUP,
    DEAD,
    GROUP_FAILING_OVER,
    GROUP_RECOVERING,
    GROUP_UP,
    REJOINING,
    Replica,
    ReplicationGroup,
)
from repro.txn.system import MemorySystem

# Event kinds: a routed client arrival, or a shard wake-up (batch
# deadline, busy-until, recovery completion, promotion instant, or a
# rejoin step — the pump sorts it out).  Arrivals order before wakes at
# the same instant; the constants are the heap tie-break.
_ARRIVAL = 0
_WAKE = 1


class ShardExecutor:
    """One shard's complete serving state machine, steppable in epochs."""

    def __init__(
        self,
        cfg,
        group: ReplicationGroup,
        *,
        telemetry,
    ) -> None:
        self.cfg = cfg
        self.shard_id = group.shard_id
        self.group = group
        self.telemetry = telemetry
        self.admission = AdmissionController(
            [self.shard_id], queue_depth=cfg.queue_depth
        )
        self.batcher = BatchScheduler(
            batch_size=cfg.batch_size,
            batch_wait_ns=cfg.batch_wait_us * 1e3,
        )
        self.oracle = AckOracle([self.shard_id])
        self.now_ns = 0.0
        self.offered = 0
        self.admitted = 0
        self.acked_puts = 0
        self.acked_gets = 0
        self.retried = 0
        self.shed_on_failover = 0
        self.batches = 0
        self.primary_kills = 0
        self.backup_kills = 0
        self.divergence_checks = 0
        self.oracle_failures: List[str] = []
        self.last_completion_ns = 0.0
        self._events: List[tuple] = []
        self._seq = 0
        self._double_kill_armed = False

    # -- event plumbing -------------------------------------------------------

    def _push(self, time_ns: float, kind: int) -> None:
        self._seq += 1
        heapq.heappush(self._events, (time_ns, kind, self._seq, None))

    def submit(self, request: Request) -> None:
        """Queue a routed arrival as an event at its arrival instant.

        Submission never executes anything: the request waits in the
        heap until an :meth:`advance_to` horizon covers it, so the
        per-shard processing order depends only on ``(time, kind,
        seq)`` — never on when the coordinator handed the request over.
        """
        self._seq += 1
        heapq.heappush(
            self._events, (request.arrival_ns, _ARRIVAL, self._seq, request)
        )

    def next_event_ns(self) -> float:
        """This shard's next event clock (``inf`` when drained)."""
        return self._events[0][0] if self._events else math.inf

    def advance_to(self, horizon_ns: float) -> None:
        """Run every event at or before ``horizon_ns``, in heap order.

        Events scheduled *during* the advance (batch wakes, promotion
        instants…) that land within the horizon are executed in the
        same pass — the loop drains the heap front, not a snapshot of
        it — so an epoch boundary is never observable from inside the
        shard.
        """
        events = self._events
        while events and events[0][0] <= horizon_ns:
            time_ns, kind, _, payload = heapq.heappop(events)
            if time_ns > self.now_ns:
                self.now_ns = time_ns
            if kind == _ARRIVAL:
                self._admit(payload)
            self._pump()

    def arm_kills(self) -> None:
        """Arm this shard's configured deadline power cuts (if targeted).

        ``--kill-shard`` (legacy, R-agnostic) and
        ``--kill-primary-at-ms`` both target a group's primary;
        ``--kill-backup-at-ms`` targets replica 1 of the same group.
        The double-kill deadline is armed later, on the *promoted*
        primary, at promotion time.
        """
        cfg = self.cfg
        target = cfg.kill_shard if cfg.kill_shard is not None else 0
        if self.shard_id != target:
            return
        kill_at_ms = None
        if cfg.kill_shard is not None:
            kill_at_ms = (
                cfg.kill_at_ms
                if cfg.kill_at_ms is not None
                else cfg.duration_ms * 0.4
            )
        if cfg.kill_primary_at_ms is not None:
            kill_at_ms = cfg.kill_primary_at_ms
        if kill_at_ms is not None:
            primary = self.group.primary
            primary.system.device.injector.arm_power_loss_at(
                kill_at_ms * 1e6, torn=cfg.torn_kill
            )
        if cfg.kill_backup_at_ms is not None:
            backup = self.group.replicas[1]
            backup.system.device.injector.arm_power_loss_at(
                cfg.kill_backup_at_ms * 1e6, torn=cfg.torn_kill
            )

    def progress(self) -> Dict[str, int]:
        """Cumulative ack/batch counters (the per-epoch worker reply)."""
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "acked_puts": self.acked_puts,
            "acked_gets": self.acked_gets,
            "batches": self.batches,
        }

    # -- admission ------------------------------------------------------------

    def _admit(self, request: Request) -> None:
        group = self.group
        self.offered += 1
        failing_over = group.state == GROUP_FAILING_OVER
        recovering = group.state == GROUP_RECOVERING
        if failing_over:
            retry_after = max(group.promote_at_ns - self.now_ns, 0.0)
        elif recovering:
            retry_after = max(
                group.primary.recover_at_ns - self.now_ns, 0.0
            )
        else:
            retry_after = self.batcher.batch_wait_ns
        try:
            self.admission.admit(
                request,
                recovering=recovering,
                retry_after_ns=retry_after,
                failing_over=failing_over,
            )
        except RetryableRejection as rejection:
            self.telemetry.emit(
                self.now_ns,
                "serve_reject",
                "serve",
                {"shard": request.shard, "kind": rejection.kind},
            )
            return
        self.admitted += 1
        self.telemetry.record(
            f"shard{request.shard}/queue_depth",
            self.admission.depth(request.shard),
        )
        self.telemetry.sample(
            f"shard{request.shard}/admitted", self.now_ns
        )

    # -- the shard pump -------------------------------------------------------

    def _pump(self) -> None:
        """Advance the group: rejoins, promotion, recovery, then batching."""
        group = self.group
        self._advance_rejoins(group)
        if group.state == GROUP_FAILING_OVER:
            if self.now_ns + 1e-9 < group.promote_at_ns:
                return  # the promotion wake is already queued
            self._complete_promotion(group)
            if group.state != GROUP_UP:
                return
        if group.state == GROUP_RECOVERING:
            if self.now_ns + 1e-9 < group.primary.recover_at_ns:
                return  # the recovery-completion wake is already queued
            self._complete_recovery(group)
        primary = group.primary
        if primary.clock_ns > self.now_ns + 1e-9:
            # Busy until its clock; re-pump then.
            self._push(primary.clock_ns, _WAKE)
            return
        queue = self.admission.queues[self.shard_id]
        if not queue:
            return
        if self.batcher.ready(queue, self.now_ns):
            self._execute_batch(group)
        else:
            self._push(self.batcher.deadline_ns(queue), _WAKE)

    # -- batch execution ------------------------------------------------------

    def _execute_batch(self, group: ReplicationGroup) -> None:
        """One batch: GET loads, then all PUTs committed and shipped."""
        primary = group.primary
        system = primary.system
        batch = self.batcher.take(self.admission.queues[group.shard_id])
        start = max(self.now_ns, primary.clock_ns)
        system.clocks[0] = start
        self.telemetry.record(f"shard{group.shard_id}/batch_size", len(batch))
        puts: List[Request] = []
        try:
            for request in batch:
                if request.op != OP_GET:
                    puts.append(request)
                    continue
                system.load(
                    primary.addr_of(request.key),
                    primary.value_bytes,
                    core=0,
                )
                request.completion_ns = system.clocks[0]
                self._ack(group, request)
            stores = [
                (primary.addr_of(request.key), request.value)
                for request in puts
            ]
            outcome = group.commit_and_ship(stores, core=0)
        except PowerLossError as exc:
            issued = getattr(exc, "issued_stores", [])
            if primary.log_base is not None:
                # The batch tx also carries the replication-log entry +
                # header.  All-or-nothing is judged over the *data*
                # words only: log words are rewritten every batch, so
                # their pre-crash baseline is the previous log state —
                # which the word-granular verifier (baselining against
                # acked-or-zero) cannot know.  Log integrity is proven
                # separately, by tail replay + divergence fingerprints.
                issued = [
                    s
                    for s in issued
                    if not primary.log_base <= s[0] < primary.log_limit
                ]
            staged = dict(MemorySystem.redo_words(issued))
            unacked = [r for r in batch if r.completion_ns <= 0.0]
            self._primary_failover(group, staged, unacked)
            return
        if outcome.tx is not None:
            completion = outcome.ack_ns
            for request in puts:
                request.completion_ns = completion
                self.oracle.record_ack(
                    group.shard_id,
                    primary.addr_of(request.key),
                    request.value,
                )
                self._ack(group, request)
        for backup in outcome.dead_backups:
            self._backup_failover(group, backup)
        if group.replication_enabled and outcome.tx is not None:
            self.telemetry.sample(
                f"shard{group.shard_id}/replication_lag",
                self.now_ns,
                group.replication_lag(),
            )
        self.batches += 1
        self._push(primary.clock_ns, _WAKE)

    def _ack(self, group: ReplicationGroup, request: Request) -> None:
        """Acknowledgement instant: count + per-shard latency histogram."""
        latency = request.latency_ns
        if request.op == OP_GET:
            self.acked_gets += 1
        else:
            self.acked_puts += 1
        group.primary.acked += 1
        if request.completion_ns > self.last_completion_ns:
            self.last_completion_ns = request.completion_ns
        self.telemetry.record(
            f"shard{group.shard_id}/request_latency_ns", latency
        )

    # -- failover -------------------------------------------------------------

    def _primary_failover(
        self,
        group: ReplicationGroup,
        staged: Dict[int, bytes],
        unacked: List[Request],
    ) -> None:
        """The primary died mid-batch: verify, requeue, promote or hold.

        The dead machine is crashed+recovered immediately and verified
        against every acked word (plus all-or-nothing for the in-flight
        batch — its words, including the folded-in redo log entry, are
        ``staged``).  With a live backup the group enters FAILING_OVER
        until the lease expires; without one it holds RECOVERING until
        the same machine's recovery horizon, exactly the PR 7 path.
        """
        primary = group.primary
        self.primary_kills += 1
        self.telemetry.emit(
            self.now_ns,
            "shard_kill",
            "serve",
            {"shard": group.shard_id, "staged_words": len(staged)},
        )
        recover_at = group.begin_replica_recovery(
            primary, self.now_ns, floor_ns=self.cfg.recovery_floor_ns
        )
        failure = self.oracle.verify_shard(
            primary.system, group.shard_id, staged
        )
        if failure:
            self.oracle_failures.append(
                f"shard {group.shard_id} after kill: {failure}"
            )
        fitted = self.admission.requeue_front(unacked)
        self.retried += fitted
        self.shed_on_failover += len(unacked) - fitted
        if group.live_backups():
            group.state = GROUP_FAILING_OVER
            group.promote_at_ns = max(self.now_ns, group.lease_expiry_ns)
            self.telemetry.emit(
                self.now_ns,
                "failover_begin",
                "serve",
                {
                    "shard": group.shard_id,
                    "promote_at_ns": group.promote_at_ns,
                    "requeued": fitted,
                },
            )
            self._push(group.promote_at_ns, _WAKE)
        else:
            group.state = GROUP_RECOVERING
            self.telemetry.emit(
                self.now_ns,
                "shard_recovering",
                "serve",
                {
                    "shard": group.shard_id,
                    "recovery_ns": recover_at - self.now_ns,
                    "requeued": fitted,
                },
            )
            self._push(recover_at, _WAKE)

    def _backup_failover(
        self, group: ReplicationGroup, replica: Replica
    ) -> None:
        """A backup died (mid-ship or mid-apply): recover it off-path.

        Serving never stalls — the ack already proceeded with the
        remaining live set.  The dead backup is crashed+recovered and
        held until its recovery horizon, after which it rejoins via
        catch-up; its durable state is verified at rejoin (divergence
        fingerprint) and again in the final sweep.
        """
        self.backup_kills += 1
        self.telemetry.emit(
            self.now_ns,
            "backup_kill",
            "serve",
            {"shard": group.shard_id, "replica": replica.index},
        )
        recover_at = group.begin_replica_recovery(
            replica, self.now_ns, floor_ns=self.cfg.recovery_floor_ns
        )
        self._push(recover_at, _WAKE)

    def _complete_promotion(self, group: ReplicationGroup) -> None:
        """Lease expired: promote the freshest live backup (or hold).

        If every backup died during the failover window the group falls
        back to waiting for its dead primary (RECOVERING).  A power cut
        *during* promotion (an armed deadline on the successor) demotes
        that successor to the dead set and retries immediately with the
        next candidate.  After a successful promotion the divergence
        oracle compares every live replica's durable keyspace, and the
        optional double-kill deadline is armed on the new primary.
        """
        old_primary = group.primary
        successor = group.choose_successor()
        if successor is None:
            group.state = GROUP_RECOVERING
            self._push(old_primary.recover_at_ns, _WAKE)
            return
        replayed = len(successor.tail)
        try:
            group.promote(self.now_ns)
        except PowerLossError:
            self._backup_failover(group, successor)
            group.state = GROUP_FAILING_OVER
            group.promote_at_ns = self.now_ns
            self._push(self.now_ns, _WAKE)
            return
        self.telemetry.count("serve.promotions")
        self.telemetry.emit(
            self.now_ns,
            "promotion",
            "serve",
            {
                "shard": group.shard_id,
                "replica": successor.index,
                "epoch": group.epoch,
                "replayed": replayed,
            },
        )
        # A reconcile ship may have tripped an armed cut on another
        # backup; sweep and recover any such casualty.
        for replica in group.backups():
            if (
                replica.state == BACKUP
                and replica.system.device.injector.power_lost
            ):
                self._backup_failover(group, replica)
        # One durable projection per live replica serves both the
        # divergence fingerprints and the successor's oracle check —
        # the projection (clone + crash + recover + tail replay) is by
        # far the most expensive verification step, so it is never
        # recomputed within one pass.
        projections = group.live_projections()
        self._check_divergence(group, projections, "after promotion")
        failure = self.oracle.verify_replica(
            projections[successor.index],
            group.shard_id,
            successor.index,
        )
        if failure:
            self.oracle_failures.append(
                f"shard {group.shard_id} promoted {failure}"
            )
        if (
            self.cfg.double_kill_at_ms is not None
            and not self._double_kill_armed
        ):
            self._double_kill_armed = True
            successor.system.device.injector.arm_power_loss_at(
                self.cfg.double_kill_at_ms * 1e6, torn=self.cfg.torn_kill
            )
        self._push(max(self.now_ns, old_primary.recover_at_ns), _WAKE)
        self._push(successor.clock_ns, _WAKE)

    def _complete_recovery(self, group: ReplicationGroup) -> None:
        """Recovery horizon reached: the machine serves again (cold caches)."""
        primary = group.primary
        cores = len(primary.system.clocks)
        primary.system.clocks = [primary.recover_at_ns] * cores
        group.resume_solo(primary, primary.recover_at_ns)
        primary.recoveries += 1
        self.telemetry.emit(
            primary.recover_at_ns,
            "shard_recovered",
            "serve",
            {"shard": group.shard_id},
        )

    # -- rejoin ---------------------------------------------------------------

    def _advance_rejoins(self, group: ReplicationGroup) -> None:
        """Move due non-primary replicas through DEAD → REJOINING → BACKUP.

        Runs at the head of every pump, so any wake or arrival after a
        replica's recovery horizon makes progress.  A rejoin needs a
        live primary as its catch-up source: while the group is itself
        failing over or recovering, the step is deferred to the group's
        own resume instant.
        """
        for replica in group.replicas:
            if replica.index == group.primary_index:
                continue
            if replica.state == DEAD:
                if self.now_ns + 1e-9 < replica.recover_at_ns:
                    continue  # its recovery wake is already queued
                if group.state != GROUP_UP:
                    resume = (
                        group.promote_at_ns
                        if group.state == GROUP_FAILING_OVER
                        else group.primary.recover_at_ns
                    )
                    self._push(max(resume, replica.recover_at_ns), _WAKE)
                    continue
                replica.state = REJOINING
                self.telemetry.emit(
                    self.now_ns,
                    "rejoin_begin",
                    "serve",
                    {"shard": group.shard_id, "replica": replica.index},
                )
                try:
                    group.catch_up(replica, self.now_ns)
                except PowerLossError:
                    self._backup_failover(group, replica)
                    continue
                self._try_go_live(group, replica)
            elif replica.state == REJOINING and group.state == GROUP_UP:
                self._try_go_live(group, replica)

    def _try_go_live(
        self, group: ReplicationGroup, replica: Replica
    ) -> None:
        """One rejoin step: delta re-ship, then live — or a later retry."""
        try:
            retry_at = group.try_go_live(replica, self.now_ns)
        except PowerLossError:
            self._backup_failover(group, replica)
            return
        if retry_at is not None:
            self._push(retry_at, _WAKE)
            return
        self.telemetry.count("serve.rejoins")
        self.telemetry.emit(
            self.now_ns,
            "rejoin_complete",
            "serve",
            {"shard": group.shard_id, "replica": replica.index},
        )
        self._check_divergence(
            group,
            group.live_projections(),
            f"after replica {replica.index} rejoin",
        )

    # -- verification ---------------------------------------------------------

    def _check_divergence(
        self, group: ReplicationGroup, projections: Dict, label: str
    ) -> None:
        """Fingerprint-compare live replicas' already-computed projections."""
        self.divergence_checks += 1
        failure = group.divergence_of(projections)
        if failure:
            self.oracle_failures.append(f"{failure} ({label})")

    def final_verify(self) -> None:
        """End-of-run sweep: every replica's durable state must hold.

        Unreplicated groups take the PR 7 path verbatim (crash+recover
        the one machine, verify once).  Replicated groups are verified
        non-destructively against *one* durable projection per live
        replica — the projection feeds both the divergence fingerprints
        and the acked-write check, instead of being cloned once per
        verification pass as the pre-PR 9 sweep did.  A replica still
        dead or rejoining at drain time is itself a failure (the event
        loop drains every recovery wake, so a straggler means the
        rejoin protocol lost it).
        """
        group = self.group
        shard_id = self.shard_id
        if not group.replication_enabled:
            shard = group.primary
            shard.system.crash()
            shard.system.recover(threads=self.cfg.recovery_threads)
            failure = self.oracle.verify_shard(shard.system, shard_id)
            if failure:
                self.oracle_failures.append(
                    f"shard {shard_id} final sweep: {failure}"
                )
            return
        projections = group.live_projections()
        self._check_divergence(group, projections, "final sweep")
        for replica in group.replicas:
            if not replica.live:
                self.oracle_failures.append(
                    f"shard {shard_id} replica {replica.index} "
                    f"never rejoined (state {replica.state})"
                )
                continue
            failure = self.oracle.verify_replica(
                projections[replica.index], shard_id, replica.index
            )
            if failure:
                self.oracle_failures.append(
                    f"shard {shard_id} final sweep {failure}"
                )


# -- snapshot/wire declarations -----------------------------------------------
# An executor is the unit the parallel engine places on (and migrates
# between) workers: everything it owns travels by value except the
# telemetry hub, which the wire layer swaps for the receiver's.
ShardExecutor.__snapshot_state__ = "__all__"
