"""``repro.serve`` — a sharded transactional KV serving layer.

The serving subsystem fronts N independent simulated NVM machines
(one :class:`~repro.txn.system.MemorySystem` per shard, each running a
persistence scheme from :mod:`repro.schemes`) with the pieces a real
storage service needs:

* :mod:`~repro.serve.router` — consistent-hash request routing;
* :mod:`~repro.serve.client` — open-loop Poisson load generation with
  deterministic per-client RNG streams;
* :mod:`~repro.serve.admission` — bounded queues, backpressure, typed
  retryable rejections;
* :mod:`~repro.serve.batcher` — size-or-deadline batching of same-shard
  requests into single failure-atomic transactions;
* :mod:`~repro.serve.oracle` — the acked-write durability oracle
  (an acknowledgement is a promise; crashes may not break it);
* :mod:`~repro.serve.replica` — replication groups: synchronous
  word-granular redo shipping to R backups, deterministic lease/epoch
  promotion, rejoin catch-up, and the divergence fingerprint oracle;
* :mod:`~repro.serve.shard` — the shard executor: one shard's
  deterministic event loop (admission, batching, mid-traffic
  primary/backup kills, crash/recover/promote failover);
* :mod:`~repro.serve.cluster` — the coordinator: N shard executors
  advanced in lock-step simulated-time epochs;
* :mod:`~repro.serve.engine` — the execution engine: the epoch driver
  plus an optional multi-process worker pool (``--workers W``) that is
  bit-identical to sequential execution.

Run it: ``python -m repro.serve --shards 4 --kill-shard 1``, with
replication: ``python -m repro.serve --replicas 1
--kill-primary-at-ms 6``, or in parallel: ``python -m repro.serve
--shards 8 --workers 4``.  Everything is simulated time — a run is a
pure function of its :class:`ServeConfig`, bit-identical across
replays, harness parallelism, and worker counts.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.serve.cluster import ServeCluster
from repro.serve.engine import EngineConfig
from repro.telemetry.hub import Telemetry
from repro.telemetry.metrics import Log2Histogram

# Schemes the serving layer accepts: every persistence scheme, but not
# ``native`` — a serving ack is a durability promise, and native makes
# none (the final crash+recover sweep would always report loss).
SERVABLE_SCHEMES = (
    "hoop",
    "hoop-mc",
    "opt-redo",
    "opt-undo",
    "osp",
    "lsm",
    "lad",
    "logregion",
)


@dataclass(frozen=True)
class ServeConfig:
    """Everything that determines a serving run (and nothing else)."""

    shards: int = 4
    scheme: str = "hoop"
    clients: int = 8
    rate_per_s: float = 100_000.0
    duration_ms: float = 20.0
    keyspace: int = 4096
    value_bytes: int = 64
    read_fraction: float = 0.25
    zipf_theta: float = 0.9
    batch_size: int = 8
    batch_wait_us: float = 50.0
    queue_depth: int = 64
    kill_shard: Optional[int] = None
    kill_at_ms: Optional[float] = None
    torn_kill: bool = False
    recovery_threads: int = 2
    recovery_floor_ns: float = 10_000.0
    verify_final: bool = True
    seed: int = 7
    # Replication (0 = the PR 7 single-machine shard, bit-identical).
    replicas: int = 0
    lease_us: float = 250.0
    apply_every: int = 4
    kill_primary_at_ms: Optional[float] = None
    kill_backup_at_ms: Optional[float] = None
    double_kill_at_ms: Optional[float] = None

    def __post_init__(self) -> None:
        """Reject configs that cannot serve honestly."""
        if self.shards <= 0:
            raise ConfigError("need at least one shard")
        if not 0 <= self.replicas <= 4:
            raise ConfigError(
                "replicas must be in [0, 4] — every backup is a full "
                "simulated machine"
            )
        if self.replicas == 0:
            for flag in ("kill_backup_at_ms", "double_kill_at_ms"):
                if getattr(self, flag) is not None:
                    raise ConfigError(
                        f"{flag} requires at least one backup "
                        "(--replicas >= 1)"
                    )
        if self.double_kill_at_ms is not None and (
            self.kill_primary_at_ms is None
        ):
            raise ConfigError(
                "double_kill_at_ms arms the *promoted* primary — it "
                "needs a first kill (kill_primary_at_ms)"
            )
        if self.lease_us < 0:
            raise ConfigError("lease_us must be nonnegative")
        if self.apply_every < 1:
            raise ConfigError("apply_every must be at least 1")
        if self.scheme not in SERVABLE_SCHEMES:
            raise ConfigError(
                f"scheme {self.scheme!r} cannot back a serving layer "
                f"(no durability contract); choose one of "
                f"{', '.join(SERVABLE_SCHEMES)}"
            )
        if self.value_bytes <= 0 or self.value_bytes % 8:
            raise ConfigError(
                "value_bytes must be a positive multiple of 8 "
                "(the oracle verifies at word granularity)"
            )
        if self.keyspace <= 0:
            raise ConfigError("keyspace must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigError("read_fraction must be within [0, 1]")
        if self.kill_shard is not None and not (
            0 <= self.kill_shard < self.shards
        ):
            raise ConfigError(
                f"kill_shard {self.kill_shard} out of range "
                f"[0, {self.shards})"
            )

    def replace(self, **overrides) -> "ServeConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **overrides)


@dataclass
class ServeReport:
    """The deterministic outcome of one serving run."""

    scheme: str
    shards: int
    offered: int
    admitted: int
    rejected: Dict[str, int]
    retried: int
    shed_on_failover: int
    acked_puts: int
    acked_gets: int
    batches: int
    kills: int
    recoveries: int
    oracle_acked_puts: int
    oracle_verifications: int
    oracle_failures: List[str]
    committed_transactions: int
    makespan_ns: float
    requests_per_s: float
    transactions_per_s: float
    latency: Dict[str, float]
    per_shard: Dict[str, dict] = field(default_factory=dict)
    # Replication (defaulted so pre-replication report payloads still
    # round-trip through ``ServeReport(**payload)``).
    replicas: int = 0
    promotions: int = 0
    rejoins: int = 0
    backup_kills: int = 0
    divergence_checks: int = 0
    replication: Dict[str, float] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """Did every acknowledged write survive every crash?"""
        return not self.oracle_failures

    def to_dict(self) -> dict:
        """JSON-serializable form (used by the bench and the CLI)."""
        return asdict(self)


def run_serve(
    cfg: ServeConfig,
    *,
    engine: Optional[EngineConfig] = None,
    telemetry: Optional[Telemetry] = None,
) -> ServeReport:
    """Build a cluster from ``cfg``, run it to completion, report.

    ``engine`` selects *how* the run executes
    (:class:`~repro.serve.engine.EngineConfig`; default in-process,
    ``workers > 0`` fans the shards out over a lock-step worker pool)
    without changing a byte of the report.  Pass a
    :class:`~repro.telemetry.hub.Telemetry` hub to keep it (for
    Perfetto export of the serve track); otherwise the cluster makes
    its own, and the report carries the latency digests either way.
    """
    cluster = ServeCluster(cfg, telemetry=telemetry)
    cluster.run(engine)
    hub = cluster.telemetry
    makespan = cluster.last_completion_ns
    acked = cluster.acked_puts + cluster.acked_gets
    committed = sum(
        replica.system.committed_transactions
        for group in cluster.groups.values()
        for replica in group.replicas
    )
    # The report's latency digest merges the per-shard single-writer
    # histograms in shard order — the same construction under any
    # worker count, hence bit-identical sequential vs parallel.
    latency = Log2Histogram()
    per_shard = {}
    for shard_id, group in sorted(cluster.groups.items()):
        shard_hist = hub.hist(f"shard{shard_id}/request_latency_ns")
        latency.merge(shard_hist)
        per_shard[str(shard_id)] = {
            "acked": group.acked,
            "kills": group.kills,
            "recoveries": group.recoveries,
            "queue_depth": cluster.queue_depth(shard_id),
            "latency": shard_hist.summary(),
            "epoch": group.epoch,
            "primary": group.primary_index,
        }
    replication: Dict[str, float] = {}
    if cfg.replicas > 0:
        replication = {
            "records_shipped": float(
                sum(
                    max(r.shipped_seq for r in g.replicas)
                    for g in cluster.groups.values()
                )
            ),
            "records_reconciled": float(
                sum(g.reconciled_records for g in cluster.groups.values())
            ),
        }
    return ServeReport(
        scheme=cfg.scheme,
        shards=cfg.shards,
        offered=cluster.offered,
        admitted=cluster.admitted,
        rejected=dict(sorted(cluster.rejections.items())),
        retried=cluster.retried,
        shed_on_failover=cluster.shed_on_failover,
        acked_puts=cluster.acked_puts,
        acked_gets=cluster.acked_gets,
        batches=cluster.batches,
        kills=sum(g.kills for g in cluster.groups.values()),
        recoveries=sum(g.recoveries for g in cluster.groups.values()),
        oracle_acked_puts=cluster.oracle_acked_puts,
        oracle_verifications=cluster.oracle_verifications,
        oracle_failures=list(cluster.oracle_failures),
        committed_transactions=committed,
        makespan_ns=makespan,
        requests_per_s=(acked * 1e9 / makespan) if makespan > 0 else 0.0,
        transactions_per_s=(
            (committed * 1e9 / makespan) if makespan > 0 else 0.0
        ),
        latency=latency.summary(),
        per_shard=per_shard,
        replicas=cfg.replicas,
        promotions=sum(g.promotions for g in cluster.groups.values()),
        rejoins=sum(g.rejoins for g in cluster.groups.values()),
        backup_kills=cluster.backup_kills,
        divergence_checks=cluster.divergence_checks,
        replication=replication,
    )


# -- snapshot/wire declarations -----------------------------------------------
# Frozen config: every executor's copy is the same immutable object.
ServeConfig.__snapshot_state__ = "__shared__"


__all__ = [
    "SERVABLE_SCHEMES",
    "EngineConfig",
    "ServeConfig",
    "ServeReport",
    "run_serve",
]
