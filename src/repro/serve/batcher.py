"""Batch scheduler: pack same-shard requests into one transaction.

Commit cost dominates small transactions in every persistence scheme
(log drain, STATE_LAST slice, shadow flip…), so the serving layer
amortizes it: queued requests for the same shard are packed into a
single failure-atomic transaction.  Two limits bound the packing:

* **size** — at most ``batch_size`` requests per transaction, keeping
  the all-or-nothing blast radius and the commit drain bounded;
* **deadline** — a partial batch executes once its *oldest* request has
  waited ``batch_wait_ns``, bounding the latency a lone request can be
  held hostage waiting for company.

The policy object is pure (it inspects a queue and the clock; it never
executes anything), which is what makes it unit-testable and keeps the
cluster's event loop the only place where simulated time advances.
"""

from __future__ import annotations

from typing import Deque, List, Optional

from repro.serve.client import Request


class BatchScheduler:
    """Size-or-deadline batching policy over one shard's FIFO."""

    def __init__(self, *, batch_size: int, batch_wait_ns: float) -> None:
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        if batch_wait_ns < 0:
            raise ValueError("batch wait must be non-negative")
        self.batch_size = batch_size
        self.batch_wait_ns = batch_wait_ns

    def ready(self, queue: Deque[Request], now_ns: float) -> bool:
        """Should a batch execute now? (full, or head past its deadline)"""
        if not queue:
            return False
        if len(queue) >= self.batch_size:
            return True
        return now_ns >= queue[0].arrival_ns + self.batch_wait_ns

    def deadline_ns(self, queue: Deque[Request]) -> Optional[float]:
        """When the current partial batch must execute (None if empty)."""
        if not queue:
            return None
        return queue[0].arrival_ns + self.batch_wait_ns

    def take(self, queue: Deque[Request]) -> List[Request]:
        """Pop the next batch (up to ``batch_size``, FIFO order)."""
        batch: List[Request] = []
        while queue and len(batch) < self.batch_size:
            batch.append(queue.popleft())
        return batch


# -- snapshot/wire declarations -----------------------------------------------
# A stateless policy over two scalar knobs.
BatchScheduler.__snapshot_state__ = "__atoms__"
