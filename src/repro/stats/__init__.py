"""Measurement and reporting utilities.

Raw counters live where the events happen (device, channel, hierarchy,
scheme, GC); this package turns them into the paper's reported quantities
and renders aligned text tables for the harness and EXPERIMENTS.md.
"""

from repro.stats.report import (
    FigureData,
    fault_tolerance_figure,
    format_table,
)

__all__ = ["FigureData", "fault_tolerance_figure", "format_table"]
