"""Result containers and text-table rendering for the harness.

Every experiment runner returns a :class:`FigureData`: the figure/table
identifier, column names, data rows, and free-form notes (normalization
basis, scale caveats).  ``render()`` produces the aligned text block that
the benchmarks print and EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[Sequence[Cell]]) -> str:
    """Render an aligned text table."""
    rendered = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(columns[i])), *(len(r[i]) for r in rendered))
        if rendered
        else len(str(columns[i]))
        for i in range(len(columns))
    ]
    lines = [
        "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns)),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    for row in rendered:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(row)))
        )
    return "\n".join(lines)


@dataclass
class FigureData:
    """One reproduced figure or table."""

    figure: str  # e.g. "Figure 7a"
    title: str
    columns: List[str]
    rows: List[List[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Cell]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def by_key(self, key_column: str) -> Dict[Cell, List[Cell]]:
        index = self.columns.index(key_column)
        return {row[index]: row for row in self.rows}

    def render(self) -> str:
        header = f"== {self.figure}: {self.title} =="
        body = format_table(self.columns, self.rows)
        notes = "\n".join(f"  note: {n}" for n in self.notes)
        return "\n".join(part for part in (header, body, notes) if part)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def fault_tolerance_figure(system) -> FigureData:
    """Fault-tolerance counters of one system as a renderable table.

    Combines the device injector's :class:`~repro.faults.FaultStats`
    (power cuts, torn writes, remaps) with the memory port's retry
    accounting — the observable cost of every fault the run absorbed.
    On a plain (fault-free) device only the port rows appear.
    """
    fig = FigureData(
        "Fault report",
        f"fault-tolerance counters ({system.scheme.name})",
        ["Counter", "Value"],
    )
    fault_stats = getattr(system.device, "fault_stats", None)
    if fault_stats is not None:
        fig.add_row("power cuts", fault_stats.power_cuts)
        fig.add_row("writes lost (power out)", fault_stats.writes_lost)
        fig.add_row("torn writes", fault_stats.torn_writes)
        fig.add_row("torn words applied", fault_stats.torn_words_applied)
        fig.add_row("torn words dropped", fault_stats.torn_words_dropped)
        fig.add_row(
            "transient read faults", fault_stats.transient_read_faults
        )
        fig.add_row("blocks remapped", fault_stats.remapped_blocks)
        fig.add_row("remap copy bytes", fault_stats.remap_copy_bytes)
        fig.add_row("remapped accesses", fault_stats.remapped_accesses)
    else:
        fig.add_note("fault injection disabled (plain device)")
    port = system.scheme.port.stats
    fig.add_row("read retries", port.read_retries)
    fig.add_row("retry wait (ns)", port.retry_wait_ns)
    fig.add_row("reads failed", port.reads_failed)
    return fig


def telemetry_figure(summary: Dict) -> FigureData:
    """Render a :meth:`Telemetry.summary` dict as a latency report.

    One row per histogram (commit/load/store/GC-pause latencies and
    anything else the run recorded); events, counters, and the per-epoch
    series are compressed into notes.  Percentiles are log2-bucket upper
    bounds — see :mod:`repro.telemetry.metrics`.
    """
    fig = FigureData(
        "Telemetry",
        "latency histograms (simulated ns; log2-bucket upper bounds)",
        ["Histogram", "count", "mean", "p50", "p95", "p99", "max"],
    )
    for name in sorted(summary.get("histograms", {})):
        h = summary["histograms"][name]
        fig.add_row(
            name,
            h["count"],
            h["mean"],
            h["p50"],
            h["p95"],
            h["p99"],
            h["max"],
        )
    events = summary.get("events", {})
    if events:
        by_kind = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(events.get("by_kind", {}).items())
        )
        fig.add_note(
            f"events: total={events.get('total', 0)}"
            f" dropped={events.get('dropped', 0)}"
            + (f" ({by_kind})" if by_kind else "")
        )
    counters = summary.get("counters", {})
    if counters:
        fig.add_note(
            "counters: "
            + ", ".join(
                f"{k}={v}" for k, v in sorted(counters.items())
            )
        )
    series = summary.get("series", {})
    commits = series.get("commits")
    if commits:
        fig.add_note(
            f"commit series: {commits['epochs']} epochs of"
            f" {commits['epoch_ns'] / 1e6:.3f} ms,"
            f" {commits['total']:.0f} commits"
        )
    traffic = series.get("write_bytes")
    if traffic:
        fig.add_note(
            f"write traffic: {traffic['total']:.0f} B over"
            f" {traffic['epochs']} epochs"
        )
    return fig
