"""Markdown link checker for the repo's documentation.

Validates every ``[text](target)`` link in README.md, EXPERIMENTS.md and
``docs/*.md``:

* **relative paths** must exist on disk (anchors checked too when the
  target is a markdown file);
* **intra-document anchors** (``#section``) must match a heading in the
  same file, using GitHub's slug rules (lowercase, spaces to dashes,
  punctuation stripped);
* **external URLs** are *not* fetched — CI must not depend on the
  network — but must at least parse as http(s).

Usage::

    python -m repro.tools.linkcheck            # exit 1 on any broken link
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import List

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]

DOC_GLOBS = ("README.md", "EXPERIMENTS.md", "docs/*.md")

# [text](target) — skips images' leading ! naturally (same syntax), and
# ignores fenced code blocks via pre-stripping.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, punctuation out, spaces to dashes."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # links
    slug = heading.lower()
    slug = re.sub(r"[^\w\- ]", "", slug)
    return slug.replace(" ", "-")


def anchors_of(text: str) -> set:
    """Every heading anchor a document defines."""
    return {github_slug(match) for match in _HEADING_RE.findall(text)}


def doc_files() -> List[pathlib.Path]:
    """The markdown files the gate covers."""
    files: List[pathlib.Path] = []
    for pattern in DOC_GLOBS:
        files.extend(sorted(REPO_ROOT.glob(pattern)))
    return [f for f in files if f.is_file()]


def check_file(path: pathlib.Path) -> List[str]:
    """Broken-link descriptions for one markdown file."""
    text = _FENCE_RE.sub("", path.read_text())
    problems = []
    own_anchors = anchors_of(path.read_text())
    for target in _LINK_RE.findall(text):
        relative = path.relative_to(REPO_ROOT)
        if target.startswith(("http://", "https://")):
            continue
        if target.startswith("mailto:"):
            continue
        if target.startswith("#"):
            if target[1:] not in own_anchors:
                problems.append(f"{relative}: missing anchor {target}")
            continue
        file_part, _, anchor = target.partition("#")
        dest = (path.parent / file_part).resolve()
        if not dest.exists():
            problems.append(f"{relative}: broken path {target}")
            continue
        if anchor and dest.suffix == ".md":
            if github_slug(anchor) not in anchors_of(dest.read_text()):
                problems.append(
                    f"{relative}: missing anchor #{anchor} in {file_part}"
                )
    return problems


def main(argv=None) -> int:
    """CLI body; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.linkcheck",
        description="Offline markdown link checker for repo docs.",
    )
    parser.parse_args(argv)
    files = doc_files()
    problems: List[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(f"BROKEN: {problem}", file=sys.stderr)
    print(
        f"checked {len(files)} file(s):"
        f" {'all links ok' if not problems else f'{len(problems)} broken'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
