"""Operator tooling: live-system introspection and state dumps."""

from repro.tools.inspect import (
    describe_system,
    dump_commit_log,
    dump_mapping_table,
    dump_region,
)

__all__ = [
    "describe_system",
    "dump_region",
    "dump_commit_log",
    "dump_mapping_table",
]
