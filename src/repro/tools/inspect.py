"""Human-readable dumps of a live simulated system.

Debugging a crash-consistency mechanism is archaeology: you want to see
the OOP region's block states, walk a transaction's slice chain, and
check what the mapping table believes — without disturbing any of it.
These helpers read only (device ``peek``, no stats, no timing) and render
text reports; the examples and the test suite use them, and they are the
first thing to reach for when a property test shrinks to a confusing
counterexample.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import CorruptionError
from repro.core import hoop_controllers
from repro.core.controller import HoopController
from repro.core.oop_region import BlockState
from repro.core.slices import (
    KIND_ADDR,
    KIND_DATA,
    SLICE_BYTES,
    SliceCodec,
)
from repro.stats.report import format_table
from repro.txn.system import MemorySystem


def dump_region(controller: HoopController, *, max_blocks: int = 32) -> str:
    """Block states, streams, generations, and slice occupancy."""
    region = controller.region
    rows = []
    shown = 0
    for block in range(region.num_blocks):
        state = region.state_of(block)
        stream = region.stream_of(block)
        if state == BlockState.UNUSED and stream is None:
            continue
        data_slices = addr_slices = torn = 0
        for slice_index in region.iter_block_slices(block):
            raw = controller.port.device.peek(
                region.slice_addr(slice_index), SLICE_BYTES
            )
            kind = SliceCodec.kind_of(raw)
            if kind == KIND_DATA:
                try:
                    controller.codec.decode_data(raw)
                    data_slices += 1
                except CorruptionError:
                    torn += 1
            elif kind == KIND_ADDR:
                try:
                    controller.codec.decode_addr(raw)
                    addr_slices += 1
                except CorruptionError:
                    torn += 1
        rows.append(
            [
                block,
                state.name,
                stream or "-",
                region.generation_of(block),
                data_slices,
                addr_slices,
                torn,
            ]
        )
        shown += 1
        if shown >= max_blocks:
            rows.append(["...", "", "", "", "", "", ""])
            break
    return format_table(
        ["block", "state", "stream", "gen", "data", "addr", "torn"], rows
    )


def dump_commit_log(controller: HoopController, *, max_txs: int = 20) -> str:
    """Live committed transactions and their chain shapes."""
    rows = []
    for tx in controller.commit_log.committed_transactions()[:max_txs]:
        chain_len = 0
        words = 0
        for tail in tx.segment_tails:
            cursor: Optional[int] = tail
            total = (
                controller.region.num_blocks
                * controller.region.slots_per_block
            )
            while cursor is not None and chain_len < 10_000:
                raw = controller.port.device.peek(
                    controller.region.slice_addr(cursor), SLICE_BYTES
                )
                try:
                    ds = controller.codec.decode_data(raw)
                except CorruptionError:
                    break
                if ds.tx_id != tx.tx_id:
                    break
                chain_len += 1
                words += len(ds.words)
                cursor = (
                    None
                    if ds.prev_delta is None
                    else (cursor - ds.prev_delta) % total
                )
        rows.append(
            [tx.tx_id, len(tx.segment_tails), chain_len, words]
        )
    return format_table(["tx", "segments", "slices", "words"], rows)


def dump_mapping_table(
    controller: HoopController, *, max_lines: int = 20
) -> str:
    """Tracked lines and where their newest words live."""
    rows = []
    for line in sorted(controller.mapping.tracked_lines())[:max_lines]:
        words = controller.mapping.lookup_line(line) or {}
        in_buffer = sum(1 for loc in words.values() if loc.in_buffer)
        slices = {
            loc.slice_index
            for loc in words.values()
            if not loc.in_buffer
        }
        rows.append(
            [f"{line:#x}", len(words), in_buffer, len(slices)]
        )
    return format_table(
        ["line", "words", "buffered", "distinct slices"], rows
    )


def describe_system(system: MemorySystem) -> str:
    """One-page status report of a live system."""
    device = system.device
    sections = [
        f"scheme: {system.scheme.name}",
        f"committed transactions: {system.committed_transactions}",
        f"simulated time: {system.now_ns / 1e6:.3f} ms",
        f"NVM written: {device.stats.bytes_written} B,"
        f" read: {device.stats.bytes_read} B",
        f"energy: {device.energy.total_pj / 1e6:.3f} uJ",
        f"LLC miss ratio: {system.hierarchy.stats.llc_miss_ratio:.3f}",
    ]
    for i, controller in enumerate(hoop_controllers(system)):
        gc = controller.gc.stats
        sections.append(
            f"controller {i}: mapping={controller.mapping.entries} entries,"
            f" commit-log live={controller.commit_log.live_count},"
            f" GC passes={gc.passes}"
            f" (reduction {gc.data_reduction_ratio:.2f}),"
            f" free blocks={controller.region.free_block_count()}"
            f"/{controller.region.num_blocks}"
        )
    return "\n".join(sections)
