"""Docstring-coverage gate (ratchet-only).

Walks every module under ``src/repro`` with :mod:`ast` and counts which
public definitions (modules, classes, functions, methods — names not
starting with ``_``, plus ``__init__`` exempted as covered by its class)
carry a docstring.  Coverage is compared per-module against the recorded
baseline in ``docs/docstring_baseline.json``: a module may gain
docstrings freely, but dropping below its recorded coverage fails the
gate — the ratchet only ever tightens.  New modules must enter at 100%.

Usage::

    python -m repro.tools.doccheck            # gate against the baseline
    python -m repro.tools.doccheck --update   # re-record the baseline

Run ``--update`` after deliberately improving coverage so the new level
becomes the floor.
"""

from __future__ import annotations

import argparse
import ast
import json
import pathlib
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
SOURCE_ROOT = REPO_ROOT / "src" / "repro"
BASELINE_PATH = REPO_ROOT / "docs" / "docstring_baseline.json"


@dataclass
class ModuleReport:
    """Docstring counts for one module."""

    module: str
    documented: int = 0
    total: int = 0
    missing: List[str] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        """Documented fraction; an empty module counts as covered."""
        return 1.0 if not self.total else self.documented / self.total


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _walk_definitions(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    """(dotted name, node) for the module and every public def/class."""
    out: List[Tuple[str, ast.AST]] = [("<module>", tree)]

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = child.name
                # __init__ is documented by its class; other dunders and
                # private helpers are exempt.
                if not _is_public(name):
                    continue
                dotted = f"{prefix}{name}"
                out.append((dotted, child))
                if isinstance(child, ast.ClassDef):
                    visit(child, f"{dotted}.")

    visit(tree, "")
    return out


def scan_module(path: pathlib.Path) -> ModuleReport:
    """Docstring coverage of one source file."""
    relative = path.relative_to(SOURCE_ROOT.parent)
    module = str(relative.with_suffix("")).replace("/", ".")
    if module.endswith(".__init__"):
        module = module[: -len(".__init__")]
    report = ModuleReport(module=module)
    tree = ast.parse(path.read_text())
    for name, node in _walk_definitions(tree):
        report.total += 1
        if ast.get_docstring(node):
            report.documented += 1
        else:
            report.missing.append(name)
    return report


def scan_tree() -> Dict[str, ModuleReport]:
    """Scan every module under ``src/repro``."""
    reports = {}
    for path in sorted(SOURCE_ROOT.rglob("*.py")):
        report = scan_module(path)
        reports[report.module] = report
    return reports


def check_against_baseline(
    reports: Dict[str, ModuleReport], baseline: Dict[str, float]
) -> List[str]:
    """Ratchet violations; empty means the gate passes."""
    problems = []
    for module, report in reports.items():
        floor = baseline.get(module)
        if floor is None:
            if report.coverage < 1.0:
                problems.append(
                    f"{module}: new module enters at"
                    f" {report.coverage:.0%}, must be 100%"
                    f" (missing: {', '.join(report.missing)})"
                )
            continue
        # Small epsilon so re-recorded floats never trip the gate.
        if report.coverage < floor - 1e-9:
            problems.append(
                f"{module}: coverage {report.coverage:.1%} fell below"
                f" recorded floor {floor:.1%}"
                f" (missing: {', '.join(report.missing) or '-'})"
            )
    return problems


def main(argv=None) -> int:
    """CLI body; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.doccheck",
        description="Ratchet-only docstring-coverage gate.",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="re-record docs/docstring_baseline.json at current coverage",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="list per-module coverage"
    )
    args = parser.parse_args(argv)

    reports = scan_tree()
    total = sum(r.total for r in reports.values())
    documented = sum(r.documented for r in reports.values())
    if args.verbose:
        for module, report in sorted(reports.items()):
            print(
                f"{report.coverage:6.1%}  {module}"
                f"  ({report.documented}/{report.total})"
            )
    print(
        f"docstring coverage: {documented}/{total}"
        f" ({documented / total:.1%}) across {len(reports)} modules"
    )

    if args.update:
        # Truncate, never round up: the recorded floor must not exceed
        # the true ratio (2/3 rounded to 0.6667 would instantly trip).
        payload = {
            module: int(report.coverage * 10000) / 10000
            for module, report in sorted(reports.items())
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"baseline recorded to {BASELINE_PATH}")
        return 0

    if not BASELINE_PATH.exists():
        print(
            f"no baseline at {BASELINE_PATH}; run with --update first",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    problems = check_against_baseline(reports, baseline)
    for problem in problems:
        print(f"RATCHET: {problem}", file=sys.stderr)
    if problems:
        return 1
    print("ratchet holds: no module regressed below its floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
