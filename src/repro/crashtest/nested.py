"""Nested-fault sweep: crash the crash recovery (and GC) too.

The forward sweep (:mod:`repro.crashtest`) injects power loss during
normal execution and then lets recovery run on healthy hardware.  Real
NVM recovery must itself survive power loss and media errors and be
idempotent on re-execution — the property NVTraverse demands of its
post-crash fix-up traversals and optimistic persistent buffer managers
require of their redo passes.  This module sweeps exactly that:

* **recovery phase** — for sampled forward boundaries, crash the run,
  snapshot the crashed machine (``repro.snapshot``), probe how many
  mutation ops (home-region pokes *and* timed metadata writes — log
  headers, slot rewrites, region clears) one recovery pass performs,
  then re-crash recovery at sampled op boundaries (clean or torn) and
  re-run it until it converges;
* **gc phase** — run the workload to completion, snapshot, then cut the
  power at sampled write boundaries inside the GC/coalescing pass
  (``quiesce``), recover, and verify no home-region or OOP copy of a
  committed word was lost;
* **gc-media phase** — rearm the device with a transient-read burst and
  drive the same GC pass through the port's bounded retry path.

Every case ends with the atomic-durability oracle *and* an idempotence
oracle: after the first converged recovery, ``k`` further
crash+recover cycles must leave the durable NVM image bit-identical
(compared by :meth:`~repro.nvm.device.NVMDevice.content_fingerprint`).

Sweep state is resumable: verdicts are journaled to a JSON state file
after every case, and ``--resume`` skips cases already decided — the
nested boundary product is much larger than the forward sweep's.

CLI: ``python -m repro.crashtest --nested`` (see ``--forward-sample``,
``--nested-sample``, ``--gc-sample``, ``--resume``).
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from dataclasses import dataclass, field
from dataclasses import replace as _dc_replace
from typing import Dict, List, Optional, Tuple

from repro.common.config import FaultConfig
from repro.common.errors import MediaError, PowerLossError
from repro.crashtest import (
    SWEEP_SCHEMES,
    RunOutcome,
    _probe_and_checkpoint,
    _torn_for,
    build_crashed_cold,
    build_crashed_incremental,
    choose_boundaries,
    count_write_boundaries,
    verify_atomic_durability,
)
from repro.faults.plan import CrashArtifact, save_artifact
from repro.snapshot import capture, checkpoint_cadence, snapshots_enabled
from repro.snapshot.replay import CheckpointChain
from repro.txn.system import MemorySystem

# The nested sweep covers every registered persistence scheme — the
# forward vocabulary plus the multi-controller build (native has no
# recovery protocol to crash).
NESTED_SCHEMES: Dict[str, str] = dict(SWEEP_SCHEMES)
NESTED_SCHEMES["hoopmc"] = "hoop-mc"

# A recovery that needs more attempts than this never converges under a
# single armed nested fault (one interrupted attempt + one clean rerun
# is the expected shape; the slack absorbs Nth-fault extensions).
MAX_RECOVERY_ATTEMPTS = 5

# Probe budget: large enough that no recovery pass exhausts it.
_PROBE_OPS = 1 << 30

# Media-burst parameters for the gc-media phase.
_MEDIA_RATE = 0.2
_MEDIA_RETRIES = 8

STATE_VERSION = 1


def resolve_nested_schemes(spec: str) -> List[str]:
    """Expand a ``--schemes`` argument against the nested vocabulary."""
    if spec == "all":
        return list(NESTED_SCHEMES.values())
    names = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        names.append(NESTED_SCHEMES.get(token, token))
    if not names:
        raise ValueError("no schemes selected")
    return names


@dataclass
class NestedCaseResult:
    """One verified nested-fault case."""

    phase: str  # "recovery", "gc", or "gc-media"
    forward_boundary: Optional[int]  # timed-write boundary of cut #1
    nested_boundary: Optional[int]  # recovery-op budget of cut #2
    torn: bool  # cut #1 torn?
    nested_torn: bool  # cut #2 torn?
    attempts: int  # recovery attempts until convergence
    failure: Optional[str]
    fingerprint: str

    def key(self) -> str:
        """Stable identity of this case inside one sweep's parameters."""
        return (
            f"{self.phase}:{self.forward_boundary}:{self.nested_boundary}"
            f":{int(self.torn)}:{int(self.nested_torn)}"
        )

    def to_dict(self) -> dict:
        """JSON-safe dict for the sweep-state journal."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "NestedCaseResult":
        """Rebuild from :meth:`to_dict` output; unknown keys ignored."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class NestedSweepResult:
    """All cases of one scheme's nested sweep."""

    scheme: str
    total_writes: int
    recovery_ops_probed: int = 0
    cases: List[NestedCaseResult] = field(default_factory=list)
    skipped: int = 0  # cases satisfied from resumed state

    @property
    def failures(self) -> List[NestedCaseResult]:
        """The cases whose oracle (durability or idempotence) failed."""
        return [c for c in self.cases if c.failure]


class SweepState:
    """Journal of decided cases, written after every verdict.

    The file is rewritten atomically (temp + rename), so a killed sweep
    leaves a loadable journal; ``--resume`` skips every recorded case
    whose sweep parameters match exactly and re-runs the rest.
    """

    def __init__(self, path, params: dict) -> None:
        self.path = pathlib.Path(path) if path else None
        self.params = params
        self.cases: Dict[str, Dict[str, dict]] = {}

    @classmethod
    def open(cls, path, params: dict, *, resume: bool) -> "SweepState":
        """Create (or resume) the journal at ``path``.

        Resuming against a journal written with different sweep
        parameters is an error — its verdicts answer different cases.
        """
        state = cls(path, params)
        if not resume or state.path is None or not state.path.exists():
            return state
        payload = json.loads(state.path.read_text())
        if payload.get("version") != STATE_VERSION:
            raise ValueError(
                f"state file {path} has version {payload.get('version')}, "
                f"expected {STATE_VERSION}"
            )
        if payload.get("params") != params:
            raise ValueError(
                f"state file {path} was written by a sweep with different "
                f"parameters; rerun without --resume (or delete it)"
            )
        state.cases = payload.get("cases", {})
        return state

    def lookup(self, scheme: str, key: str) -> Optional[NestedCaseResult]:
        """A previously journaled verdict for this case, if any."""
        payload = self.cases.get(scheme, {}).get(key)
        if payload is None:
            return None
        return NestedCaseResult.from_dict(payload)

    def record(self, scheme: str, case: NestedCaseResult) -> None:
        """Journal one verdict and flush the file immediately."""
        self.cases.setdefault(scheme, {})[case.key()] = case.to_dict()
        self.save()

    def save(self) -> None:
        """Atomically rewrite the journal (write temp, then rename)."""
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(
            json.dumps(
                {
                    "version": STATE_VERSION,
                    "params": self.params,
                    "cases": self.cases,
                },
                indent=1,
                sort_keys=True,
            )
        )
        os.replace(tmp, self.path)


class SweepBudgetExhausted(Exception):
    """Raised internally when ``--max-cases`` new verdicts were computed."""


# -- the per-case machinery ---------------------------------------------------


def converge_recovery(
    system: MemorySystem,
    *,
    threads: int = 2,
    max_attempts: int = MAX_RECOVERY_ATTEMPTS,
) -> Tuple[int, Optional[str]]:
    """Re-run recovery through nested power cuts until it completes.

    The system must already be crashed.  Each interrupted attempt goes
    through ``crash()`` (which restores power and disarms the fired
    budget) and retries; returns ``(attempts, failure)`` where a
    non-None failure means recovery never converged.
    """
    attempts = 0
    while True:
        attempts += 1
        if attempts > max_attempts:
            return attempts - 1, (
                f"recovery did not converge within {max_attempts} attempts"
            )
        try:
            system.recover(threads=threads)
            return attempts, None
        except PowerLossError:
            system.crash()


def check_idempotence(
    system: MemorySystem,
    fingerprint: str,
    *,
    threads: int = 2,
    k: int = 2,
) -> Optional[str]:
    """Crash + recover ``k`` more times; durable state must not move."""
    for cycle in range(1, k + 1):
        system.crash()
        system.recover(threads=threads)
        now = system.device.content_fingerprint()
        if now != fingerprint:
            return (
                f"recovery not idempotent: durable fingerprint diverged "
                f"on re-run {cycle} of {k}"
            )
    return None


def probe_recovery_ops(system: MemorySystem, *, threads: int = 2) -> int:
    """How many mutation ops one full recovery of this crashed system does.

    Arms an effectively-infinite recovery budget (so both mutation
    planes are counted without firing) and runs recovery to completion;
    the consumed count is the nested sweep's boundary population.
    """
    system.device.injector.arm_recovery_fault(after_ops=_PROBE_OPS)
    system.recover(threads=threads)
    ops = system.device.injector.stats.recovery_ops
    system.device.injector.restore_power()
    return ops


def run_nested_recovery_case(
    system: MemorySystem,
    outcome: RunOutcome,
    *,
    phase: str,
    forward_boundary: Optional[int],
    nested_boundary: Optional[int],
    torn: bool,
    nested_torn: bool,
    threads: int = 2,
    idempotence_k: int = 2,
) -> NestedCaseResult:
    """Verdict tail of one nested case.

    ``system`` must already be crashed.  Arms the nested fault (if any),
    converges recovery, checks atomic durability against the outcome's
    oracle, then the idempotence oracle.
    """
    if nested_boundary is not None:
        system.device.injector.arm_recovery_fault(
            after_ops=nested_boundary, torn=nested_torn
        )
    attempts, failure = converge_recovery(system, threads=threads)
    if failure is None:
        failure = verify_atomic_durability(
            system, outcome.oracle, outcome.staged
        )
    fingerprint = system.device.content_fingerprint()
    if failure is None:
        failure = check_idempotence(
            system, fingerprint, threads=threads, k=idempotence_k
        )
    return NestedCaseResult(
        phase=phase,
        forward_boundary=forward_boundary,
        nested_boundary=nested_boundary,
        torn=torn,
        nested_torn=nested_torn,
        attempts=attempts,
        failure=failure,
        fingerprint=fingerprint,
    )


class _CrashedFactory:
    """Reproduces the crashed machine of one forward boundary on demand.

    With snapshots enabled the crashed state is captured once and every
    nested case restores a bit-identical clone; with
    ``REPRO_SNAPSHOT_DISABLE=1`` each case re-runs the workload cold —
    verdicts are identical either way (the same equivalence the forward
    sweep's CI smoke checks).
    """

    def __init__(
        self,
        scheme: str,
        faults: FaultConfig,
        *,
        seed: int,
        transactions: int,
        addresses: int,
        chain: Optional[CheckpointChain],
        txns,
    ) -> None:
        self.scheme = scheme
        self.faults = faults
        self.seed = seed
        self.transactions = transactions
        self.addresses = addresses
        self._chain = chain
        self._txns = txns
        self._snapshot = None
        self.outcome: Optional[RunOutcome] = None
        if snapshots_enabled():
            system, self.outcome = self._build()
            system.crash()
            self._snapshot = capture(system)

    def _build(self) -> Tuple[MemorySystem, RunOutcome]:
        boundary = self.faults.power_loss_after_write
        if self._chain is not None and boundary is not None:
            pair = build_crashed_incremental(
                self.faults,
                boundary=boundary,
                chain=self._chain,
                txns=self._txns,
            )
            if pair is not None:
                return pair
        return build_crashed_cold(
            self.scheme,
            self.faults,
            seed=self.seed,
            transactions=self.transactions,
            addresses=self.addresses,
        )

    def make(self) -> Tuple[MemorySystem, RunOutcome]:
        """A fresh crashed system (plus outcome) for one nested case."""
        if self._snapshot is not None:
            return self._snapshot.restore(), self.outcome
        system, outcome = self._build()
        system.crash()
        return system, outcome


class _QuiescedFactory:
    """Reproduces the completed-workload machine for the GC phases."""

    def __init__(
        self,
        scheme: str,
        faults: FaultConfig,
        *,
        seed: int,
        transactions: int,
        addresses: int,
    ) -> None:
        self.scheme = scheme
        self.faults = faults
        self.seed = seed
        self.transactions = transactions
        self.addresses = addresses
        self._snapshot = None
        self.outcome: Optional[RunOutcome] = None
        self.base_writes = 0
        system, outcome = self._build()
        self.outcome = outcome
        self.base_writes = system.device.stats.writes
        if snapshots_enabled():
            self._snapshot = capture(system)

    def _build(self) -> Tuple[MemorySystem, RunOutcome]:
        system, outcome = build_crashed_cold(
            self.scheme,
            self.faults,
            seed=self.seed,
            transactions=self.transactions,
            addresses=self.addresses,
        )
        assert not outcome.power_lost
        return system, outcome

    def make(self) -> Tuple[MemorySystem, RunOutcome]:
        """A fresh completed-workload system, GC not yet run."""
        if self._snapshot is not None:
            return self._snapshot.restore(), self.outcome
        return self._build()


# -- the sweep ----------------------------------------------------------------


def sweep_params(
    *,
    seed: int,
    transactions: int,
    addresses: int,
    forward_sample: int,
    nested_sample: int,
    gc_sample: int,
    torn_mode: str,
    recovery_threads: int,
    idempotence_k: int,
) -> dict:
    """The parameter fingerprint a resumable state file is keyed by."""
    return {
        "seed": seed,
        "transactions": transactions,
        "addresses": addresses,
        "forward_sample": forward_sample,
        "nested_sample": nested_sample,
        "gc_sample": gc_sample,
        "torn_mode": torn_mode,
        "recovery_threads": recovery_threads,
        "idempotence_k": idempotence_k,
    }


def nested_sweep_scheme(
    scheme: str,
    *,
    seed: int = 7,
    transactions: int = 48,
    addresses: int = 12,
    forward_sample: int = 5,
    nested_sample: int = 4,
    gc_sample: int = 6,
    torn_mode: str = "alternate",
    recovery_threads: int = 2,
    idempotence_k: int = 2,
    artifact_dir: Optional[str] = None,
    state: Optional[SweepState] = None,
    max_new_cases: int = 0,
    progress=None,
) -> NestedSweepResult:
    """Run the nested-fault sweep for one scheme.

    Phase 1 (recovery): for ``forward_sample`` forward write boundaries,
    crash, probe the recovery-op count, and re-crash recovery at
    ``nested_sample`` op boundaries each.  Phase 2 (gc): cut the power
    at ``gc_sample`` write boundaries inside the post-workload GC pass.
    Phase 3 (gc-media): drive the same GC pass under a transient-read
    burst.  Every case checks atomic durability plus ``idempotence_k``
    extra crash+recover cycles for bit-identical durable state.

    ``state`` (a :class:`SweepState`) makes the sweep resumable;
    ``max_new_cases`` (>0) stops after that many fresh verdicts by
    raising through — callers treat it as a clean early exit.
    """
    result, _ = _nested_sweep_counted(
        scheme,
        seed=seed,
        transactions=transactions,
        addresses=addresses,
        forward_sample=forward_sample,
        nested_sample=nested_sample,
        gc_sample=gc_sample,
        torn_mode=torn_mode,
        recovery_threads=recovery_threads,
        idempotence_k=idempotence_k,
        artifact_dir=artifact_dir,
        state=state,
        budget=[max_new_cases] if max_new_cases > 0 else None,
        progress=progress,
    )
    return result


def _nested_sweep_counted(
    scheme: str,
    *,
    seed: int,
    transactions: int,
    addresses: int,
    forward_sample: int,
    nested_sample: int,
    gc_sample: int,
    torn_mode: str,
    recovery_threads: int,
    idempotence_k: int,
    artifact_dir: Optional[str],
    state: Optional[SweepState],
    budget: Optional[List[int]],
    progress=None,
) -> Tuple[NestedSweepResult, bool]:
    """Sweep body; returns ``(result, exhausted)``.

    ``budget`` is a shared one-element countdown of new verdicts across
    schemes (``None`` = unlimited); ``exhausted`` reports whether it ran
    out mid-sweep (the CLI's ``--max-cases`` smoke/resume hook).
    """

    def _settle(case_key: str, compute) -> Tuple[NestedCaseResult, bool]:
        """Resume-aware case execution: journal hit, or compute+record."""
        if state is not None:
            cached = state.lookup(scheme, case_key)
            if cached is not None:
                return cached, True
        if budget is not None and budget[0] <= 0:
            raise SweepBudgetExhausted()
        case = compute()
        assert case.key() == case_key, (case.key(), case_key)
        if budget is not None:
            budget[0] -= 1
        if state is not None:
            state.record(scheme, case)
        _report_case(
            scheme,
            case,
            artifact_dir,
            progress,
            seed=seed,
            transactions=transactions,
            addresses=addresses,
            recovery_threads=recovery_threads,
            idempotence_k=idempotence_k,
        )
        return case, False

    # Probe the forward run (and lay checkpoints when snapshots are on).
    chain: Optional[CheckpointChain] = None
    txns = []
    if snapshots_enabled():
        cadence = checkpoint_cadence(max(1, transactions // 8))
        total, txns, chain = _probe_and_checkpoint(
            scheme,
            seed=seed,
            transactions=transactions,
            addresses=addresses,
            cadence=cadence,
        )
    else:
        total = count_write_boundaries(
            scheme, seed=seed, transactions=transactions, addresses=addresses
        )
    result = NestedSweepResult(scheme=scheme, total_writes=total)
    exhausted = False

    try:
        # -- phase 1: crash during recovery ---------------------------------
        forward_boundaries = choose_boundaries(total, forward_sample, seed)
        for boundary in forward_boundaries:
            torn = _torn_for(boundary, torn_mode)
            faults = FaultConfig(
                enabled=True,
                seed=seed ^ (boundary << 8),
                power_loss_after_write=boundary,
                torn=torn,
            )
            factory = _CrashedFactory(
                scheme,
                faults,
                seed=seed,
                transactions=transactions,
                addresses=addresses,
                chain=chain,
                txns=txns,
            )
            # Probe: ops one clean recovery performs from this state.
            probe_sys, probe_outcome = factory.make()
            ops = probe_recovery_ops(probe_sys, threads=recovery_threads)
            result.recovery_ops_probed = max(result.recovery_ops_probed, ops)
            nested_boundaries: List[Optional[int]]
            if ops > 0:
                # choose_boundaries samples 1..ops; budget j-1 makes the
                # j-th recovery op the cut instant.
                nested_boundaries = [
                    j - 1
                    for j in choose_boundaries(
                        ops, nested_sample, seed ^ (boundary << 4)
                    )
                ]
            else:
                # Recovery performs no mutations (e.g. LAD): nothing to
                # cut, but convergence + idempotence still get checked.
                nested_boundaries = [None]
            for after_ops in nested_boundaries:
                nested_torn = (
                    _torn_for(after_ops + 1, torn_mode)
                    if after_ops is not None
                    else False
                )
                probe_key = NestedCaseResult(
                    "recovery", boundary, after_ops, torn, nested_torn,
                    0, None, "",
                ).key()

                def _compute(
                    after_ops=after_ops,
                    nested_torn=nested_torn,
                    boundary=boundary,
                    torn=torn,
                    factory=factory,
                ):
                    system, outcome = factory.make()
                    return run_nested_recovery_case(
                        system,
                        outcome,
                        phase="recovery",
                        forward_boundary=boundary,
                        nested_boundary=after_ops,
                        torn=torn,
                        nested_torn=nested_torn,
                        threads=recovery_threads,
                        idempotence_k=idempotence_k,
                    )

                case, from_state = _settle(probe_key, _compute)
                result.cases.append(case)
                result.skipped += int(from_state)

        # -- phase 2: crash during GC / coalescing --------------------------
        clean = FaultConfig(enabled=True, seed=seed)
        quiesced = _QuiescedFactory(
            scheme,
            clean,
            seed=seed,
            transactions=transactions,
            addresses=addresses,
        )
        gc_probe, _ = quiesced.make()
        gc_probe.scheme.quiesce(gc_probe.now_ns)
        gc_writes = gc_probe.device.stats.writes - quiesced.base_writes
        if gc_writes > 0:
            for boundary in choose_boundaries(
                gc_writes, gc_sample, seed ^ 0x6C
            ):
                torn = _torn_for(boundary, torn_mode)
                gc_key = NestedCaseResult(
                    "gc", boundary, None, torn, False, 0, None, ""
                ).key()

                def _compute_gc(boundary=boundary, torn=torn):
                    system, outcome = quiesced.make()
                    system.device.injector.arm_power_loss(
                        after_writes=boundary - 1, torn=torn
                    )
                    try:
                        system.scheme.quiesce(system.now_ns)
                    except PowerLossError:
                        pass
                    system.crash()
                    return run_nested_recovery_case(
                        system,
                        outcome,
                        phase="gc",
                        forward_boundary=boundary,
                        nested_boundary=None,
                        torn=torn,
                        nested_torn=False,
                        threads=recovery_threads,
                        idempotence_k=idempotence_k,
                    )

                case, from_state = _settle(gc_key, _compute_gc)
                result.cases.append(case)
                result.skipped += int(from_state)

        # -- phase 3: media-error burst during GC ---------------------------
        media_key = NestedCaseResult(
            "gc-media", None, None, False, False, 0, None, ""
        ).key()

        def _compute_media():
            system, outcome = quiesced.make()
            system.device.rearm(
                _dc_replace(
                    clean,
                    read_error_rate=_MEDIA_RATE,
                    max_read_retries=_MEDIA_RETRIES,
                )
            )
            failure = None
            try:
                system.scheme.quiesce(system.now_ns)
            except MediaError as exc:
                failure = f"media burst not absorbed by retries: {exc}"
            system.crash()
            case = run_nested_recovery_case(
                system,
                outcome,
                phase="gc-media",
                forward_boundary=None,
                nested_boundary=None,
                torn=False,
                nested_torn=False,
                threads=recovery_threads,
                idempotence_k=idempotence_k,
            )
            if failure is not None and case.failure is None:
                case.failure = failure
            return case

        case, from_state = _settle(media_key, _compute_media)
        result.cases.append(case)
        result.skipped += int(from_state)
    except SweepBudgetExhausted:
        exhausted = True

    return result, exhausted


def _report_case(
    scheme: str,
    case: NestedCaseResult,
    artifact_dir: Optional[str],
    progress,
    *,
    seed: int,
    transactions: int,
    addresses: int,
    recovery_threads: int,
    idempotence_k: int,
) -> None:
    """Print + persist a failing case as a replayable artifact."""
    if not case.failure:
        return
    if progress:
        progress(
            f"  FAIL {scheme} [{case.phase}] fwd={case.forward_boundary}"
            f" nested={case.nested_boundary}"
            f"{' torn' if case.torn else ''}: {case.failure}"
        )
    if artifact_dir:
        path = save_artifact(
            nested_case_artifact(
                scheme,
                case,
                seed=seed,
                transactions=transactions,
                addresses=addresses,
                recovery_threads=recovery_threads,
                idempotence_k=idempotence_k,
            ),
            f"{artifact_dir}/nested_{scheme}_{case.phase}"
            f"_f{case.forward_boundary}_n{case.nested_boundary}.json",
        )
        if progress:
            progress(f"  artifact written: {path}")


def nested_case_artifact(
    scheme: str,
    case: NestedCaseResult,
    *,
    seed: int = 7,
    transactions: int = 48,
    addresses: int = 12,
    recovery_threads: int = 2,
    idempotence_k: int = 2,
) -> CrashArtifact:
    """Fault-plan artifact for one nested case (``--replay`` input)."""
    if case.phase == "gc-media":
        faults = FaultConfig(
            enabled=True,
            seed=seed,
            read_error_rate=_MEDIA_RATE,
            max_read_retries=_MEDIA_RETRIES,
        )
    elif case.phase == "gc":
        faults = FaultConfig(enabled=True, seed=seed, torn=case.torn)
    else:
        faults = FaultConfig(
            enabled=True,
            seed=seed ^ (case.forward_boundary << 8),
            power_loss_after_write=case.forward_boundary,
            torn=case.torn,
        )
    return CrashArtifact(
        scheme=scheme,
        faults=faults,
        workload_seed=seed,
        transactions=transactions,
        addresses=addresses,
        recovery_threads=recovery_threads,
        failure=case.failure,
        fingerprint=case.fingerprint,
        phase=case.phase,
        nested_after_ops=case.nested_boundary,
        nested_torn=case.nested_torn,
        idempotence_k=idempotence_k,
        notes=(
            ["gc boundary counts writes after the workload completed"]
            if case.phase in ("gc", "gc-media")
            else []
        )
        + (
            [f"gc write boundary {case.forward_boundary}"]
            if case.phase == "gc"
            else []
        ),
    )


def replay_nested_artifact(artifact: CrashArtifact) -> NestedCaseResult:
    """Re-run one saved nested case cold; caller compares outcomes."""
    if artifact.phase == "recovery":
        system, outcome = build_crashed_cold(
            artifact.scheme,
            artifact.faults,
            seed=artifact.workload_seed,
            transactions=artifact.transactions,
            addresses=artifact.addresses,
        )
        system.crash()
        return run_nested_recovery_case(
            system,
            outcome,
            phase="recovery",
            forward_boundary=artifact.faults.power_loss_after_write,
            nested_boundary=artifact.nested_after_ops,
            torn=artifact.faults.torn,
            nested_torn=artifact.nested_torn,
            threads=artifact.recovery_threads,
            idempotence_k=artifact.idempotence_k,
        )
    if artifact.phase in ("gc", "gc-media"):
        clean = _dc_replace(
            artifact.faults,
            read_error_rate=0.0,
            max_read_retries=3,
            power_loss_after_write=None,
        )
        system, outcome = build_crashed_cold(
            artifact.scheme,
            clean,
            seed=artifact.workload_seed,
            transactions=artifact.transactions,
            addresses=artifact.addresses,
        )
        failure = None
        gc_boundary = None
        if artifact.phase == "gc-media":
            system.device.rearm(artifact.faults)
            try:
                system.scheme.quiesce(system.now_ns)
            except MediaError as exc:
                failure = f"media burst not absorbed by retries: {exc}"
        else:
            # The note records the boundary as GC-relative writes; the
            # forward run is clean, so arm the residual directly.
            for note in artifact.notes:
                if note.startswith("gc write boundary "):
                    gc_boundary = int(note.rsplit(" ", 1)[1])
            if gc_boundary is None:
                raise ValueError("gc artifact missing its boundary note")
            system.device.injector.arm_power_loss(
                after_writes=gc_boundary - 1, torn=artifact.faults.torn
            )
            try:
                system.scheme.quiesce(system.now_ns)
            except PowerLossError:
                pass
        system.crash()
        case = run_nested_recovery_case(
            system,
            outcome,
            phase=artifact.phase,
            forward_boundary=(
                None if artifact.phase == "gc-media" else gc_boundary
            ),
            nested_boundary=None,
            torn=artifact.faults.torn if artifact.phase == "gc" else False,
            nested_torn=False,
            threads=artifact.recovery_threads,
            idempotence_k=artifact.idempotence_k,
        )
        if failure is not None and case.failure is None:
            case.failure = failure
        return case
    raise ValueError(f"not a nested artifact (phase={artifact.phase!r})")
