"""CLI: systematic crash-point sweep (`python -m repro.crashtest`).

Usage::

    python -m repro.crashtest --schemes all --sample 200 --seed 7
    python -m repro.crashtest --schemes hoop,undo --sample 0   # exhaustive
    python -m repro.crashtest --replay crashtest_artifacts/crash_hoop_w12.json
    python -m repro.crashtest --nested --schemes all            # crash recovery too
    python -m repro.crashtest --nested --resume                 # continue a sweep

Exit status is non-zero when any case fails (or a replay diverges from
its recorded outcome); failing cases are saved under ``--artifact-dir``
as fault-plan JSON that ``--replay`` re-runs exactly.  ``--nested``
switches to the nested-fault sweep (:mod:`repro.crashtest.nested`):
crash-during-recovery, crash-during-GC, media bursts during GC, and the
recovery-idempotence oracle, with a resumable state journal.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import crashtest
from repro.crashtest import nested
from repro.faults.plan import load_artifact


def _dump_profile(profiler, args) -> str:
    """Write the sweep's cProfile stats under the artifact directory."""
    import io
    import pathlib
    import pstats

    out_dir = pathlib.Path(args.artifact_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    out = out_dir / "crashtest_profile.txt"
    text = io.StringIO()
    stats = pstats.Stats(profiler, stream=text)
    stats.sort_stats("cumulative").print_stats(40)
    out.write_text(text.getvalue())
    return str(out)


def _replay_nested(args, artifact) -> int:
    """Replay one nested artifact; mirror the forward replay contract."""
    case = nested.replay_nested_artifact(artifact)
    same = case.failure == artifact.failure and (
        not artifact.fingerprint
        or case.fingerprint == artifact.fingerprint
    )
    print(
        f"[crashtest] nested replay {args.replay}:"
        f" scheme={artifact.scheme} phase={artifact.phase}"
        f" fwd={artifact.faults.power_loss_after_write}"
        f" nested={artifact.nested_after_ops}"
    )
    print(f"[crashtest]   recorded: {artifact.failure or 'pass'}")
    print(f"[crashtest]   replayed: {case.failure or 'pass'}")
    if not same:
        print("[crashtest] REPLAY DIVERGED", file=sys.stderr)
        return 1
    print("[crashtest] replay reproduced the recorded outcome")
    return 2 if case.failure else 0


def _main_nested(args) -> int:
    """The ``--nested`` sweep driver."""
    import json
    import pathlib

    schemes = nested.resolve_nested_schemes(args.schemes)
    state_path = args.state or str(
        pathlib.Path(args.artifact_dir) / "nested_state.json"
    )
    params = nested.sweep_params(
        seed=args.seed,
        transactions=args.transactions,
        addresses=args.addresses,
        forward_sample=args.forward_sample,
        nested_sample=args.nested_sample,
        gc_sample=args.gc_sample,
        torn_mode=args.torn,
        recovery_threads=args.threads,
        idempotence_k=args.idempotence_k,
    )
    state = nested.SweepState.open(state_path, params, resume=args.resume)
    budget = [args.max_cases] if args.max_cases > 0 else None
    any_failures = False
    exhausted = False
    grand_cases = 0
    verdicts = {}
    started = time.time()
    for scheme in schemes:
        t0 = time.time()
        result, ran_dry = nested._nested_sweep_counted(
            scheme,
            seed=args.seed,
            transactions=args.transactions,
            addresses=args.addresses,
            forward_sample=args.forward_sample,
            nested_sample=args.nested_sample,
            gc_sample=args.gc_sample,
            torn_mode=args.torn,
            recovery_threads=args.threads,
            idempotence_k=args.idempotence_k,
            artifact_dir=args.artifact_dir,
            state=state,
            budget=budget,
            progress=print,
        )
        exhausted = exhausted or ran_dry
        grand_cases += len(result.cases)
        failures = result.failures
        any_failures = any_failures or bool(failures)
        if args.verdicts:
            verdicts[scheme] = {
                "total_writes": result.total_writes,
                "recovery_ops": result.recovery_ops_probed,
                "cases": [
                    [c.key(), c.attempts, c.failure, c.fingerprint]
                    for c in result.cases
                ],
            }
        print(
            f"[crashtest] {scheme} nested: {len(result.cases)} cases"
            f" ({result.skipped} resumed), recovery ops probed"
            f" {result.recovery_ops_probed}, {len(failures)} failures"
            f" ({time.time() - t0:.1f}s)"
        )
        if ran_dry:
            break
    if args.verdicts:
        path = pathlib.Path(args.verdicts)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(verdicts, indent=1, sort_keys=True))
        print(f"[crashtest] verdicts -> {path}")
    print(
        f"[crashtest] nested total: {grand_cases} cases across "
        f"{len(schemes)} schemes in {time.time() - started:.1f}s"
        f" (state: {state_path})"
    )
    if any_failures:
        print(
            f"[crashtest] FAILURES — artifacts in {args.artifact_dir}/",
            file=sys.stderr,
        )
        return 1
    if exhausted:
        print(
            f"[crashtest] stopped after --max-cases={args.max_cases} new"
            " verdicts; rerun with --resume to continue"
        )
        return 0
    print(
        "[crashtest] all nested cases atomically durable and"
        " recovery-idempotent"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.crashtest",
        description="Crash-consistency sweep across NVM write boundaries.",
    )
    parser.add_argument(
        "--schemes", default="all",
        help="comma list of {%s} or 'all'" % ",".join(
            crashtest.SWEEP_SCHEMES
        ),
    )
    parser.add_argument(
        "--sample", type=int, default=200,
        help="crash boundaries per scheme (0 = every write boundary)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--transactions", type=int, default=80,
        help="workload length per run",
    )
    parser.add_argument("--addresses", type=int, default=12)
    parser.add_argument(
        "--torn", choices=("never", "always", "alternate"),
        default="alternate",
        help="tear the fatal write at 8-byte granularity",
    )
    parser.add_argument("--threads", type=int, default=2,
                        help="recovery thread count")
    parser.add_argument(
        "--artifact-dir", default="crashtest_artifacts",
        help="where failing cases are saved as replayable JSON",
    )
    parser.add_argument(
        "--replay", metavar="ARTIFACT",
        help="replay one saved artifact instead of sweeping",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile the sweep; top functions by cumulative time are"
        " written to <artifact-dir>/crashtest_profile.txt",
    )
    parser.add_argument(
        "--verdicts", metavar="PATH",
        help="write per-boundary verdicts as JSON (for diffing sweep"
        " modes, e.g. snapshot-incremental vs cold)",
    )
    parser.add_argument(
        "--nested", action="store_true",
        help="nested-fault sweep: crash recovery/GC too, and check"
        " recovery idempotence",
    )
    parser.add_argument(
        "--forward-sample", type=int, default=5,
        help="[--nested] forward crash boundaries per scheme",
    )
    parser.add_argument(
        "--nested-sample", type=int, default=4,
        help="[--nested] recovery-op cut points per forward boundary"
        " (0 = every recovery op)",
    )
    parser.add_argument(
        "--gc-sample", type=int, default=6,
        help="[--nested] write boundaries inside the GC pass"
        " (0 = every GC write)",
    )
    parser.add_argument(
        "--idempotence-k", type=int, default=2,
        help="[--nested] extra crash+recover cycles per case; durable"
        " state must stay bit-identical",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="[--nested] skip cases already decided in the state file",
    )
    parser.add_argument(
        "--state", metavar="PATH", default=None,
        help="[--nested] sweep state journal"
        " (default <artifact-dir>/nested_state.json)",
    )
    parser.add_argument(
        "--max-cases", type=int, default=0,
        help="[--nested] stop after this many new verdicts (0 ="
        " unlimited); pair with --resume to continue",
    )
    args = parser.parse_args(argv)

    if args.replay:
        artifact = load_artifact(args.replay)
        if artifact.phase != "forward":
            return _replay_nested(args, artifact)
        case = crashtest.replay_artifact(artifact)
        same = case.failure == artifact.failure and (
            not artifact.fingerprint
            or case.fingerprint == artifact.fingerprint
        )
        print(
            f"[crashtest] replay {args.replay}: scheme={artifact.scheme}"
            f" boundary={artifact.faults.power_loss_after_write}"
            f" torn={artifact.faults.torn}"
        )
        print(f"[crashtest]   recorded: {artifact.failure or 'pass'}")
        print(f"[crashtest]   replayed: {case.failure or 'pass'}")
        if not same:
            print("[crashtest] REPLAY DIVERGED", file=sys.stderr)
            return 1
        print("[crashtest] replay reproduced the recorded outcome")
        return 2 if case.failure else 0

    if args.nested:
        return _main_nested(args)

    schemes = crashtest.resolve_schemes(args.schemes)
    any_failures = False
    grand_cases = 0
    verdicts = {}
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    started = time.time()
    for scheme in schemes:
        t0 = time.time()
        result = crashtest.sweep_scheme(
            scheme,
            seed=args.seed,
            transactions=args.transactions,
            addresses=args.addresses,
            sample=args.sample,
            torn_mode=args.torn,
            recovery_threads=args.threads,
            artifact_dir=args.artifact_dir,
            progress=print,
        )
        grand_cases += len(result.cases)
        failures = result.failures
        any_failures = any_failures or bool(failures)
        if args.verdicts:
            verdicts[scheme] = {
                "total_writes": result.total_writes,
                "cases": [
                    [c.boundary, c.torn, c.failure, c.fingerprint,
                     c.committed]
                    for c in result.cases
                ],
            }
        print(
            f"[crashtest] {scheme}: {len(result.cases)} boundaries of "
            f"{result.total_writes} writes, {len(failures)} failures "
            f"({time.time() - t0:.1f}s)"
        )
    if profiler is not None:
        profiler.disable()
        print(f"[crashtest] profile -> {_dump_profile(profiler, args)}")
    if args.verdicts:
        import json
        import pathlib

        path = pathlib.Path(args.verdicts)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(verdicts, indent=1, sort_keys=True))
        print(f"[crashtest] verdicts -> {path}")
    print(
        f"[crashtest] total: {grand_cases} cases across "
        f"{len(schemes)} schemes in {time.time() - started:.1f}s"
    )
    if any_failures:
        print(
            f"[crashtest] FAILURES — artifacts in {args.artifact_dir}/",
            file=sys.stderr,
        )
        return 1
    print("[crashtest] all cases atomically durable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
