"""CLI: systematic crash-point sweep (`python -m repro.crashtest`).

Usage::

    python -m repro.crashtest --schemes all --sample 200 --seed 7
    python -m repro.crashtest --schemes hoop,undo --sample 0   # exhaustive
    python -m repro.crashtest --replay crashtest_artifacts/crash_hoop_w12.json

Exit status is non-zero when any case fails (or a replay diverges from
its recorded outcome); failing cases are saved under ``--artifact-dir``
as fault-plan JSON that ``--replay`` re-runs exactly.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro import crashtest
from repro.faults.plan import load_artifact


def _dump_profile(profiler, args) -> str:
    """Write the sweep's cProfile stats under the artifact directory."""
    import io
    import pathlib
    import pstats

    out_dir = pathlib.Path(args.artifact_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    out = out_dir / "crashtest_profile.txt"
    text = io.StringIO()
    stats = pstats.Stats(profiler, stream=text)
    stats.sort_stats("cumulative").print_stats(40)
    out.write_text(text.getvalue())
    return str(out)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.crashtest",
        description="Crash-consistency sweep across NVM write boundaries.",
    )
    parser.add_argument(
        "--schemes", default="all",
        help="comma list of {%s} or 'all'" % ",".join(
            crashtest.SWEEP_SCHEMES
        ),
    )
    parser.add_argument(
        "--sample", type=int, default=200,
        help="crash boundaries per scheme (0 = every write boundary)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--transactions", type=int, default=80,
        help="workload length per run",
    )
    parser.add_argument("--addresses", type=int, default=12)
    parser.add_argument(
        "--torn", choices=("never", "always", "alternate"),
        default="alternate",
        help="tear the fatal write at 8-byte granularity",
    )
    parser.add_argument("--threads", type=int, default=2,
                        help="recovery thread count")
    parser.add_argument(
        "--artifact-dir", default="crashtest_artifacts",
        help="where failing cases are saved as replayable JSON",
    )
    parser.add_argument(
        "--replay", metavar="ARTIFACT",
        help="replay one saved artifact instead of sweeping",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile the sweep; top functions by cumulative time are"
        " written to <artifact-dir>/crashtest_profile.txt",
    )
    parser.add_argument(
        "--verdicts", metavar="PATH",
        help="write per-boundary verdicts as JSON (for diffing sweep"
        " modes, e.g. snapshot-incremental vs cold)",
    )
    args = parser.parse_args(argv)

    if args.replay:
        artifact = load_artifact(args.replay)
        case = crashtest.replay_artifact(artifact)
        same = case.failure == artifact.failure and (
            not artifact.fingerprint
            or case.fingerprint == artifact.fingerprint
        )
        print(
            f"[crashtest] replay {args.replay}: scheme={artifact.scheme}"
            f" boundary={artifact.faults.power_loss_after_write}"
            f" torn={artifact.faults.torn}"
        )
        print(f"[crashtest]   recorded: {artifact.failure or 'pass'}")
        print(f"[crashtest]   replayed: {case.failure or 'pass'}")
        if not same:
            print("[crashtest] REPLAY DIVERGED", file=sys.stderr)
            return 1
        print("[crashtest] replay reproduced the recorded outcome")
        return 2 if case.failure else 0

    schemes = crashtest.resolve_schemes(args.schemes)
    any_failures = False
    grand_cases = 0
    verdicts = {}
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    started = time.time()
    for scheme in schemes:
        t0 = time.time()
        result = crashtest.sweep_scheme(
            scheme,
            seed=args.seed,
            transactions=args.transactions,
            addresses=args.addresses,
            sample=args.sample,
            torn_mode=args.torn,
            recovery_threads=args.threads,
            artifact_dir=args.artifact_dir,
            progress=print,
        )
        grand_cases += len(result.cases)
        failures = result.failures
        any_failures = any_failures or bool(failures)
        if args.verdicts:
            verdicts[scheme] = {
                "total_writes": result.total_writes,
                "cases": [
                    [c.boundary, c.torn, c.failure, c.fingerprint,
                     c.committed]
                    for c in result.cases
                ],
            }
        print(
            f"[crashtest] {scheme}: {len(result.cases)} boundaries of "
            f"{result.total_writes} writes, {len(failures)} failures "
            f"({time.time() - t0:.1f}s)"
        )
    if profiler is not None:
        profiler.disable()
        print(f"[crashtest] profile -> {_dump_profile(profiler, args)}")
    if args.verdicts:
        import json
        import pathlib

        path = pathlib.Path(args.verdicts)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(verdicts, indent=1, sort_keys=True))
        print(f"[crashtest] verdicts -> {path}")
    print(
        f"[crashtest] total: {grand_cases} cases across "
        f"{len(schemes)} schemes in {time.time() - started:.1f}s"
    )
    if any_failures:
        print(
            f"[crashtest] FAILURES — artifacts in {args.artifact_dir}/",
            file=sys.stderr,
        )
        return 1
    print("[crashtest] all cases atomically durable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
