"""Systematic crash-consistency sweep across all persistence schemes.

The paper's core robustness claim (§III-E/F, Fig. 11) is that HOOP
survives a power failure at *any* instant — including mid-GC and
mid-recovery.  This module tests the claim mechanically, for HOOP *and*
every baseline, instead of at a handful of hand-picked points:

1. a **probe run** executes a seeded random transactional workload with
   the fault device armed but no fault scheduled, counting the total
   number of timed NVM writes ``W``;
2. the sweep replays the identical workload once per chosen boundary
   ``k`` (all of ``1..W`` in exhaustive mode, a seeded sample in CI
   mode) with power loss injected after the ``k``-th write — torn or
   clean cut — then crashes, recovers, and verifies **atomic
   durability**: every committed transaction fully visible, the
   in-flight transaction all-or-nothing;
3. every failing case is written as a minimal repro artifact (scheme +
   workload parameters + fault plan JSON) that ``--replay`` re-runs
   exactly.

Determinism: workload generation, fault plans, and boundary sampling
all derive from explicit seeds, so a sweep is byte-reproducible and an
artifact replays to the identical failure or pass.

CLI: ``python -m repro.crashtest --schemes all --sample 200 --seed 7``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from dataclasses import replace as _dc_replace
from typing import Dict, List, Optional, Tuple

from repro.common.config import FaultConfig, SystemConfig
from repro.common.errors import PowerLossError
from repro.faults.plan import CrashArtifact, save_artifact
from repro.snapshot import capture, checkpoint_cadence, snapshots_enabled
from repro.snapshot.replay import Checkpoint, CheckpointChain
from repro.txn.system import MemorySystem

# One recorded workload transaction: issuing core plus its ordered
# (addr, value) stores, duplicates preserved — everything a replay needs
# to re-execute the transaction without consuming workload RNG.
TxnRecord = Tuple[int, List[Tuple[int, bytes]]]

# The sweep's scheme vocabulary.  Keys are the CLI names (the paper's
# shorthand); values are registry names in repro.schemes.
SWEEP_SCHEMES: Dict[str, str] = {
    "hoop": "hoop",
    "undo": "opt-undo",
    "redo": "opt-redo",
    "osp": "osp",
    "lad": "lad",
    "lsm": "lsm",
    "logregion": "logregion",
}

_ZERO_WORD = bytes(8)


def resolve_schemes(spec: str) -> List[str]:
    """Expand a ``--schemes`` argument to registry names."""
    if spec == "all":
        return list(SWEEP_SCHEMES.values())
    names = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        registry = SWEEP_SCHEMES.get(token, token)
        names.append(registry)
    if not names:
        raise ValueError("no schemes selected")
    return names


@dataclass
class RunOutcome:
    """One workload execution under one fault plan."""

    oracle: Dict[int, bytes]  # committed word -> value
    staged: Dict[int, bytes]  # in-flight transaction's words (may be {})
    power_lost: bool
    writes_at_cut: int


@dataclass
class CaseResult:
    """One verified crash/recovery case."""

    boundary: Optional[int]
    torn: bool
    failure: Optional[str]
    fingerprint: str
    committed: int


@dataclass
class SweepResult:
    scheme: str
    total_writes: int
    boundaries: List[int] = field(default_factory=list)
    cases: List[CaseResult] = field(default_factory=list)

    @property
    def failures(self) -> List[CaseResult]:
        return [c for c in self.cases if c.failure]


def _build_system(scheme: str, faults: FaultConfig) -> MemorySystem:
    config = SystemConfig.small().replace(faults=faults)
    return MemorySystem(config, scheme=scheme)


def run_workload(
    system: MemorySystem,
    *,
    seed: int,
    transactions: int,
    addresses: int,
) -> RunOutcome:
    """Drive the seeded random workload until done or power loss.

    The oracle tracks words of transactions whose ``with`` block exited
    (commit returned); ``staged`` holds the one transaction that was
    open — or mid-commit, or whose post-commit GC tick died — when the
    power failed.  The verifier decides which side of the commit point
    that transaction landed on.
    """
    rng = random.Random(seed)
    addrs = [system.allocate(64) for _ in range(addresses)]
    oracle: Dict[int, bytes] = {}
    staged: Dict[int, bytes] = {}
    cores = system.config.num_cores
    try:
        for _ in range(transactions):
            staged = {}
            core = rng.randrange(cores)
            with system.transaction(core) as tx:
                for _ in range(rng.randint(1, 6)):
                    addr = rng.choice(addrs) + 8 * rng.randrange(8)
                    value = rng.getrandbits(64).to_bytes(8, "little")
                    tx.store(addr, value)
                    staged[addr] = value
            oracle.update(staged)
            staged = {}
    except PowerLossError:
        return RunOutcome(
            oracle, staged, True, system.device.stats.writes
        )
    return RunOutcome(oracle, {}, False, system.device.stats.writes)


def count_write_boundaries(
    scheme: str, *, seed: int, transactions: int, addresses: int
) -> int:
    """Probe run: total timed writes of the fault-free workload.

    Runs on the *fault device* with nothing armed so write counting
    (e.g. batched GC writes, decomposed per element) matches the armed
    runs write-for-write.
    """
    system = _build_system(scheme, FaultConfig(enabled=True, seed=seed))
    outcome = run_workload(
        system, seed=seed, transactions=transactions, addresses=addresses
    )
    assert not outcome.power_lost
    return system.device.stats.writes


def verify_atomic_durability(
    system: MemorySystem,
    oracle: Dict[int, bytes],
    staged: Dict[int, bytes],
) -> Optional[str]:
    """Check recovered NVM against the oracle; returns a failure message.

    Contract: every committed word durable; the in-flight transaction
    (if any) either fully applied or fully discarded — judged over the
    words whose staged value actually differs from the pre-crash
    committed value, since identical values are unobservable.
    """
    # Line-cached durable reads: the oracle's words cluster on a few
    # cache lines, so one 64-byte peek serves eight word checks.
    # Nothing writes between the checks, so the cache cannot go stale.
    peek = system.device.peek
    lines: Dict[int, bytes] = {}

    def durable_word(addr: int) -> bytes:
        base = addr & ~63
        buf = lines.get(base)
        if buf is None:
            buf = peek(base, 64)
            lines[base] = buf
        offset = addr - base
        return buf[offset : offset + 8]

    changed = {
        addr: value
        for addr, value in staged.items()
        if oracle.get(addr, _ZERO_WORD) != value
    }
    applied = [
        addr
        for addr, value in changed.items()
        if durable_word(addr) == value
    ]
    if changed and 0 < len(applied) < len(changed):
        return (
            f"in-flight transaction torn: {len(applied)}/{len(changed)} "
            f"of its words durable (e.g. {applied[0]:#x})"
        )
    inflight_committed = bool(changed) and len(applied) == len(changed)
    stale = []
    for addr, value in oracle.items():
        expect = value
        if inflight_committed and addr in staged:
            expect = staged[addr]
        if durable_word(addr) != expect:
            stale.append(addr)
    if stale:
        return (
            f"{len(stale)} committed words lost/stale after recovery "
            f"(e.g. {stale[0]:#x})"
        )
    return None


def _finish_case(
    system: MemorySystem,
    faults: FaultConfig,
    outcome: RunOutcome,
    recovery_threads: int,
) -> CaseResult:
    """Shared verdict tail: crash, recover, verify, fingerprint.

    Both the cold path (:func:`run_case`) and the incremental path
    (:func:`_run_case_incremental`) end here, so their verdicts are
    computed by the same code — a bit-identity requirement, not just
    deduplication.
    """
    system.crash()
    report = system.recover(threads=recovery_threads)
    failure = verify_atomic_durability(
        system, outcome.oracle, outcome.staged
    )
    committed = getattr(
        report, "committed_transactions", len(outcome.oracle)
    )
    return CaseResult(
        boundary=faults.power_loss_after_write,
        torn=faults.torn,
        failure=failure,
        fingerprint=system.device.content_fingerprint(),
        committed=committed,
    )


def build_crashed_cold(
    scheme: str,
    faults: FaultConfig,
    *,
    seed: int,
    transactions: int,
    addresses: int,
) -> Tuple[MemorySystem, RunOutcome]:
    """Cold front half of a case: run the workload under ``faults``.

    Returns the system *before* ``crash()`` plus the observed outcome;
    shared by :func:`run_case` and the nested sweep (which crashes,
    snapshots, and re-crashes recovery itself).
    """
    system = _build_system(scheme, faults)
    outcome = run_workload(
        system, seed=seed, transactions=transactions, addresses=addresses
    )
    return system, outcome


def run_case(
    scheme: str,
    faults: FaultConfig,
    *,
    seed: int,
    transactions: int,
    addresses: int,
    recovery_threads: int = 2,
) -> CaseResult:
    """One full cold cycle: workload under faults, crash, recover, verify."""
    system, outcome = build_crashed_cold(
        scheme, faults, seed=seed, transactions=transactions,
        addresses=addresses,
    )
    return _finish_case(system, faults, outcome, recovery_threads)


def _probe_and_checkpoint(
    scheme: str,
    *,
    seed: int,
    transactions: int,
    addresses: int,
    cadence: int,
) -> Tuple[int, List[TxnRecord], CheckpointChain]:
    """One probe run that also records the workload and lays checkpoints.

    Replicates :func:`run_workload`'s RNG call order exactly (same
    ``randrange``/``randint``/``choice``/``getrandbits`` sequence), so
    the recorded transactions are byte-for-byte what an armed rerun
    would execute, and the unarmed device's write counter matches the
    armed runs write-for-write.  A checkpoint is captured *before*
    every ``cadence``-th transaction, carrying the committed-word
    oracle at that point.
    """
    system = _build_system(scheme, FaultConfig(enabled=True, seed=seed))
    rng = random.Random(seed)
    addrs = [system.allocate(64) for _ in range(addresses)]
    cores = system.config.num_cores
    chain = CheckpointChain()
    oracle: Dict[int, bytes] = {}
    txns: List[TxnRecord] = []
    for index in range(transactions):
        if index % cadence == 0:
            chain.add(
                Checkpoint(
                    index,
                    system.device.stats.writes,
                    capture(system, txn_index=index),
                    dict(oracle),
                )
            )
        core = rng.randrange(cores)
        stores: List[Tuple[int, bytes]] = []
        with system.transaction(core) as tx:
            for _ in range(rng.randint(1, 6)):
                addr = rng.choice(addrs) + 8 * rng.randrange(8)
                value = rng.getrandbits(64).to_bytes(8, "little")
                tx.store(addr, value)
                stores.append((addr, value))
        # dict() collapses duplicate addresses last-wins, exactly like
        # run_workload's staged dict.
        oracle.update(dict(stores))
        txns.append((core, stores))
    return system.device.stats.writes, txns, chain


def _run_case_incremental(
    scheme: str,
    faults: FaultConfig,
    *,
    boundary: int,
    chain: CheckpointChain,
    txns: List[TxnRecord],
    seed: int,
    transactions: int,
    addresses: int,
    recovery_threads: int,
) -> CaseResult:
    """One crash case starting from the nearest checkpoint <= boundary.

    The restored system gets a fresh injector armed with the *residual*
    write budget (``boundary - checkpoint.writes``; zero means the very
    next write dies), then replays the recorded transaction suffix —
    mirroring :func:`run_workload`'s staged/oracle bookkeeping — and
    finishes through the shared verdict tail.  Falls back to the cold
    :func:`run_case` when no checkpoint precedes the boundary.
    """
    pair = build_crashed_incremental(
        faults, boundary=boundary, chain=chain, txns=txns
    )
    if pair is None:
        return run_case(
            scheme,
            faults,
            seed=seed,
            transactions=transactions,
            addresses=addresses,
            recovery_threads=recovery_threads,
        )
    system, outcome = pair
    return _finish_case(system, faults, outcome, recovery_threads)


def build_crashed_incremental(
    faults: FaultConfig,
    *,
    boundary: int,
    chain: CheckpointChain,
    txns: List[TxnRecord],
) -> Optional[Tuple[MemorySystem, RunOutcome]]:
    """Incremental front half: restore a checkpoint and replay the suffix.

    Returns ``None`` when no checkpoint precedes the boundary (callers
    fall back to :func:`build_crashed_cold`); otherwise the system
    before ``crash()`` plus the outcome, exactly as the cold path would
    have produced them.
    """
    checkpoint = chain.nearest(boundary)
    if checkpoint is None:
        return None
    system = checkpoint.snapshot.restore()
    system.device.rearm(
        _dc_replace(
            faults, power_loss_after_write=boundary - checkpoint.writes
        )
    )
    oracle = dict(checkpoint.oracle)
    staged: Dict[int, bytes] = {}
    try:
        for core, stores in txns[checkpoint.txn_index :]:
            staged = {}
            with system.transaction(core) as tx:
                for addr, value in stores:
                    tx.store(addr, value)
                    staged[addr] = value
            oracle.update(staged)
            staged = {}
        outcome = RunOutcome(oracle, {}, False, system.device.stats.writes)
    except PowerLossError:
        outcome = RunOutcome(
            oracle, staged, True, system.device.stats.writes
        )
    return system, outcome


def choose_boundaries(
    total_writes: int, sample: int, seed: int
) -> List[int]:
    """Deterministic boundary choice: exhaustive or seeded sample.

    ``sample=0`` (or a sample at least the population size) sweeps
    every boundary.  A sample always includes the first and last write
    — the cheapest and most commit-adjacent crash points.
    """
    population = list(range(1, total_writes + 1))
    if sample <= 0 or sample >= len(population):
        return population
    rng = random.Random(seed)
    chosen = set(rng.sample(population, sample))
    chosen.add(1)
    chosen.add(total_writes)
    return sorted(chosen)


def _torn_for(boundary: int, mode: str) -> bool:
    if mode == "always":
        return True
    if mode == "never":
        return False
    return boundary % 2 == 1  # alternate


def sweep_scheme(
    scheme: str,
    *,
    seed: int = 7,
    transactions: int = 80,
    addresses: int = 12,
    sample: int = 0,
    torn_mode: str = "alternate",
    recovery_threads: int = 2,
    artifact_dir: Optional[str] = None,
    cadence: Optional[int] = None,
    progress=None,
) -> SweepResult:
    """Sweep one scheme across crash boundaries; returns all cases.

    By default the sweep is *incremental*: the probe run doubles as a
    recorder, laying a snapshot checkpoint every ``cadence``
    transactions (default ``transactions // 20``, overridable via
    ``REPRO_SNAPSHOT_CADENCE``), and each boundary replays only from
    the nearest checkpoint.  ``REPRO_SNAPSHOT_DISABLE=1`` falls back to
    the original cold rerun per boundary; per-boundary verdicts are
    bit-identical either way.
    """
    incremental = snapshots_enabled()
    txns: List[TxnRecord] = []
    chain = CheckpointChain()
    if incremental:
        if cadence is None:
            cadence = checkpoint_cadence(max(1, transactions // 20))
        total, txns, chain = _probe_and_checkpoint(
            scheme,
            seed=seed,
            transactions=transactions,
            addresses=addresses,
            cadence=cadence,
        )
    else:
        total = count_write_boundaries(
            scheme, seed=seed, transactions=transactions, addresses=addresses
        )
    boundaries = choose_boundaries(total, sample, seed)
    result = SweepResult(
        scheme=scheme, total_writes=total, boundaries=boundaries
    )
    for boundary in boundaries:
        faults = FaultConfig(
            enabled=True,
            seed=seed ^ (boundary << 8),
            power_loss_after_write=boundary,
            torn=_torn_for(boundary, torn_mode),
        )
        if incremental:
            case = _run_case_incremental(
                scheme,
                faults,
                boundary=boundary,
                chain=chain,
                txns=txns,
                seed=seed,
                transactions=transactions,
                addresses=addresses,
                recovery_threads=recovery_threads,
            )
        else:
            case = run_case(
                scheme,
                faults,
                seed=seed,
                transactions=transactions,
                addresses=addresses,
                recovery_threads=recovery_threads,
            )
        result.cases.append(case)
        if case.failure and artifact_dir:
            artifact = CrashArtifact(
                scheme=scheme,
                faults=faults,
                workload_seed=seed,
                transactions=transactions,
                addresses=addresses,
                recovery_threads=recovery_threads,
                failure=case.failure,
                fingerprint=case.fingerprint,
            )
            path = save_artifact(
                artifact,
                f"{artifact_dir}/crash_{scheme}_w{boundary}"
                f"{'_torn' if faults.torn else ''}.json",
            )
            if progress:
                progress(f"  artifact written: {path}")
        if progress and case.failure:
            progress(
                f"  FAIL {scheme} @write {boundary}"
                f"{' torn' if case.torn else ''}: {case.failure}"
            )
    return result


def replay_artifact(artifact: CrashArtifact) -> CaseResult:
    """Re-run one saved case exactly; the caller compares outcomes."""
    return run_case(
        artifact.scheme,
        artifact.faults,
        seed=artifact.workload_seed,
        transactions=artifact.transactions,
        addresses=artifact.addresses,
        recovery_threads=artifact.recovery_threads,
    )
