"""CLI: time the experiment matrix and write BENCH_harness.json.

Usage::

    python -m repro.bench [--scale smoke] [--jobs N] [--no-cache]
                          [--out BENCH_harness.json]
                          [--baseline benchmarks/bench_baseline.json]

With ``--baseline`` the run exits non-zero when any computed cell takes
more than 2x its committed baseline time — the CI regression gate.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys

from repro import bench
from repro.harness import experiments


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark the experiment harness.",
    )
    parser.add_argument(
        "--scale", default="smoke", choices=sorted(experiments.SCALES)
    )
    parser.add_argument(
        "--jobs", type=int, default=int(os.environ.get("REPRO_JOBS", "1")),
        help="worker processes for the matrix fan-out (default 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the on-disk result cache",
    )
    parser.add_argument("--out", default="BENCH_harness.json")
    parser.add_argument(
        "--baseline",
        help="committed baseline JSON; fail on >2x per-cell regressions",
    )
    parser.add_argument(
        "--regression-factor", type=float, default=2.0,
        help="slowdown factor treated as a regression (default 2.0)",
    )
    parser.add_argument(
        "--crashtest", action="store_true",
        help="benchmark the crash-point sweep (cold vs incremental)"
        " instead of the experiment matrix",
    )
    parser.add_argument(
        "--crashtest-sample", type=int, default=200,
        help="sampled boundaries per scheme for --crashtest",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="benchmark the sharded serving layer (per scheme + one"
        " failover run) instead of the experiment matrix",
    )
    parser.add_argument(
        "--serve-rate", type=float, default=60_000.0,
        help="aggregate offered load for --serve (requests/s)",
    )
    parser.add_argument(
        "--serve-duration-ms", type=float, default=10.0,
        help="simulated arrival window for --serve (ms)",
    )
    args = parser.parse_args(argv)

    if args.no_cache:
        os.environ["REPRO_NO_CACHE"] = "1"

    if args.serve:
        if args.out == "BENCH_harness.json":
            args.out = "BENCH_serve.json"
        payload = bench.bench_serve(
            rate_per_s=args.serve_rate,
            duration_ms=args.serve_duration_ms,
        )
        out_path = pathlib.Path(args.out)
        bench.write_report(payload, out_path)
        total_s = sum(
            cell["seconds"] for cell in payload["cells"].values()
        )
        print(
            f"[bench] serve: {len(payload['cells'])} cells,"
            f" {total_s:.2f}s wall -> {out_path}"
        )
        if payload["oracle_failures"]:
            for failure in payload["oracle_failures"]:
                print(f"[bench] ACKED-WRITE LOSS {failure}",
                      file=sys.stderr)
            return 1
    elif args.crashtest:
        if args.out == "BENCH_harness.json":
            args.out = "BENCH_crashtest.json"
        payload = bench.bench_crashtest(sample=args.crashtest_sample)
        out_path = pathlib.Path(args.out)
        bench.write_report(payload, out_path)
        modes = payload["modes"]
        print(
            f"[bench] crashtest sweep: cold"
            f" {modes['cold']['seconds']:.2f}s, incremental"
            f" {modes['incremental']['seconds']:.2f}s"
            f" ({payload['speedup']:.2f}x,"
            f" {modes['incremental']['boundaries_per_s']:.0f}"
            f" boundaries/s) -> {out_path}"
        )
    else:
        payload = bench.bench_matrix(
            args.scale, args.jobs, use_cache=not args.no_cache
        )
        out_path = pathlib.Path(args.out)
        bench.write_report(payload, out_path)
        print(
            f"[bench] {args.scale} matrix: {payload['total_matrix_s']:.2f}s"
            f" total, {payload['cells_computed']} computed,"
            f" {payload['cells_from_cache']} cached -> {out_path}"
        )

    if args.baseline:
        try:
            problems = bench.check_against_baseline(
                payload,
                pathlib.Path(args.baseline),
                factor=args.regression_factor,
            )
        except (OSError, ValueError) as exc:
            print(f"[bench] cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return 2
        if problems:
            for problem in problems:
                print(f"[bench] REGRESSION {problem}", file=sys.stderr)
            return 1
        print("[bench] no per-cell regressions vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
