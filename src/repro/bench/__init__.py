"""Wall-clock benchmarking of the experiment harness itself.

``python -m repro.bench`` times every cell of the figure matrix and
writes ``BENCH_harness.json`` so the harness's own performance is
tracked from PR to PR (the simulator's speed bounds every future PR's
iteration loop).  See :func:`bench_matrix` for the report layout and
:func:`check_against_baseline` for the CI regression gate.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
from typing import List, Optional, Sequence, Tuple

from repro.harness import diskcache, parallel

SCHEMA_VERSION = 1


def bench_matrix(
    scale: str = "smoke",
    jobs: int = 1,
    *,
    seed: int = 7,
    use_cache: bool = True,
) -> dict:
    """Time the full matrix; returns the BENCH_harness.json payload."""
    diskcache.stats.reset()
    specs = parallel.matrix_specs(scale, seed=seed)
    report = parallel.run_matrix(specs, jobs=jobs, use_cache=use_cache)
    cells = {}
    for timing in sorted(report.timings, key=lambda t: t.name):
        result = report.results[timing.name]
        cells[timing.name] = {
            "seconds": round(timing.seconds, 4),
            "source": timing.source,
            "throughput_tx_per_ms": result.throughput_tx_per_ms,
            "transactions": result.transactions,
        }
    return {
        "schema": SCHEMA_VERSION,
        "scale": scale,
        "jobs": report.jobs,
        "python": platform.python_version(),
        "code_fingerprint": diskcache.code_fingerprint(),
        "total_matrix_s": round(report.total_s, 4),
        "cells_computed": report.computed,
        "cells_from_cache": report.cache_hits,
        "disk_cache": {
            "hits": diskcache.stats.hits,
            "misses": diskcache.stats.misses,
            "stores": diskcache.stats.stores,
            "degraded": diskcache.stats.degraded,
        },
        "cells": cells,
    }


def bench_crashtest(
    *,
    sample: int = 200,
    seed: int = 7,
    schemes: Optional[Sequence[str]] = None,
) -> dict:
    """Time the crash-point sweep cold vs snapshot-incremental.

    Runs the default sweep twice in this process — once with
    ``REPRO_SNAPSHOT_DISABLE=1`` (the quadratic rerun-from-scratch
    "before" path) and once with snapshots enabled (the checkpointed
    "after" path) — and reports wall time and boundaries/second per
    scheme for both.  The ``cells`` block is shaped like the harness
    benchmark's so :func:`check_against_baseline` gates regressions on
    either mode the same way.
    """
    import os
    import time

    from repro.crashtest import SWEEP_SCHEMES, sweep_scheme

    names = list(schemes or SWEEP_SCHEMES.values())
    saved = os.environ.get("REPRO_SNAPSHOT_DISABLE")
    modes = {}
    cells = {}
    try:
        for mode in ("cold", "incremental"):
            if mode == "cold":
                os.environ["REPRO_SNAPSHOT_DISABLE"] = "1"
            else:
                os.environ.pop("REPRO_SNAPSHOT_DISABLE", None)
            per_scheme = {}
            total_s = 0.0
            total_boundaries = 0
            for name in names:
                t0 = time.perf_counter()
                result = sweep_scheme(name, sample=sample, seed=seed)
                elapsed = time.perf_counter() - t0
                boundaries = len(result.cases)
                per_scheme[name] = {
                    "seconds": round(elapsed, 4),
                    "boundaries": boundaries,
                    "boundaries_per_s": round(boundaries / elapsed, 1),
                }
                cells[f"{mode}/{name}"] = {
                    "seconds": round(elapsed, 4),
                    "source": "computed",
                    "boundaries": boundaries,
                }
                total_s += elapsed
                total_boundaries += boundaries
            modes[mode] = {
                "seconds": round(total_s, 4),
                "boundaries": total_boundaries,
                "boundaries_per_s": round(total_boundaries / total_s, 1),
                "per_scheme": per_scheme,
            }
    finally:
        if saved is None:
            os.environ.pop("REPRO_SNAPSHOT_DISABLE", None)
        else:
            os.environ["REPRO_SNAPSHOT_DISABLE"] = saved
    return {
        "schema": SCHEMA_VERSION,
        "sample": sample,
        "seed": seed,
        "python": platform.python_version(),
        "speedup": round(
            modes["cold"]["seconds"] / modes["incremental"]["seconds"], 2
        ),
        "modes": modes,
        "cells": cells,
    }


def bench_serve(
    *,
    seed: int = 7,
    schemes: Optional[Sequence[str]] = None,
    rate_per_s: float = 60_000.0,
    duration_ms: float = 10.0,
) -> dict:
    """Time the serving layer per scheme, failover, and replication cost.

    Each scheme serves the same deterministic open-loop trace through a
    4-shard cluster; the ``failover`` cell additionally kills a shard
    mid-traffic and rides through recovery.  The replication-cost cells
    (``hoop-r1``, ``hoop-r2``) rerun the hoop trace with synchronous
    redo shipping to 1 and 2 backups — req/s and p99 versus R is the
    price of the durability upgrade — and ``hoop-r1-failover`` destroys
    the primary mid-batch and rides through promotion + rejoin.  Every
    cell reports wall seconds (gated by :func:`check_against_baseline`
    like the other benchmarks) alongside the simulated serving metrics
    — sustained requests/s and p99 latency — so scheme-level serving
    regressions are visible even when wall time is not the symptom.
    Any acknowledged-write loss or replica divergence turns up in
    ``oracle_failures`` and fails the gate outright.

    The ``parallel-seq``/``parallel-w4`` pair times the same 8-shard
    run under ``--workers 0`` and ``--workers 4`` and asserts the two
    reports are byte-identical; ``parallel_speedup`` is their
    wall-clock ratio on this host.
    """
    import time

    from repro.serve import ServeConfig, run_serve

    names = list(schemes or ("hoop", "opt-redo", "opt-undo", "lad"))
    cells = {}
    failures: List[str] = []
    base = ServeConfig(
        shards=4,
        clients=8,
        rate_per_s=rate_per_s,
        duration_ms=duration_ms,
        seed=seed,
    )
    runs = [(name, base.replace(scheme=name)) for name in names]
    runs.append(
        (
            "failover",
            base.replace(
                kill_shard=1, kill_at_ms=duration_ms * 0.4
            ),
        )
    )
    runs.extend(
        (f"hoop-r{r}", base.replace(replicas=r)) for r in (1, 2)
    )
    runs.append(
        (
            "hoop-r1-failover",
            base.replace(
                replicas=1,
                kill_primary_at_ms=duration_ms * 0.4,
                torn_kill=True,
            ),
        )
    )
    for cell_name, cfg in runs:
        t0 = time.perf_counter()
        report = run_serve(cfg)
        elapsed = time.perf_counter() - t0
        cell = {
            "seconds": round(elapsed, 4),
            "source": "computed",
            "requests_per_s": round(report.requests_per_s, 1),
            "p99_latency_ns": report.latency["p99"],
            "acked": report.acked_puts + report.acked_gets,
            "kills": report.kills,
        }
        if cfg.replicas:
            cell["replicas"] = cfg.replicas
            cell["promotions"] = report.promotions
        cells[f"serve/{cell_name}"] = cell
        failures.extend(report.oracle_failures)
    # Parallel engine cells: the same 8-shard run sequentially and on a
    # 4-worker pool.  The reports must be byte-identical (the engine's
    # whole contract); the wall-clock ratio is the parallel speedup on
    # this host — ~Wx on a real W-core box, below 1x on a single core
    # where the pool only adds fork+pipe overhead (see docs/internals.md).
    from repro.serve import EngineConfig

    wide = base.replace(shards=8)
    parallel_speedup = None
    seq_payload = None
    for cell_name, workers in (("parallel-seq", 0), ("parallel-w4", 4)):
        t0 = time.perf_counter()
        report = run_serve(wide, engine=EngineConfig(workers=workers))
        elapsed = time.perf_counter() - t0
        payload = json.dumps(report.to_dict(), sort_keys=True)
        if workers == 0:
            seq_payload = payload
        elif payload != seq_payload:
            failures.append(
                "parallel serve report diverged from sequential "
                "(bit-identity contract broken)"
            )
        else:
            parallel_speedup = round(
                cells["serve/parallel-seq"]["seconds"] / elapsed, 2
            )
        cells[f"serve/{cell_name}"] = {
            "seconds": round(elapsed, 4),
            "source": "computed",
            "workers": workers,
            "requests_per_s": round(report.requests_per_s, 1),
            "p99_latency_ns": report.latency["p99"],
            "acked": report.acked_puts + report.acked_gets,
            "kills": report.kills,
        }
        failures.extend(report.oracle_failures)
    return {
        "schema": SCHEMA_VERSION,
        "seed": seed,
        "rate_per_s": rate_per_s,
        "duration_ms": duration_ms,
        "python": platform.python_version(),
        "parallel_speedup": parallel_speedup,
        "oracle_failures": failures,
        "cells": cells,
    }


def write_report(payload: dict, out_path: pathlib.Path) -> None:
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def check_against_baseline(
    payload: dict,
    baseline_path: pathlib.Path,
    *,
    factor: float = 2.0,
    min_seconds: float = 0.05,
) -> List[str]:
    """Compare per-cell times against a committed baseline.

    Returns a list of human-readable regression messages (empty = pass).
    Only *computed* cells are compared — a cache hit is never a
    regression — and cells faster than ``min_seconds`` in the baseline
    are skipped (pure noise at that granularity).
    """
    baseline = json.loads(baseline_path.read_text())
    problems = []
    for name, base_cell in baseline.get("cells", {}).items():
        base_s = base_cell.get("seconds", 0.0)
        if base_s < min_seconds:
            continue
        current = payload["cells"].get(name)
        if current is None:
            problems.append(f"{name}: missing from current run")
            continue
        if current["source"] != "computed":
            continue
        if current["seconds"] > base_s * factor:
            problems.append(
                f"{name}: {current['seconds']:.2f}s vs baseline"
                f" {base_s:.2f}s (>{factor:.0f}x)"
            )
    return problems
