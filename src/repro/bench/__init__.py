"""Wall-clock benchmarking of the experiment harness itself.

``python -m repro.bench`` times every cell of the figure matrix and
writes ``BENCH_harness.json`` so the harness's own performance is
tracked from PR to PR (the simulator's speed bounds every future PR's
iteration loop).  See :func:`bench_matrix` for the report layout and
:func:`check_against_baseline` for the CI regression gate.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
from typing import List, Optional, Sequence, Tuple

from repro.harness import diskcache, parallel

SCHEMA_VERSION = 1


def bench_matrix(
    scale: str = "smoke",
    jobs: int = 1,
    *,
    seed: int = 7,
    use_cache: bool = True,
) -> dict:
    """Time the full matrix; returns the BENCH_harness.json payload."""
    diskcache.stats.reset()
    specs = parallel.matrix_specs(scale, seed=seed)
    report = parallel.run_matrix(specs, jobs=jobs, use_cache=use_cache)
    cells = {}
    for timing in sorted(report.timings, key=lambda t: t.name):
        result = report.results[timing.name]
        cells[timing.name] = {
            "seconds": round(timing.seconds, 4),
            "source": timing.source,
            "throughput_tx_per_ms": result.throughput_tx_per_ms,
            "transactions": result.transactions,
        }
    return {
        "schema": SCHEMA_VERSION,
        "scale": scale,
        "jobs": report.jobs,
        "python": platform.python_version(),
        "code_fingerprint": diskcache.code_fingerprint(),
        "total_matrix_s": round(report.total_s, 4),
        "cells_computed": report.computed,
        "cells_from_cache": report.cache_hits,
        "disk_cache": {
            "hits": diskcache.stats.hits,
            "misses": diskcache.stats.misses,
            "stores": diskcache.stats.stores,
            "degraded": diskcache.stats.degraded,
        },
        "cells": cells,
    }


def write_report(payload: dict, out_path: pathlib.Path) -> None:
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


def check_against_baseline(
    payload: dict,
    baseline_path: pathlib.Path,
    *,
    factor: float = 2.0,
    min_seconds: float = 0.05,
) -> List[str]:
    """Compare per-cell times against a committed baseline.

    Returns a list of human-readable regression messages (empty = pass).
    Only *computed* cells are compared — a cache hit is never a
    regression — and cells faster than ``min_seconds`` in the baseline
    are skipped (pure noise at that granularity).
    """
    baseline = json.loads(baseline_path.read_text())
    problems = []
    for name, base_cell in baseline.get("cells", {}).items():
        base_s = base_cell.get("seconds", 0.0)
        if base_s < min_seconds:
            continue
        current = payload["cells"].get(name)
        if current is None:
            problems.append(f"{name}: missing from current run")
            continue
        if current["source"] != "computed":
            continue
        if current["seconds"] > base_s * factor:
            problems.append(
                f"{name}: {current['seconds']:.2f}s vs baseline"
                f" {base_s:.2f}s (>{factor:.0f}x)"
            )
    return problems
