"""Bit-level pack/unpack helpers for on-NVM metadata layouts.

The memory-slice metadata in Fig. 5b is specified in bits (a 320-bit home
address vector, a 24-bit next-slice offset, a 32-bit TxID, ...).  The slice
codecs in :mod:`repro.core.slices` build on this small big-integer packer so
the layout stays declarative and round-trips are easy to property-test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Field:
    """One field in a bit-level record: a name and a width in bits."""

    name: str
    bits: int

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise ValueError(f"field {self.name!r} must have positive width")


class BitStruct:
    """A fixed layout of named bit fields packed LSB-first into bytes.

    >>> layout = BitStruct([Field("txid", 32), Field("flag", 4)], total_bytes=8)
    >>> raw = layout.pack({"txid": 7, "flag": 3})
    >>> layout.unpack(raw) == {"txid": 7, "flag": 3}
    True
    """

    def __init__(self, fields: Sequence[Field], total_bytes: int) -> None:
        self.fields: Tuple[Field, ...] = tuple(fields)
        self.total_bytes = total_bytes
        used = sum(f.bits for f in self.fields)
        if used > total_bytes * 8:
            raise ValueError(
                f"fields need {used} bits but layout only has "
                f"{total_bytes * 8} bits"
            )
        self._offsets: Dict[str, Tuple[int, int]] = {}
        cursor = 0
        for field in self.fields:
            if field.name in self._offsets:
                raise ValueError(f"duplicate field name {field.name!r}")
            self._offsets[field.name] = (cursor, field.bits)
            cursor += field.bits
        self.used_bits = cursor
        # Flattened (name, offset, mask) rows so pack/unpack — called per
        # slice encode/decode — skip the per-field dict probes and mask
        # reconstruction.
        self._rows: Tuple[Tuple[str, int, int], ...] = tuple(
            (f.name, self._offsets[f.name][0], (1 << f.bits) - 1)
            for f in self.fields
        )

    def max_value(self, name: str) -> int:
        """Largest value representable by field ``name``."""
        _, bits = self._offsets[name]
        return (1 << bits) - 1

    def pack(self, values: Dict[str, int]) -> bytes:
        """Pack ``values`` into ``total_bytes`` bytes; unset fields are 0."""
        acc = 0
        get = values.get
        for name, offset, mask in self._rows:
            value = get(name, 0)
            if value and not 0 <= value <= mask:
                raise ValueError(
                    f"value {value} does not fit field {name!r}"
                )
            acc |= value << offset
        return acc.to_bytes(self.total_bytes, "little")

    def with_field(self, raw: bytes, name: str, value: int) -> bytes:
        """OR ``value`` into a currently-zero field of packed bytes.

        Lets codecs pack once with a placeholder (e.g. ``checksum=0``),
        compute the derived value, and splice it in without re-packing
        the whole record.
        """
        offset, bits = self._offsets[name]
        if not 0 <= value <= (1 << bits) - 1:
            raise ValueError(f"value {value} does not fit field {name!r}")
        acc = int.from_bytes(raw, "little") | (value << offset)
        return acc.to_bytes(self.total_bytes, "little")

    def clear_field(self, raw: bytes, name: str) -> bytes:
        """Return ``raw`` with field ``name`` zeroed (checksum checks)."""
        offset, bits = self._offsets[name]
        mask = ((1 << bits) - 1) << offset
        acc = int.from_bytes(raw, "little") & ~mask
        return acc.to_bytes(self.total_bytes, "little")

    def unpack(self, raw: bytes) -> Dict[str, int]:
        """Unpack bytes produced by :meth:`pack` back into a dict."""
        if len(raw) != self.total_bytes:
            raise ValueError(
                f"expected {self.total_bytes} bytes, got {len(raw)}"
            )
        acc = int.from_bytes(raw, "little")
        return {
            name: (acc >> offset) & mask
            for name, offset, mask in self._rows
        }


# -- snapshot/wire declarations -----------------------------------------------
# Layouts are immutable after construction: clones and wire transfers
# may share them freely.
Field.__snapshot_state__ = "__shared__"
BitStruct.__snapshot_state__ = "__shared__"


def pack_uint_list(values: Sequence[int], bits_each: int, total_bytes: int) -> bytes:
    """Pack a homogeneous list of unsigned ints (e.g. eight 40-bit addrs)."""
    if len(values) * bits_each > total_bytes * 8:
        raise ValueError("values do not fit the allotted bytes")
    acc = 0
    limit = (1 << bits_each) - 1
    for i, value in enumerate(values):
        if not 0 <= value <= limit:
            raise ValueError(f"value {value} does not fit {bits_each} bits")
        acc |= value << (i * bits_each)
    return acc.to_bytes(total_bytes, "little")


def unpack_uint_list(raw: bytes, bits_each: int, count: int) -> List[int]:
    """Inverse of :func:`pack_uint_list`."""
    if count * bits_each > len(raw) * 8:
        raise ValueError("requested more bits than the buffer holds")
    acc = int.from_bytes(raw, "little")
    mask = (1 << bits_each) - 1
    return [(acc >> (i * bits_each)) & mask for i in range(count)]
