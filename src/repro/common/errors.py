"""Exception hierarchy for the HOOP reproduction.

Every error the library raises derives from :class:`ReproError`, so callers
can catch one type at the API boundary.  Subtypes mirror the major failure
domains: configuration, addressing, capacity, transactions, and on-NVM
corruption (the latter is raised by decoders when slice metadata fails
validation — recovery treats it as a torn write).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """Invalid or inconsistent configuration values."""


class AddressError(ReproError):
    """An address is out of range, misaligned, or in the wrong region."""


class CapacityError(ReproError):
    """A bounded hardware structure (buffer, table, region) overflowed."""


class TransactionError(ReproError):
    """Transactional API misuse (nested begin, write outside tx, ...)."""


class CorruptionError(ReproError):
    """On-NVM metadata failed validation (torn or stray write)."""


class RecoveryError(ReproError):
    """Crash recovery could not restore a consistent state."""


class PowerLossError(ReproError):
    """Injected power failure: the access (and all later ones) was lost.

    Raised by :class:`repro.faults.FaultyNVMDevice` when an armed
    power-loss budget expires.  The machine must go through
    ``crash()``/``recover()`` before the device accepts writes again.
    """


class TransientReadError(ReproError):
    """Injected recoverable media read error (one attempt failed).

    Carries ``completion_ns`` — the simulated time the failed attempt
    occupied the channel — so the retry layer can schedule its backoff
    in simulated time.
    """

    def __init__(self, addr: int, completion_ns: float) -> None:
        super().__init__(f"transient media error reading {addr:#x}")
        self.addr = addr
        self.completion_ns = completion_ns


class MediaError(ReproError):
    """Unrecoverable media failure (retries exhausted or spares gone)."""


class ReadRetryExhaustedError(MediaError):
    """A timed read kept faulting until its per-operation retry budget ran out.

    Carries the failing address and how many attempts this one operation
    made (the initial read plus every retry), so callers — and the
    nested-fault sweep's media-burst phase — can report *which* word
    went bad without parsing the message.
    """

    def __init__(self, addr: int, attempts: int) -> None:
        super().__init__(
            f"read at {addr:#x} still failing after {attempts} attempts"
        )
        self.addr = addr
        self.attempts = attempts


class AllocationError(ReproError):
    """The persistent heap could not satisfy an allocation."""
