"""Exception hierarchy for the HOOP reproduction.

Every error the library raises derives from :class:`ReproError`, so callers
can catch one type at the API boundary.  Subtypes mirror the major failure
domains: configuration, addressing, capacity, transactions, and on-NVM
corruption (the latter is raised by decoders when slice metadata fails
validation — recovery treats it as a torn write).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """Invalid or inconsistent configuration values."""


class AddressError(ReproError):
    """An address is out of range, misaligned, or in the wrong region."""


class CapacityError(ReproError):
    """A bounded hardware structure (buffer, table, region) overflowed."""


class TransactionError(ReproError):
    """Transactional API misuse (nested begin, write outside tx, ...)."""


class CorruptionError(ReproError):
    """On-NVM metadata failed validation (torn or stray write)."""


class RecoveryError(ReproError):
    """Crash recovery could not restore a consistent state."""


class AllocationError(ReproError):
    """The persistent heap could not satisfy an allocation."""
