"""Deterministic random-number utilities.

Every stochastic component (workload key choice, value bytes, crash points)
takes an explicit seed so experiments and failing property tests reproduce
exactly.  ``derive`` lets one experiment seed fan out into independent
streams for each thread or component without correlated sequences.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional


def make_rng(seed: Optional[int]) -> random.Random:
    """Create a :class:`random.Random` from an optional seed."""
    return random.Random(seed)


def derive(seed: int, *labels) -> int:
    """Derive a child seed from ``seed`` and a label path.

    Hash-based so that ``derive(s, "ycsb", 3)`` is stable across runs and
    uncorrelated with ``derive(s, "ycsb", 4)``.
    """
    h = hashlib.sha256()
    h.update(str(seed).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "little")


def random_bytes(rng: random.Random, n: int) -> bytes:
    """``n`` random bytes from ``rng`` (Python's randbytes, 3.9+)."""
    if n < 0:
        raise ValueError("byte count must be non-negative")
    return rng.randbytes(n)
