"""Shared building blocks: units, configuration, address math, bitfields.

Everything in this package is dependency-free and safe to import from any
other ``repro`` subpackage.  The configuration dataclasses in
:mod:`repro.common.config` encode the paper's Table II system parameters and
the HOOP hardware budget from Section III-H.
"""

from repro.common.addr import (
    CACHE_LINE_BYTES,
    WORD_BYTES,
    cache_line_base,
    cache_line_index,
    cache_line_offset,
    is_word_aligned,
    iter_cache_lines,
    iter_words,
    word_base,
    word_index,
)
from repro.common.config import (
    CacheConfig,
    EnergyConfig,
    GCConfig,
    HoopConfig,
    NVMConfig,
    SystemConfig,
)
from repro.common.errors import (
    AddressError,
    CapacityError,
    ConfigError,
    CorruptionError,
    ReproError,
    TransactionError,
)
from repro.common.units import (
    GB,
    GHZ,
    KB,
    MB,
    MHZ,
    MS,
    NS,
    PB,
    SEC,
    TB,
    US,
    cycles_to_ns,
    ns_to_cycles,
)

__all__ = [
    "CACHE_LINE_BYTES",
    "WORD_BYTES",
    "cache_line_base",
    "cache_line_index",
    "cache_line_offset",
    "is_word_aligned",
    "iter_cache_lines",
    "iter_words",
    "word_base",
    "word_index",
    "CacheConfig",
    "EnergyConfig",
    "GCConfig",
    "HoopConfig",
    "NVMConfig",
    "SystemConfig",
    "AddressError",
    "CapacityError",
    "ConfigError",
    "CorruptionError",
    "ReproError",
    "TransactionError",
    "KB",
    "MB",
    "GB",
    "TB",
    "PB",
    "NS",
    "US",
    "MS",
    "SEC",
    "MHZ",
    "GHZ",
    "cycles_to_ns",
    "ns_to_cycles",
]
