"""Cache-line and word address arithmetic.

HOOP tracks data at two granularities: the cache hierarchy works in 64-byte
**cache lines**, while the OOP data buffer packs updates at 8-byte **word**
granularity (Section III-C, "HOOP tracks data updates at a word granularity
instead of a cache line granularity").  All helpers here are pure functions
over integer physical addresses.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.common.errors import AddressError

CACHE_LINE_BYTES = 64
WORD_BYTES = 8
WORDS_PER_LINE = CACHE_LINE_BYTES // WORD_BYTES


def cache_line_base(addr: int) -> int:
    """Round ``addr`` down to its cache-line base address."""
    return addr & ~(CACHE_LINE_BYTES - 1)


def cache_line_offset(addr: int) -> int:
    """Byte offset of ``addr`` within its cache line."""
    return addr & (CACHE_LINE_BYTES - 1)


def cache_line_index(addr: int) -> int:
    """Cache-line number of ``addr`` (address divided by line size)."""
    return addr >> 6


def word_base(addr: int) -> int:
    """Round ``addr`` down to its 8-byte word base address."""
    return addr & ~(WORD_BYTES - 1)


def word_index(addr: int) -> int:
    """Word number of ``addr`` (address divided by word size)."""
    return addr >> 3


def word_offset_in_line(addr: int) -> int:
    """Index (0..7) of the word containing ``addr`` within its line."""
    return (addr & (CACHE_LINE_BYTES - 1)) >> 3


def is_word_aligned(addr: int) -> bool:
    """True when ``addr`` is 8-byte aligned."""
    return (addr & (WORD_BYTES - 1)) == 0


def is_line_aligned(addr: int) -> bool:
    """True when ``addr`` is 64-byte aligned."""
    return (addr & (CACHE_LINE_BYTES - 1)) == 0


def check_range(addr: int, size: int) -> None:
    """Validate a positive-size, non-negative-address access."""
    if addr < 0:
        raise AddressError(f"negative address {addr:#x}")
    if size <= 0:
        raise AddressError(f"non-positive access size {size}")


def iter_cache_lines(addr: int, size: int) -> Iterator[int]:
    """Yield the base address of every cache line touched by the access."""
    check_range(addr, size)
    line = cache_line_base(addr)
    end = addr + size
    while line < end:
        yield line
        line += CACHE_LINE_BYTES


def iter_words(addr: int, size: int) -> Iterator[int]:
    """Yield the base address of every 8-byte word touched by the access."""
    check_range(addr, size)
    word = word_base(addr)
    end = addr + size
    while word < end:
        yield word
        word += WORD_BYTES


def split_by_cache_line(addr: int, size: int) -> Iterator[Tuple[int, int, int]]:
    """Split an access into per-line pieces.

    Yields ``(line_base, piece_addr, piece_size)`` tuples covering exactly
    ``[addr, addr + size)`` without crossing cache-line boundaries.
    """
    check_range(addr, size)
    cursor = addr
    end = addr + size
    while cursor < end:
        line = cache_line_base(cursor)
        piece_end = min(end, line + CACHE_LINE_BYTES)
        yield line, cursor, piece_end - cursor
        cursor = piece_end


def count_cache_lines(addr: int, size: int) -> int:
    """Number of distinct cache lines touched by the access."""
    check_range(addr, size)
    first = cache_line_index(addr)
    last = cache_line_index(addr + size - 1)
    return last - first + 1


def count_words(addr: int, size: int) -> int:
    """Number of distinct 8-byte words touched by the access."""
    check_range(addr, size)
    first = word_index(addr)
    last = word_index(addr + size - 1)
    return last - first + 1
