"""Size, time, and frequency units used throughout the simulator.

The simulator's base time unit is the **nanosecond** (float), and the base
size unit is the **byte** (int).  Constants here let configuration read like
the paper: ``2 * MB`` mapping table, ``150 * NS`` write latency, ``10 * MS``
GC period, ``2.5 * GHZ`` core clock.
"""

from __future__ import annotations

# --- sizes (bytes) ---------------------------------------------------------
KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB
PB = 1024 * TB

# --- time (nanoseconds) ----------------------------------------------------
NS = 1.0
US = 1_000.0
MS = 1_000_000.0
SEC = 1_000_000_000.0

# --- frequency (hertz) -----------------------------------------------------
MHZ = 1_000_000.0
GHZ = 1_000_000_000.0


def cycles_to_ns(cycles: float, freq_hz: float) -> float:
    """Convert a cycle count at ``freq_hz`` into nanoseconds."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return cycles * (SEC / freq_hz)


def ns_to_cycles(ns: float, freq_hz: float) -> float:
    """Convert nanoseconds into cycles at ``freq_hz``."""
    if freq_hz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_hz}")
    return ns * (freq_hz / SEC)


def bytes_per_ns_from_gbps(gb_per_s: float) -> float:
    """Convert a GB/s bandwidth figure into bytes per nanosecond.

    The paper's Fig. 11 sweeps NVM bandwidth in GB/s; the channel model
    works in bytes/ns, and 1 GB/s is very nearly 1.073 bytes/ns.
    """
    if gb_per_s <= 0:
        raise ValueError(f"bandwidth must be positive, got {gb_per_s}")
    return gb_per_s * GB / SEC


def format_bytes(n: int) -> str:
    """Human-readable byte count (e.g. ``2.0 MB``) for reports."""
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_time_ns(ns: float) -> str:
    """Human-readable time (e.g. ``47.0 ms``) for reports."""
    if ns < US:
        return f"{ns:.1f} ns"
    if ns < MS:
        return f"{ns / US:.1f} us"
    if ns < SEC:
        return f"{ns / MS:.1f} ms"
    return f"{ns / SEC:.2f} s"
