"""Configuration dataclasses encoding the paper's evaluated system.

Defaults follow Table II (processor, cache, and NVM parameters) and
Section III-H (HOOP hardware budget: 2 MB mapping table, 1 KB OOP data
buffer per core, 128 KB eviction buffer, 10 ms GC period, 10% of NVM as
the OOP region).  Every experiment in :mod:`repro.harness` starts from
:func:`SystemConfig.paper_default` and overrides only what its sweep varies.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.common.errors import ConfigError
from repro.common.units import GB, GHZ, KB, MB, MS, NS


@dataclass(frozen=True)
class CacheConfig:
    """One level of the cache hierarchy (sizes in bytes, latency in ns)."""

    name: str
    size: int
    ways: int
    line_size: int = 64
    latency_ns: float = 1.6

    def __post_init__(self) -> None:
        if self.size <= 0 or self.ways <= 0 or self.line_size <= 0:
            raise ConfigError(f"cache {self.name}: sizes must be positive")
        lines = self.size // self.line_size
        if lines % self.ways != 0:
            raise ConfigError(
                f"cache {self.name}: {lines} lines not divisible by "
                f"{self.ways} ways"
            )
        if self.latency_ns < 0:
            raise ConfigError(f"cache {self.name}: negative latency")

    @property
    def num_lines(self) -> int:
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways


@dataclass(frozen=True)
class EnergyConfig:
    """NVM access energy in picojoules per bit (Table II)."""

    row_buffer_read_pj_per_bit: float = 0.93
    row_buffer_write_pj_per_bit: float = 1.02
    array_read_pj_per_bit: float = 2.47
    array_write_pj_per_bit: float = 16.82

    def __post_init__(self) -> None:
        for name, value in dataclasses.asdict(self).items():
            if value < 0:
                raise ConfigError(f"energy parameter {name} is negative")


@dataclass(frozen=True)
class NVMConfig:
    """The NVM device: capacity, timing, bandwidth, and energy."""

    capacity: int = 512 * GB
    read_latency_ns: float = 50.0
    write_latency_ns: float = 150.0
    # Table II does not state a channel bandwidth; 4 GB/s matches the
    # write-constrained behaviour of Optane-class NVM DIMMs [51] and puts
    # the logging baselines in the bandwidth-bound regime §IV-B describes.
    bandwidth_gb_per_s: float = 4.0
    row_buffer_bytes: int = 256
    energy: EnergyConfig = field(default_factory=EnergyConfig)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigError("NVM capacity must be positive")
        if self.read_latency_ns <= 0 or self.write_latency_ns <= 0:
            raise ConfigError("NVM latencies must be positive")
        if self.bandwidth_gb_per_s <= 0:
            raise ConfigError("NVM bandwidth must be positive")
        if self.row_buffer_bytes <= 0:
            raise ConfigError("row buffer size must be positive")


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic fault-injection plan for the NVM device.

    With ``enabled=False`` (the default) the system builds the plain
    :class:`~repro.nvm.device.NVMDevice` and nothing here perturbs a
    simulation.  With ``enabled=True`` the device is wrapped by
    :class:`repro.faults.FaultyNVMDevice`, which models:

    * **power loss** after ``power_loss_after_write`` successful timed
      writes (the next write is the fatal one);
    * **torn writes** — when ``torn`` is set, the fatal write is applied
      only partially, at 8-byte word granularity, the subset chosen by
      the seeded PRNG;
    * **transient media read errors** — each timed read independently
      fails with ``read_error_rate`` probability; the memory port
      retries with exponential backoff in simulated time, bounded by
      ``max_read_retries``;
    * **stuck blocks** — writes to the listed fault blocks
      (``fault_block_bytes`` granularity) never stick; the device
      transparently remaps the block to hidden spare capacity
      (``spare_blocks``), charging ``remap_penalty_ns`` and the copy
      energy at remap time.

    The dataclass is a pure value object (ints/floats/tuples), so
    ``dataclasses.asdict`` of it *is* the serializable fault plan the
    crash-sweep artifacts store and replay.
    """

    enabled: bool = False
    seed: int = 0
    power_loss_after_write: Optional[int] = None
    torn: bool = False
    read_error_rate: float = 0.0
    max_read_retries: int = 3
    retry_backoff_ns: float = 200.0
    stuck_blocks: tuple = ()
    spare_blocks: int = 4
    fault_block_bytes: int = 2 * MB
    remap_penalty_ns: float = 10_000.0

    def __post_init__(self) -> None:
        if self.power_loss_after_write is not None and (
            self.power_loss_after_write < 0
        ):
            raise ConfigError("power_loss_after_write must be >= 0")
        if not 0.0 <= self.read_error_rate < 1.0:
            raise ConfigError("read_error_rate must be in [0, 1)")
        if self.max_read_retries < 0:
            raise ConfigError("max_read_retries must be >= 0")
        if self.retry_backoff_ns < 0 or self.remap_penalty_ns < 0:
            raise ConfigError("fault latencies must be non-negative")
        if self.spare_blocks < 0:
            raise ConfigError("spare_blocks must be >= 0")
        if self.fault_block_bytes <= 0:
            raise ConfigError("fault_block_bytes must be positive")
        if any(b < 0 for b in self.stuck_blocks):
            raise ConfigError("stuck block indices must be >= 0")


@dataclass(frozen=True)
class GCConfig:
    """Garbage-collection policy for the OOP region (Section III-E).

    ``coalesce`` exists for ablation: switching it off makes the collector
    write every committed version home instead of only the newest one,
    isolating how much of HOOP's traffic win comes from data coalescing.
    """

    period_ns: float = 10 * MS
    on_demand_mapping_fill: float = 0.95
    on_demand_region_fill: float = 0.90
    coalesce: bool = True

    def __post_init__(self) -> None:
        if self.period_ns <= 0:
            raise ConfigError("GC period must be positive")
        for name in ("on_demand_mapping_fill", "on_demand_region_fill"):
            value = getattr(self, name)
            if not 0.0 < value <= 1.0:
                raise ConfigError(f"{name} must be in (0, 1], got {value}")


@dataclass(frozen=True)
class HoopConfig:
    """HOOP's hardware budget in the memory controller (Section III-H)."""

    mapping_table_bytes: int = 2 * MB
    mapping_entry_bytes: int = 16
    oop_buffer_bytes_per_core: int = 1 * KB
    eviction_buffer_bytes: int = 128 * KB
    oop_block_bytes: int = 2 * MB
    slice_bytes: int = 128
    oop_region_fraction: float = 0.10
    home_addr_bits: int = 40
    # Data-packing degree: words per memory slice.  None = the maximum the
    # metadata budget allows (8 at 40-bit addresses); 1 disables packing
    # entirely (the ablation case — each word costs a full slice).
    packing_degree: Optional[int] = None
    # §III-I extension: condense a fully-mapped cache line's eight word
    # entries into one line entry in the mapping table.
    condense_mapping: bool = False
    gc: GCConfig = field(default_factory=GCConfig)

    def __post_init__(self) -> None:
        if self.mapping_table_bytes <= 0 or self.mapping_entry_bytes <= 0:
            raise ConfigError("mapping table sizes must be positive")
        if self.oop_buffer_bytes_per_core <= 0:
            raise ConfigError("OOP buffer size must be positive")
        if self.eviction_buffer_bytes <= 0:
            raise ConfigError("eviction buffer size must be positive")
        if self.oop_block_bytes % self.slice_bytes != 0:
            raise ConfigError("OOP block size must be a slice multiple")
        if not 0.0 < self.oop_region_fraction < 1.0:
            raise ConfigError("OOP region fraction must be in (0, 1)")
        if not 8 <= self.home_addr_bits <= 64:
            raise ConfigError("home address width must be 8..64 bits")
        if self.packing_degree is not None and not (
            1 <= self.packing_degree <= 8
        ):
            raise ConfigError("packing degree must be 1..8")

    @property
    def mapping_table_entries(self) -> int:
        """Entry budget implied by the table's SRAM size."""
        return self.mapping_table_bytes // self.mapping_entry_bytes

    @property
    def slices_per_block(self) -> int:
        return self.oop_block_bytes // self.slice_bytes

    @property
    def eviction_buffer_lines(self) -> int:
        """Line budget of the eviction buffer (line + home address tag)."""
        return self.eviction_buffer_bytes // (64 + 8)


@dataclass(frozen=True)
class SystemConfig:
    """Top-level system: cores, caches, NVM, and the HOOP budget."""

    num_cores: int = 16
    core_freq_hz: float = 2.5 * GHZ
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig("L1", 32 * KB, 4, latency_ns=1.6)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("L2", 256 * KB, 8, latency_ns=4.8)
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig("LLC", 2 * MB, 16, latency_ns=12.0)
    )
    nvm: NVMConfig = field(default_factory=NVMConfig)
    hoop: HoopConfig = field(default_factory=HoopConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError("need at least one core")
        if self.core_freq_hz <= 0:
            raise ConfigError("core frequency must be positive")
        line_sizes = {self.l1.line_size, self.l2.line_size, self.llc.line_size}
        if line_sizes != {64}:
            raise ConfigError("all cache levels must use 64-byte lines")

    @classmethod
    def paper_default(cls) -> "SystemConfig":
        """The exact Table II configuration."""
        return cls()

    @classmethod
    def small(cls, *, nvm_capacity: int = 64 * MB) -> "SystemConfig":
        """A scaled-down configuration for fast tests.

        Caches are shrunk so evictions (the interesting path) happen with
        small working sets, and the NVM is shrunk so the OOP region and GC
        cycle quickly.
        """
        return cls(
            num_cores=4,
            l1=CacheConfig("L1", 4 * KB, 4, latency_ns=1.6),
            l2=CacheConfig("L2", 8 * KB, 4, latency_ns=4.8),
            llc=CacheConfig("LLC", 16 * KB, 8, latency_ns=12.0),
            nvm=NVMConfig(capacity=nvm_capacity),
            hoop=HoopConfig(
                mapping_table_bytes=64 * KB,
                oop_buffer_bytes_per_core=1 * KB,
                eviction_buffer_bytes=16 * KB,
                oop_block_bytes=64 * KB,
                gc=GCConfig(period_ns=1 * MS),
            ),
        )

    def replace(self, **kwargs) -> "SystemConfig":
        """Return a copy with the given top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)

    @property
    def oop_region_bytes(self) -> int:
        """Size of the OOP region (10% of NVM capacity by default)."""
        raw = int(self.nvm.capacity * self.hoop.oop_region_fraction)
        block = self.hoop.oop_block_bytes
        return max(block, (raw // block) * block)

    @property
    def home_region_bytes(self) -> int:
        return self.nvm.capacity - self.oop_region_bytes

    @property
    def oop_region_base(self) -> int:
        """The OOP region is carved from the top of the physical space."""
        return self.home_region_bytes

    @property
    def cycle_ns(self) -> float:
        return 1e9 / self.core_freq_hz * NS


# -- snapshot declarations ----------------------------------------------------
# All configs are frozen and immutable: snapshots share them by reference
# (see repro.snapshot).
for _cls in (
    CacheConfig,
    EnergyConfig,
    NVMConfig,
    FaultConfig,
    GCConfig,
    HoopConfig,
    SystemConfig,
):
    _cls.__snapshot_state__ = "__shared__"
del _cls
