"""Seeded workload traces for the differential oracle and fuzzer.

A :class:`Trace` is a pure-data, scheme-independent description of a
transactional workload: which core opens each transaction and which
words it stores.  The same trace replays identically on every scheme
(persistent-heap allocation is deterministic, so slot addresses match
across schemes), which is what makes cross-scheme differential checking
meaningful — and because a trace is plain data, the fuzzer's
delta-debugging shrinker can cut it down to a minimal reproducer.

Addresses are *symbolic* here: a store names ``(slot, offset)`` where
``slot`` indexes a 64-byte heap object allocated at replay time and
``offset`` is a word index within it.  :func:`expected_state` computes
the last-write-wins model every scheme must converge to.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

SLOT_BYTES = 64
WORDS_PER_SLOT = SLOT_BYTES // 8


@dataclass(frozen=True)
class TraceStore:
    """One transactional word store: ``slots[slot] + 8*offset = value``."""

    slot: int
    offset: int
    value: int  # unsigned 64-bit

    def render(self) -> str:
        """One-line human form for shrunk-trace reports."""
        return f"store slot{self.slot}+{8 * self.offset} <- {self.value:#x}"


@dataclass(frozen=True)
class TraceTxn:
    """One transaction: the issuing core and its ordered stores."""

    core: int
    stores: Tuple[TraceStore, ...]


@dataclass(frozen=True)
class Trace:
    """A replayable seeded workload."""

    seed: int
    slots: int
    cores: int
    txns: Tuple[TraceTxn, ...]

    @property
    def num_events(self) -> int:
        """Trace size as the shrinker reports it: begins + stores."""
        return len(self.txns) + sum(len(t.stores) for t in self.txns)

    def with_txns(self, txns: Sequence[TraceTxn]) -> "Trace":
        """A copy with a different transaction list (shrinker primitive)."""
        return replace(self, txns=tuple(txns))

    def render(self) -> str:
        """Full trace listing, one line per transaction and store."""
        lines = [
            f"trace seed={self.seed} slots={self.slots}"
            f" txns={len(self.txns)} events={self.num_events}"
        ]
        for i, txn in enumerate(self.txns):
            lines.append(f"  txn[{i}] core={txn.core}")
            lines.extend(f"    {store.render()}" for store in txn.stores)
        return "\n".join(lines)


def generate_trace(
    seed: int,
    *,
    transactions: int = 40,
    slots: int = 10,
    cores: int = 4,
    max_stores: int = 6,
) -> Trace:
    """Deterministic random trace (same shape as the crashtest workload)."""
    rng = random.Random(seed)
    txns: List[TraceTxn] = []
    for _ in range(transactions):
        stores = tuple(
            TraceStore(
                slot=rng.randrange(slots),
                offset=rng.randrange(WORDS_PER_SLOT),
                value=rng.getrandbits(64),
            )
            for _ in range(rng.randint(1, max_stores))
        )
        txns.append(TraceTxn(core=rng.randrange(cores), stores=stores))
    return Trace(seed=seed, slots=slots, cores=cores, txns=tuple(txns))


def expected_state(
    trace: Trace,
    slot_addrs: Sequence[int],
    upto_txns: Optional[int] = None,
) -> Dict[int, bytes]:
    """Last-write-wins model: word address -> value after ``upto_txns``.

    This is the scheme-independent ground truth every scheme's
    post-commit (and post-recovery) state must match.
    """
    limit = len(trace.txns) if upto_txns is None else upto_txns
    state: Dict[int, bytes] = {}
    for txn in trace.txns[:limit]:
        for store in txn.stores:
            addr = slot_addrs[store.slot] + 8 * store.offset
            state[addr] = store.value.to_bytes(8, "little")
    return state


# -- snapshot declarations ----------------------------------------------------
# Traces are frozen records: replay caches share them by reference.
TraceStore.__snapshot_state__ = "__shared__"
TraceTxn.__snapshot_state__ = "__shared__"
Trace.__snapshot_state__ = "__shared__"
