"""Dynamic correctness checking: persist-ordering sanitizer + oracle.

Two complementary checkers live here (see ``docs/checker.md``):

* :mod:`repro.check.sanitizer` — a trace-level happens-before-durable
  sanitizer attached to a running system
  (``MemorySystem(..., checker=PersistOrderSanitizer())``), validating
  every committed transaction's durability-ordering edges against the
  scheme's declared discipline;
* :mod:`repro.check.oracle` — a cross-scheme differential oracle that
  runs the same seeded trace through every scheme (plus ``native``) and
  asserts logical-state and crash-recovery convergence, with a trace
  fuzzer (:mod:`repro.check.fuzz`) that delta-debugs failures down to
  minimal reproducers.

``python -m repro.check`` drives both; the seeded fence-dropping mutant
(:mod:`repro.check.mutant`) is the self-test proving the checkers fire.

This package ``__init__`` re-exports only the import-light sanitizer:
the memory port and scheme base import :data:`NULL_CHECKER` from here,
so pulling in the oracle (which imports the schemes) would be a cycle.
"""

from repro.check.sanitizer import (  # noqa: F401
    DISCIPLINES,
    NULL_CHECKER,
    CheckEvent,
    DisciplineRules,
    NullChecker,
    PersistOrderSanitizer,
    Violation,
    rules_for,
)
