"""Command-line entry point for the correctness checkers.

Usage::

    python -m repro.check [--schemes all|NAME,NAME...] [--seed N]
                          [--transactions N] [--slots N]
                          [--crash-sample N] [--fuzz N]
                          [--mutant] [--out FILE]

Default run: the differential oracle + persist-ordering sanitizer across
every scheme (``--schemes all``).  ``--fuzz N`` additionally fuzzes each
selected real scheme for N iterations (expected clean).  ``--mutant``
runs the self-test instead: the seeded fence-dropping mutant must be
caught and shrunk to a minimal reproducer — the exit code is 0 when the
checker *fires* and 1 when it fails to.

Exit status: 0 all checks clean (or the mutant caught), 1 otherwise.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.check.fuzz import fuzz_scheme
from repro.check.mutant import MUTANT_SCHEME
from repro.check.oracle import ORACLE_SCHEMES, REAL_SCHEMES, run_check_matrix

# Keep the self-test honest and bounded: the mutant must be caught
# within this many fuzz iterations, with a reproducer this small.
MUTANT_MAX_ITERATIONS = 8
MUTANT_MAX_EVENTS = 20


def _resolve(spec: str) -> list:
    if spec == "all":
        return list(ORACLE_SCHEMES)
    names = [token.strip() for token in spec.split(",") if token.strip()]
    for name in names:
        if name not in ORACLE_SCHEMES and name != MUTANT_SCHEME:
            known = ", ".join(ORACLE_SCHEMES)
            raise SystemExit(f"unknown scheme {name!r}; known: {known}")
    return names


def run_mutant_selftest(*, seed: int, progress=None) -> tuple:
    """Fuzz the mutant; returns ``(passed, rendered report)``."""
    result = fuzz_scheme(
        MUTANT_SCHEME,
        seed=seed,
        iterations=MUTANT_MAX_ITERATIONS,
        progress=progress,
    )
    problems = []
    if not result.found:
        problems.append(
            f"mutant NOT caught in {MUTANT_MAX_ITERATIONS} iterations —"
            " the sanitizer is blind"
        )
    elif result.shrunk_events > MUTANT_MAX_EVENTS:
        problems.append(
            f"reproducer has {result.shrunk_events} events"
            f" (> {MUTANT_MAX_EVENTS}); shrinking regressed"
        )
    lines = [result.render()]
    lines.extend(f"SELF-TEST FAIL: {p}" for p in problems)
    lines.append(
        "SELF-TEST: " + ("passed (checker fires)" if not problems else "FAILED")
    )
    return not problems, "\n".join(lines)


def main(argv=None) -> int:
    """CLI body; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Persist-ordering sanitizer + differential oracle.",
    )
    parser.add_argument(
        "--schemes",
        default="all",
        help="comma list of schemes, or 'all' (default)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--transactions", type=int, default=40,
        help="trace length for the differential matrix",
    )
    parser.add_argument(
        "--slots", type=int, default=10,
        help="distinct 64-byte objects the trace stores into",
    )
    parser.add_argument(
        "--crash-sample", type=int, default=12,
        help="sampled crash boundaries per scheme (0 disables)",
    )
    parser.add_argument(
        "--fuzz", type=int, default=0, metavar="N",
        help="additionally fuzz each selected real scheme N iterations",
    )
    parser.add_argument(
        "--mutant", action="store_true",
        help="run the fence-dropping-mutant self-test instead",
    )
    parser.add_argument(
        "--out", help="also write the report to this file"
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile the run; top functions by cumulative time are"
        " written next to --out (or to check_profile.txt)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress per-scheme progress lines",
    )
    args = parser.parse_args(argv)
    progress = None if args.quiet else print

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    sections = []
    ok = True
    if args.mutant:
        passed, text = run_mutant_selftest(seed=args.seed, progress=progress)
        ok = passed
        sections.append(text)
    else:
        schemes = _resolve(args.schemes)
        result = run_check_matrix(
            schemes,
            seed=args.seed,
            transactions=args.transactions,
            slots=args.slots,
            crash_sample=args.crash_sample,
            progress=progress,
        )
        ok = result.ok
        sections.append(result.render())
        if args.fuzz:
            for scheme in schemes:
                if scheme not in REAL_SCHEMES:
                    continue
                fuzz = fuzz_scheme(
                    scheme, seed=args.seed, iterations=args.fuzz,
                    progress=progress,
                )
                sections.append(fuzz.render())
                if fuzz.found:
                    ok = False

    report = "\n\n".join(sections)
    print(report)
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(report + "\n")
    if profiler is not None:
        profiler.disable()
        import io
        import pstats

        profile_path = (
            pathlib.Path(args.out).with_suffix(".profile.txt")
            if args.out
            else pathlib.Path("check_profile.txt")
        )
        profile_path.parent.mkdir(parents=True, exist_ok=True)
        text = io.StringIO()
        pstats.Stats(profiler, stream=text).sort_stats(
            "cumulative"
        ).print_stats(40)
        profile_path.write_text(text.getvalue())
        print(f"[check] profile -> {profile_path}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
