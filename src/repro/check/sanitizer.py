"""The dynamic persist-ordering sanitizer.

Every scheme in this repository *claims* a durability-ordering discipline
— redo logging drains the log before the commit record, undo logging
persists pre-images before in-place writes, HOOP's controller orders the
OOP stream ahead of the STATE_LAST slice.  The crash-point sweep
(:mod:`repro.crashtest`) samples crash sites and checks outcomes; this
module instead checks the *ordering edges themselves*, on every
transaction of an instrumented run, the way a happens-before sanitizer
checks lock discipline.

The sanitizer is attached to a :class:`~repro.txn.system.MemorySystem`
(``MemorySystem(config, scheme, checker=...)``) and observes four event
sources, all purely observationally (it never advances a clock or touches
device content — instrumented runs are bit-identical to bare runs):

* the transaction system reports ``tx_begin`` / ``store`` / the
  commit-return instant;
* each scheme annotates its persists with their *logical* meaning:
  ``log`` (redo/new-value log entry), ``undo`` (pre-image), ``data``
  (in-place home write), ``oop`` (HOOP slice word), ``commit`` (the
  commit record) — always naming the **home address** the persist covers;
* the memory port reports every ``drain`` (sfence) with the issuing port,
  so fences only order writes queued on *that* port;
* the scheme's :class:`~repro.schemes.base.SchemeTraits` declares which
  discipline the stream must satisfy (``durability``).

At each commit the sanitizer replays the transaction's slice of the
event stream against the declared discipline's rules and reports every
violation with the offending home address, transaction id, rule name,
and a minimized event window (just the events that participate in the
broken ordering edge).

Disciplines and the rules they enable:

====================  =====================================================
``none``              no guarantees (native); nothing is checked
``controller-ordered``  hardware FIFO write queue orders queued persists
                      ahead of the sync commit persist (HOOP): coverage +
                      sync commit record, no explicit fence required
``persist-domain``    queued writes are inside a battery-backed persist
                      domain (LAD): coverage + sync commit record
``log-drain``         queued log writes must be explicitly drained before
                      the commit record (Opt-Redo, logregion, LSM)
``flush-fence``       every covering persist must be synchronous or
                      drained before the commit record (OSP)
``undo-inplace``      ``log-drain`` rules plus per-address pre-image
                      ordering: undo entry durable before the first
                      in-place write of that address (Opt-Undo)
====================  =====================================================

Rules, in the order they are checked per committed transaction:

``missing-commit-record``  the transaction stored data but never
                           annotated a commit record;
``async-commit-record``    the commit record was not a synchronous persist;
``uncovered-store``        a stored word has no covering persist
                           (``log``/``data``/``oop``) before the commit
                           record — committed data that is not durable;
``unfenced-write``         every covering persist of a word is
                           asynchronous with no same-port drain between
                           it and the commit record (fence disciplines
                           only) — the dropped-sfence bug class;
``undo-after-data``        an in-place write preceded the pre-image
                           (``undo-inplace`` only);
``undo-unfenced``          the pre-image was queued but never fenced
                           before the in-place write (``undo-inplace``
                           only).

This module is import-light on purpose: the memory port and scheme base
hold a :data:`NULL_CHECKER` reference (mirroring ``NULL_TELEMETRY``), so
it must not import any simulator machinery.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_WORD = 8
_WORD_MASK = ~(_WORD - 1)

# Covering persist kinds: annotations that make the *new* value durable.
# ``undo`` pre-images protect the old value and are tracked separately.
_COVER_KINDS = frozenset({"log", "data", "oop"})


@dataclass(frozen=True)
class DisciplineRules:
    """Which checks a declared durability discipline enables."""

    coverage: bool  # every stored word needs a covering persist
    fence: bool  # async covers need an explicit drain before commit
    undo_order: bool  # pre-image before first in-place write per address
    commit_sync: bool  # the commit record must be a synchronous persist


DISCIPLINES: Dict[str, DisciplineRules] = {
    "none": DisciplineRules(False, False, False, False),
    "controller-ordered": DisciplineRules(True, False, False, True),
    "persist-domain": DisciplineRules(True, False, False, True),
    "log-drain": DisciplineRules(True, True, False, True),
    "flush-fence": DisciplineRules(True, True, False, True),
    "undo-inplace": DisciplineRules(True, True, True, True),
}


def rules_for(discipline: str) -> DisciplineRules:
    """Resolve a declared discipline to its rule set."""
    try:
        return DISCIPLINES[discipline]
    except KeyError:
        known = ", ".join(sorted(DISCIPLINES))
        raise KeyError(
            f"unknown durability discipline {discipline!r}; known: {known}"
        ) from None


@dataclass(frozen=True)
class CheckEvent:
    """One observed event in the durability stream."""

    seq: int
    ts_ns: float
    kind: str  # tx_begin | store | persist | drain
    tx_id: int = -1
    addr: int = -1
    size: int = 0
    note: str = ""  # persist meaning: log/undo/data/oop/commit
    sync: bool = False
    port: int = -1

    def render(self) -> str:
        """One greppable line for violation windows."""
        if self.kind == "drain":
            return f"#{self.seq} t={self.ts_ns:.0f} drain port{self.port}"
        if self.kind == "tx_begin":
            return f"#{self.seq} t={self.ts_ns:.0f} tx_begin tx={self.tx_id}"
        if self.kind == "store":
            return (
                f"#{self.seq} t={self.ts_ns:.0f} store tx={self.tx_id}"
                f" addr={self.addr:#x}+{self.size}"
            )
        mode = "sync" if self.sync else "async"
        where = f" addr={self.addr:#x}+{self.size}" if self.addr >= 0 else ""
        return (
            f"#{self.seq} t={self.ts_ns:.0f} persist:{self.note}"
            f" tx={self.tx_id}{where} {mode} port{self.port}"
        )


@dataclass
class Violation:
    """One broken ordering edge, with its minimized event window."""

    scheme: str
    discipline: str
    rule: str
    tx_id: int
    addr: int
    message: str
    window: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Greppable multi-line report with the event window indented."""
        lines = [
            f"VIOLATION [{self.rule}] scheme={self.scheme}"
            f" discipline={self.discipline} tx={self.tx_id}"
            f" addr={self.addr:#x}",
            f"  {self.message}",
        ]
        lines.extend(f"    {entry}" for entry in self.window)
        return "\n".join(lines)


# One covering persist of a word: (seq, sync, port).
_Cover = Tuple[int, bool, int]


class NullChecker:
    """The do-nothing checker every component holds by default.

    A shared singleton (:data:`NULL_CHECKER`), mirroring
    ``NULL_TELEMETRY``: the disabled hot-path cost is one attribute
    check, and a checker-off simulation is bit-identical to one built
    before this package existed.
    """

    __slots__ = ()
    active = False

    def bind_scheme(self, name: str, discipline: str) -> None:
        """No-op: a disabled checker tracks nothing."""

    def on_tx_begin(self, tx_id: int, now_ns: float) -> None:
        """No-op: a disabled checker tracks nothing."""

    def on_store(self, tx_id: int, addr: int, size: int, now_ns: float) -> None:
        """No-op: a disabled checker tracks nothing."""

    def note_persist(
        self,
        tx_id: int,
        kind: str,
        addr: int,
        size: int,
        now_ns: float,
        *,
        sync: bool,
        port=None,
    ) -> None:
        """No-op: a disabled checker tracks nothing."""

    def on_drain(self, port, now_ns: float, completion_ns: float) -> None:
        """No-op: a disabled checker tracks nothing."""

    def on_tx_committed(self, tx_id: int, now_ns: float) -> None:
        """No-op: a disabled checker tracks nothing."""


NULL_CHECKER = NullChecker()


class PersistOrderSanitizer(NullChecker):
    """Happens-before-durable checker for one instrumented system."""

    active = True

    def __init__(self, *, max_events: int = 250_000) -> None:
        self.scheme = "?"
        self.discipline = "none"
        self.rules = DISCIPLINES["none"]
        self.events: List[CheckEvent] = []
        self.max_events = max_events
        self.dropped_events = 0
        self.violations: List[Violation] = []
        self.transactions_checked = 0
        self._seq = 0
        self._ports: Dict[int, int] = {}  # id(port) -> small stable id
        self._drains: Dict[int, List[int]] = {}  # port id -> drain seqs
        self._begin_seq: Dict[int, int] = {}
        self._stores: Dict[int, Dict[int, int]] = {}  # tx -> word -> seq
        self._covers: Dict[int, Dict[int, List[_Cover]]] = {}
        self._undo: Dict[int, Dict[int, List[_Cover]]] = {}
        self._commit: Dict[int, CheckEvent] = {}

    # -- event intake ---------------------------------------------------------

    def bind_scheme(self, name: str, discipline: str) -> None:
        """Adopt the attached scheme's identity and declared discipline."""
        self.scheme = name
        self.discipline = discipline
        self.rules = rules_for(discipline)

    def _record(self, event: CheckEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _port_id(self, port) -> int:
        if port is None:
            return -1
        key = id(port)
        pid = self._ports.get(key)
        if pid is None:
            pid = len(self._ports)
            self._ports[key] = pid
        return pid

    def on_tx_begin(self, tx_id: int, now_ns: float) -> None:
        """Open per-transaction tracking tables."""
        seq = self._next_seq()
        self._begin_seq[tx_id] = seq
        self._stores[tx_id] = {}
        self._covers[tx_id] = {}
        self._undo[tx_id] = {}
        self._record(CheckEvent(seq, now_ns, "tx_begin", tx_id))

    def on_store(self, tx_id: int, addr: int, size: int, now_ns: float) -> None:
        """A program store: every touched word becomes an obligation."""
        seq = self._next_seq()
        self._record(CheckEvent(seq, now_ns, "store", tx_id, addr, size))
        stores = self._stores.get(tx_id)
        if stores is None:  # store outside a tracked transaction
            return
        for word in range(addr & _WORD_MASK, addr + size, _WORD):
            stores.setdefault(word, seq)

    def note_persist(
        self,
        tx_id: int,
        kind: str,
        addr: int,
        size: int,
        now_ns: float,
        *,
        sync: bool,
        port=None,
    ) -> None:
        """A scheme annotated one persist with its logical meaning.

        ``addr``/``size`` name the **home-address range** the persist
        covers (the physical target may be a log or shadow location).
        ``kind='commit'`` marks the transaction's commit record.
        """
        pid = self._port_id(port)
        seq = self._next_seq()
        event = CheckEvent(
            seq, now_ns, "persist", tx_id, addr, size, kind, sync, pid
        )
        self._record(event)
        if kind == "commit":
            self._commit.setdefault(tx_id, event)
            return
        if kind in _COVER_KINDS:
            table = self._covers.get(tx_id)
        elif kind == "undo":
            table = self._undo.get(tx_id)
        else:
            return
        if table is None:
            return
        cover = (seq, sync, pid)
        for word in range(addr & _WORD_MASK, addr + size, _WORD):
            table.setdefault(word, []).append(cover)

    def on_drain(self, port, now_ns: float, completion_ns: float) -> None:
        """A write-queue drain: the global fence on that port."""
        pid = self._port_id(port)
        seq = self._next_seq()
        self._drains.setdefault(pid, []).append(seq)
        self._record(CheckEvent(seq, completion_ns, "drain", port=pid))

    # -- validation -----------------------------------------------------------

    def _drained_between(self, pid: int, after: int, before: int) -> bool:
        """True when a drain on ``pid`` falls strictly inside (after, before)."""
        drains = self._drains.get(pid)
        if not drains:
            return False
        index = bisect_right(drains, after)
        return index < len(drains) and drains[index] < before

    def _window(self, tx_id: int, word: int, upto: int) -> List[str]:
        """Minimize the event stream to the edge under report.

        Keeps the transaction's begin, the word's stores and persists,
        every drain (fences are global ordering points worth seeing), and
        the commit record — capped at 20 rendered lines.
        """
        begin = self._begin_seq.get(tx_id, 0)
        relevant: List[CheckEvent] = []
        for event in self.events:
            if event.seq < begin or event.seq > upto:
                continue
            if event.kind == "drain":
                relevant.append(event)
            elif event.tx_id == tx_id:
                if event.addr < 0 or (
                    event.addr <= word < event.addr + max(event.size, 1)
                ) or event.kind == "tx_begin" or event.note == "commit":
                    relevant.append(event)
        lines = [event.render() for event in relevant]
        if len(lines) > 20:
            omitted = len(lines) - 19
            lines = lines[:10] + [f"    ... {omitted} events omitted ..."] + lines[-9:]
        return lines

    def _flag(
        self, rule: str, tx_id: int, addr: int, message: str, upto: int
    ) -> None:
        self.violations.append(
            Violation(
                scheme=self.scheme,
                discipline=self.discipline,
                rule=rule,
                tx_id=tx_id,
                addr=addr,
                message=message,
                window=self._window(tx_id, addr, upto),
            )
        )

    def on_tx_committed(self, tx_id: int, now_ns: float) -> None:
        """Commit returned: validate the transaction's ordering edges."""
        stores = self._stores.pop(tx_id, {})
        covers = self._covers.pop(tx_id, {})
        undos = self._undo.pop(tx_id, {})
        commit = self._commit.pop(tx_id, None)
        self.transactions_checked += 1
        rules = self.rules
        if not rules.coverage or not stores:
            self._begin_seq.pop(tx_id, None)
            return
        horizon = self._seq
        if commit is None:
            first_word = min(stores)
            self._flag(
                "missing-commit-record",
                tx_id,
                first_word,
                f"transaction stored {len(stores)} word(s) but never"
                " annotated a commit record",
                horizon,
            )
            self._begin_seq.pop(tx_id, None)
            return
        if rules.commit_sync and not commit.sync:
            self._flag(
                "async-commit-record",
                tx_id,
                min(stores),
                "the commit record was queued asynchronously; its"
                " durability instant is unordered",
                horizon,
            )
        commit_seq = commit.seq
        for word in sorted(stores):
            usable = [c for c in covers.get(word, ()) if c[0] < commit_seq]
            if not usable:
                self._flag(
                    "uncovered-store",
                    tx_id,
                    word,
                    "stored word has no covering persist (log/data/oop)"
                    " before the commit record — committed data is not"
                    " durable",
                    horizon,
                )
                continue
            if rules.fence:
                fenced = any(
                    sync or self._drained_between(pid, seq, commit_seq)
                    for seq, sync, pid in usable
                )
                if not fenced:
                    self._flag(
                        "unfenced-write",
                        tx_id,
                        word,
                        "every covering persist is asynchronous and no"
                        " drain separates it from the commit record"
                        " (dropped fence)",
                        horizon,
                    )
            if rules.undo_order:
                inplace = [
                    c for c in covers.get(word, ()) if c[0] < commit_seq
                ]
                first_data = min(c[0] for c in inplace)
                pre = [u for u in undos.get(word, ()) if u[0] < first_data]
                if not pre:
                    self._flag(
                        "undo-after-data",
                        tx_id,
                        word,
                        "an in-place write preceded the word's pre-image;"
                        " a crash between them loses the old value",
                        horizon,
                    )
                else:
                    useq, usync, upid = pre[0]
                    if not usync and not self._drained_between(
                        upid, useq, first_data
                    ):
                        self._flag(
                            "undo-unfenced",
                            tx_id,
                            word,
                            "the pre-image was queued but not fenced"
                            " before the first in-place write",
                            horizon,
                        )
        self._begin_seq.pop(tx_id, None)

    # -- reporting ------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True when no committed transaction broke its discipline."""
        return not self.violations

    def summary(self) -> dict:
        """JSON-serializable aggregate for reports and artifacts."""
        return {
            "scheme": self.scheme,
            "discipline": self.discipline,
            "transactions_checked": self.transactions_checked,
            "events": len(self.events),
            "dropped_events": self.dropped_events,
            "violations": [
                {
                    "rule": v.rule,
                    "tx": v.tx_id,
                    "addr": v.addr,
                    "message": v.message,
                    "window": v.window,
                }
                for v in self.violations
            ],
        }

    def render(self) -> str:
        """Human report: one line when clean, full windows when not."""
        if self.ok:
            return (
                f"sanitizer[{self.scheme}/{self.discipline}]: "
                f"{self.transactions_checked} transactions checked, clean"
            )
        parts = [
            f"sanitizer[{self.scheme}/{self.discipline}]: "
            f"{len(self.violations)} violation(s) in "
            f"{self.transactions_checked} transactions"
        ]
        parts.extend(v.render() for v in self.violations)
        return "\n".join(parts)

# -- snapshot declarations ----------------------------------------------------
# CheckEvent/DisciplineRules are frozen records; Violation's window list is
# append-only per instance, so the sanitizer deep-clones it via "__all__".
CheckEvent.__snapshot_state__ = "__atom__"
DisciplineRules.__snapshot_state__ = "__shared__"
Violation.__snapshot_state__ = "__all__"
NullChecker.__snapshot_state__ = "__shared__"
PersistOrderSanitizer.__snapshot_state__ = "__all__"


def _sanitizer_snapshot_fixup(self, memo: dict) -> None:
    """Re-key ``_ports`` from old port ids to cloned port ids.

    ``_ports`` maps ``id(port)`` to a small stable display id; a snapshot
    clone has new port objects.  Ports are reachable through the scheme,
    so the memo covers every live key; dead keys keep their entry (the
    stable ids must not be reassigned).
    """
    self._ports = {
        (id(memo[key]) if key in memo else key): pid
        for key, pid in self._ports.items()
    }


PersistOrderSanitizer.__snapshot_fixup__ = _sanitizer_snapshot_fixup
