"""Cross-scheme differential oracle.

One seeded :class:`~repro.check.trace.Trace` replays on every scheme;
three properties must hold (see ``docs/checker.md``):

1. **Sanitizer-clean** — the persist-ordering sanitizer attached to each
   run reports no violations against the scheme's declared discipline;
2. **Logical convergence** — after the full trace, reading every written
   word back *through the scheme's own read path* (mapping tables, log
   overlays, shadow pairs, caches) yields the scheme-independent
   last-write-wins model, identically across all schemes including
   ``native``;
3. **Crash-recovery convergence** — for every real scheme (``native``
   excluded: it promises nothing), a sampled sweep of power-cut points
   crashes, recovers, and checks atomic durability against the same
   model: committed transactions fully visible, the in-flight one
   all-or-nothing.

``mutant-redo`` (:mod:`repro.check.mutant`) resolves here and nowhere
else, so the deliberately broken scheme can never leak into the harness
figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import replace as _dc_replace
from typing import Dict, List, Optional, Tuple

from repro.check.sanitizer import PersistOrderSanitizer
from repro.check.trace import Trace, expected_state, generate_trace
from repro.common.config import FaultConfig, SystemConfig
from repro.common.errors import PowerLossError
from repro.crashtest import choose_boundaries, verify_atomic_durability
from repro.faults import make_device
from repro.snapshot import capture, checkpoint_cadence, snapshots_enabled
from repro.snapshot.replay import Checkpoint, CheckpointChain
from repro.txn.system import MemorySystem

# Every registered scheme plus the ideal baseline; crash-recovery
# convergence runs on REAL_SCHEMES only (native promises nothing).
ORACLE_SCHEMES: Tuple[str, ...] = (
    "native",
    "hoop",
    "hoop-mc",
    "opt-redo",
    "opt-undo",
    "osp",
    "lsm",
    "lad",
    "logregion",
)
REAL_SCHEMES: Tuple[str, ...] = tuple(
    s for s in ORACLE_SCHEMES if s != "native"
)


def build_system(
    scheme: str,
    *,
    faults: Optional[FaultConfig] = None,
    checker=None,
) -> MemorySystem:
    """A small-config system for ``scheme``, including ``mutant-redo``.

    The mutant is constructed directly (it is deliberately absent from
    the scheme registry); everything else goes through the normal
    registry path.
    """
    config = SystemConfig.small()
    if faults is not None:
        config = config.replace(faults=faults)
    if scheme == "mutant-redo":
        from repro.check.mutant import MutantRedoScheme

        device = make_device(config)
        return MemorySystem(
            config, MutantRedoScheme(config, device), checker=checker
        )
    return MemorySystem(config, scheme, checker=checker)


@dataclass
class TraceOutcome:
    """One trace replay on one system."""

    slot_addrs: List[int]
    oracle: Dict[int, bytes]  # committed word -> value
    staged: Dict[int, bytes]  # in-flight words at power loss (may be {})
    power_lost: bool
    completed_txns: int


def run_trace(system: MemorySystem, trace: Trace) -> TraceOutcome:
    """Replay ``trace`` until done or power loss (crashtest-compatible)."""
    slot_addrs = [system.allocate(64) for _ in range(trace.slots)]
    oracle: Dict[int, bytes] = {}
    staged: Dict[int, bytes] = {}
    completed = 0
    try:
        for txn in trace.txns:
            staged = {}
            with system.transaction(txn.core) as tx:
                for store in txn.stores:
                    addr = slot_addrs[store.slot] + 8 * store.offset
                    value = store.value.to_bytes(8, "little")
                    tx.store(addr, value)
                    staged[addr] = value
            oracle.update(staged)
            staged = {}
            completed += 1
    except PowerLossError:
        return TraceOutcome(slot_addrs, oracle, staged, True, completed)
    return TraceOutcome(slot_addrs, oracle, staged, False, completed)


def _probe_with_checkpoints(
    system: MemorySystem, trace: Trace, cadence: int
) -> Tuple[TraceOutcome, CheckpointChain]:
    """Fault-free :func:`run_trace` that doubles as a recorder.

    Before every ``cadence``-th transaction a snapshot checkpoint is
    laid down (with the committed-word oracle as of that point), so each
    crash boundary can later replay just the trace suffix instead of the
    whole trace.  The trace itself is pure data — replay consumes no
    RNG — so a resumed run is bit-identical to a cold one.
    """
    chain = CheckpointChain()
    slot_addrs = [system.allocate(64) for _ in range(trace.slots)]
    oracle: Dict[int, bytes] = {}
    for index, txn in enumerate(trace.txns):
        if index % cadence == 0:
            chain.add(
                Checkpoint(
                    index,
                    system.device.stats.writes,
                    capture(system, txn_index=index),
                    dict(oracle),
                )
            )
        staged: Dict[int, bytes] = {}
        with system.transaction(txn.core) as tx:
            for store in txn.stores:
                addr = slot_addrs[store.slot] + 8 * store.offset
                value = store.value.to_bytes(8, "little")
                tx.store(addr, value)
                staged[addr] = value
        oracle.update(staged)
    return (
        TraceOutcome(slot_addrs, oracle, {}, False, len(trace.txns)),
        chain,
    )


def _resume_trace(
    system: MemorySystem,
    trace: Trace,
    slot_addrs: List[int],
    start: int,
    oracle: Dict[int, bytes],
) -> TraceOutcome:
    """Continue a restored replay from transaction ``start``."""
    oracle = dict(oracle)
    staged: Dict[int, bytes] = {}
    completed = start
    try:
        for txn in trace.txns[start:]:
            staged = {}
            with system.transaction(txn.core) as tx:
                for store in txn.stores:
                    addr = slot_addrs[store.slot] + 8 * store.offset
                    value = store.value.to_bytes(8, "little")
                    tx.store(addr, value)
                    staged[addr] = value
            oracle.update(staged)
            staged = {}
            completed += 1
    except PowerLossError:
        return TraceOutcome(slot_addrs, oracle, staged, True, completed)
    return TraceOutcome(slot_addrs, oracle, staged, False, completed)


@dataclass
class SchemeCheckReport:
    """One scheme's verdicts across the three oracle properties."""

    scheme: str
    discipline: str = "?"
    transactions_checked: int = 0
    violations: List[str] = field(default_factory=list)
    logical_mismatches: List[str] = field(default_factory=list)
    crash_cases: int = 0
    crash_failures: List[str] = field(default_factory=list)
    # Final logical words as read through this scheme's own read path —
    # the raw material for the cross-scheme divergence check.
    readback: Dict[int, bytes] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when all three oracle properties held for this scheme."""
        return not (
            self.violations
            or self.logical_mismatches
            or self.crash_failures
        )

    def render(self) -> str:
        """One summary line plus an indented line per failure."""
        status = "ok" if self.ok else "FAIL"
        line = (
            f"{self.scheme:<10} [{self.discipline:<18}] {status}:"
            f" {self.transactions_checked} txns sanitized,"
            f" {self.crash_cases} crash points"
        )
        details = []
        details.extend(f"  sanitizer: {v}" for v in self.violations)
        details.extend(f"  logical: {m}" for m in self.logical_mismatches)
        details.extend(f"  crash: {f}" for f in self.crash_failures)
        return "\n".join([line] + details)


def check_scheme(
    scheme: str,
    trace: Trace,
    *,
    crash_sample: int = 12,
    seed: int = 7,
    progress=None,
) -> SchemeCheckReport:
    """Run the sanitizer + logical + crash checks for one scheme."""
    report = SchemeCheckReport(scheme=scheme)

    # 1 + 2: instrumented fault-free run, then read-back convergence.
    sanitizer = PersistOrderSanitizer()
    system = build_system(scheme, checker=sanitizer)
    outcome = run_trace(system, trace)
    assert not outcome.power_lost
    report.discipline = sanitizer.discipline
    report.transactions_checked = sanitizer.transactions_checked
    report.violations = [v.render() for v in sanitizer.violations]
    expected = expected_state(trace, outcome.slot_addrs)
    for addr in sorted(expected):
        got = system.load(addr, 8)
        report.readback[addr] = got
        if got != expected[addr]:
            report.logical_mismatches.append(
                f"word {addr:#x}: read {got.hex()} expected"
                f" {expected[addr].hex()}"
            )

    # 3: crash-recovery convergence (real schemes only).  With
    # snapshots enabled the probe run doubles as a recorder and every
    # boundary restores the nearest checkpoint at or before its cut,
    # replaying only the trace suffix; verdicts are bit-identical to
    # the cold per-boundary rerun (REPRO_SNAPSHOT_DISABLE=1).
    if scheme in REAL_SCHEMES and crash_sample:
        probe = build_system(
            scheme, faults=FaultConfig(enabled=True, seed=seed)
        )
        incremental = snapshots_enabled()
        chain = CheckpointChain()
        if incremental:
            cadence = checkpoint_cadence(max(1, len(trace.txns) // 8))
            probe_outcome, chain = _probe_with_checkpoints(
                probe, trace, cadence
            )
        else:
            probe_outcome = run_trace(probe, trace)
        assert not probe_outcome.power_lost
        total_writes = probe.device.stats.writes
        for boundary in choose_boundaries(total_writes, crash_sample, seed):
            faults = FaultConfig(
                enabled=True,
                seed=seed ^ (boundary << 8),
                power_loss_after_write=boundary,
                torn=boundary % 2 == 1,
            )
            checkpoint = chain.nearest(boundary) if incremental else None
            if checkpoint is not None:
                crashed = checkpoint.snapshot.restore()
                # Rearm with the residual write budget; the fresh
                # injector PRNG matches the cold one bit-for-bit
                # because nothing consumes it before the cut.
                crashed.device.rearm(
                    _dc_replace(
                        faults,
                        power_loss_after_write=boundary - checkpoint.writes,
                    )
                )
                crash_outcome = _resume_trace(
                    crashed,
                    trace,
                    probe_outcome.slot_addrs,
                    checkpoint.txn_index,
                    checkpoint.oracle,
                )
            else:
                crashed = build_system(scheme, faults=faults)
                crash_outcome = run_trace(crashed, trace)
            crashed.crash()
            crashed.recover(threads=2)
            failure = verify_atomic_durability(
                crashed, crash_outcome.oracle, crash_outcome.staged
            )
            report.crash_cases += 1
            if failure:
                report.crash_failures.append(
                    f"@write {boundary}"
                    f"{' torn' if faults.torn else ''}: {failure}"
                )
    if progress:
        progress(report.render())
    return report


@dataclass
class CheckMatrixResult:
    """The differential oracle's verdict across every scheme."""

    trace: Trace
    reports: List[SchemeCheckReport] = field(default_factory=list)
    divergences: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every report passed and no two schemes diverged."""
        return not self.divergences and all(r.ok for r in self.reports)

    def render(self) -> str:
        """The full matrix report, ending with RESULT: clean|FAILURES."""
        lines = [
            f"differential oracle: trace seed={self.trace.seed}"
            f" txns={len(self.trace.txns)} events={self.trace.num_events}"
        ]
        lines.extend(r.render() for r in self.reports)
        lines.extend(f"DIVERGENCE: {d}" for d in self.divergences)
        lines.append("RESULT: " + ("clean" if self.ok else "FAILURES"))
        return "\n".join(lines)


def run_check_matrix(
    schemes: Optional[List[str]] = None,
    *,
    seed: int = 7,
    transactions: int = 40,
    slots: int = 10,
    crash_sample: int = 12,
    progress=None,
) -> CheckMatrixResult:
    """Run the full differential matrix over ``schemes`` (default: all).

    Besides the per-scheme model comparison, every scheme's actual
    read-back bytes are compared against the first scheme's, so a
    divergence names both parties even if the model itself were wrong.
    """
    trace = generate_trace(
        seed,
        transactions=transactions,
        slots=slots,
        cores=SystemConfig.small().num_cores,
    )
    result = CheckMatrixResult(trace=trace)
    for scheme in schemes or list(ORACLE_SCHEMES):
        report = check_scheme(
            scheme,
            trace,
            crash_sample=crash_sample,
            seed=seed,
            progress=progress,
        )
        result.reports.append(report)
    if result.reports:
        baseline = result.reports[0]
        for report in result.reports[1:]:
            if report.readback != baseline.readback:
                diff = sorted(
                    addr
                    for addr in set(report.readback) | set(baseline.readback)
                    if report.readback.get(addr) != baseline.readback.get(addr)
                )
                result.divergences.append(
                    f"{report.scheme} and {baseline.scheme} disagree on"
                    f" {len(diff)} word(s), e.g. {diff[0]:#x}"
                )
    return result
