"""Trace fuzzer with delta-debugging shrinking.

Generates seeded random traces, replays each through a scheme with the
persist-ordering sanitizer attached, and — on the first trace that
produces a violation — shrinks it with the classic *ddmin* algorithm
(Zeller's delta debugging) to a 1-minimal reproducer: first over whole
transactions, then over the stores inside the survivors.  The shrunk
trace replays deterministically (``Trace`` is pure data), so a violation
report plus its trace is a complete bug report.

The standing self-test (``python -m repro.check --mutant``) fuzzes the
seeded fence-dropping :mod:`~repro.check.mutant` and must find and
shrink a violation within a handful of iterations — proving the whole
detection pipeline fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, TypeVar

from repro.check.oracle import build_system, run_trace
from repro.check.sanitizer import PersistOrderSanitizer, Violation
from repro.check.trace import Trace, TraceTxn, generate_trace
from repro.snapshot import snapshots_enabled
from repro.snapshot.replay import TraceReplayCache

T = TypeVar("T")


def make_replay_cache(scheme: str, slots: int) -> TraceReplayCache:
    """A :class:`TraceReplayCache` for sanitizer-instrumented replays.

    ddmin probes hundreds of txn-list variants that share long prefixes;
    the cache snapshots each replayed prefix (system + sanitizer state)
    so a variant re-executes only its divergent suffix.  The sanitizer
    rides inside the snapshot, so its violation list always reflects
    exactly the transactions of the variant being scored.
    """

    def build():
        sanitizer = PersistOrderSanitizer()
        system = build_system(scheme, checker=sanitizer)
        addrs = [system.allocate(64) for _ in range(slots)]
        return {"system": system, "addrs": addrs}

    def apply(state, txn: TraceTxn) -> None:
        system = state["system"]
        addrs = state["addrs"]
        with system.transaction(txn.core) as tx:
            for store in txn.stores:
                tx.store(
                    addrs[store.slot] + 8 * store.offset,
                    store.value.to_bytes(8, "little"),
                )

    return TraceReplayCache(build, apply)


def trace_violations(
    scheme: str,
    trace: Trace,
    *,
    cache: Optional[TraceReplayCache] = None,
    record: bool = True,
) -> List[Violation]:
    """Replay ``trace`` on ``scheme`` under a fresh sanitizer.

    With a ``cache`` (and snapshots enabled) the replay restores the
    longest already-seen transaction prefix instead of starting cold;
    the returned violations are identical either way because the trace
    is pure data and the sanitizer state is part of each snapshot.
    ``record=False`` skips caching the prefixes this replay creates
    (for one-off scoring of traces no later replay will share).
    """
    if cache is None or not snapshots_enabled():
        sanitizer = PersistOrderSanitizer()
        system = build_system(scheme, checker=sanitizer)
        run_trace(system, trace)
        return sanitizer.violations
    state = cache.replay(trace.txns, record=record)
    return list(state["system"].check.violations)


def ddmin(items: List[T], failing: Callable[[List[T]], bool]) -> List[T]:
    """Zeller's ddmin: a 1-minimal sublist that still satisfies ``failing``.

    Precondition: ``failing(items)`` is true.  Complements of ever-finer
    chunk partitions are tried; any failing complement restarts the
    search on the smaller list.
    """
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk):
            complement = items[:start] + items[start + chunk :]
            if complement and failing(complement):
                items = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), n * 2)
    return items


def shrink_trace(
    scheme: str,
    trace: Trace,
    *,
    cache: Optional[TraceReplayCache] = None,
) -> Trace:
    """Delta-debug ``trace`` down to a minimal still-violating trace."""
    if cache is None and snapshots_enabled():
        cache = make_replay_cache(scheme, trace.slots)

    def failing_txns(txns: List[TraceTxn]) -> bool:
        return bool(
            trace_violations(scheme, trace.with_txns(txns), cache=cache)
        )

    txns = ddmin(list(trace.txns), failing_txns)
    # Second stage: shrink each surviving transaction's store list.
    for index in range(len(txns)):
        txn = txns[index]
        if len(txn.stores) < 2:
            continue

        def failing_stores(stores, index=index, txn=txn):
            candidate = list(txns)
            candidate[index] = TraceTxn(txn.core, tuple(stores))
            return bool(
                trace_violations(
                    scheme, trace.with_txns(candidate), cache=cache
                )
            )

        stores = ddmin(list(txn.stores), failing_stores)
        txns[index] = TraceTxn(txn.core, tuple(stores))
    return trace.with_txns(txns)


@dataclass
class FuzzResult:
    """Outcome of one fuzzing campaign against one scheme."""

    scheme: str
    found: bool
    iterations: int
    trace: Optional[Trace] = None  # the shrunk reproducer
    violations: List[Violation] = field(default_factory=list)

    @property
    def shrunk_events(self) -> int:
        """Size of the shrunk reproducer (begins + stores); 0 if clean."""
        return self.trace.num_events if self.trace else 0

    def render(self) -> str:
        """Campaign report: verdict, then reproducer and violations."""
        if not self.found:
            return (
                f"fuzz[{self.scheme}]: clean after"
                f" {self.iterations} iteration(s)"
            )
        lines = [
            f"fuzz[{self.scheme}]: violation found at iteration"
            f" {self.iterations}, shrunk to {self.shrunk_events} event(s)",
            self.trace.render(),
        ]
        lines.extend(v.render() for v in self.violations)
        return "\n".join(lines)


def fuzz_scheme(
    scheme: str,
    *,
    seed: int = 7,
    iterations: int = 32,
    transactions: int = 8,
    slots: int = 4,
    cores: int = 4,
    progress=None,
) -> FuzzResult:
    """Fuzz ``scheme``; on the first violation, shrink and stop."""
    # One replay cache for the whole campaign: every iteration's trace
    # shares the empty-prefix snapshot (no per-iteration system build),
    # and the shrink phase reuses prefixes across ddmin variants.
    cache = (
        make_replay_cache(scheme, slots) if snapshots_enabled() else None
    )
    for i in range(iterations):
        trace = generate_trace(
            seed + i,
            transactions=transactions,
            slots=slots,
            cores=cores,
        )
        violations = trace_violations(
            scheme, trace, cache=cache, record=False
        )
        if progress:
            progress(
                f"fuzz[{scheme}] iter {i + 1}:"
                f" {len(violations)} violation(s)"
            )
        if violations:
            shrunk = shrink_trace(scheme, trace, cache=cache)
            return FuzzResult(
                scheme=scheme,
                found=True,
                iterations=i + 1,
                trace=shrunk,
                violations=trace_violations(scheme, shrunk, cache=cache),
            )
    return FuzzResult(scheme=scheme, found=False, iterations=iterations)
