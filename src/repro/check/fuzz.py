"""Trace fuzzer with delta-debugging shrinking.

Generates seeded random traces, replays each through a scheme with the
persist-ordering sanitizer attached, and — on the first trace that
produces a violation — shrinks it with the classic *ddmin* algorithm
(Zeller's delta debugging) to a 1-minimal reproducer: first over whole
transactions, then over the stores inside the survivors.  The shrunk
trace replays deterministically (``Trace`` is pure data), so a violation
report plus its trace is a complete bug report.

The standing self-test (``python -m repro.check --mutant``) fuzzes the
seeded fence-dropping :mod:`~repro.check.mutant` and must find and
shrink a violation within a handful of iterations — proving the whole
detection pipeline fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, TypeVar

from repro.check.oracle import build_system, run_trace
from repro.check.sanitizer import PersistOrderSanitizer, Violation
from repro.check.trace import Trace, TraceTxn, generate_trace

T = TypeVar("T")


def trace_violations(scheme: str, trace: Trace) -> List[Violation]:
    """Replay ``trace`` on ``scheme`` under a fresh sanitizer."""
    sanitizer = PersistOrderSanitizer()
    system = build_system(scheme, checker=sanitizer)
    run_trace(system, trace)
    return sanitizer.violations


def ddmin(items: List[T], failing: Callable[[List[T]], bool]) -> List[T]:
    """Zeller's ddmin: a 1-minimal sublist that still satisfies ``failing``.

    Precondition: ``failing(items)`` is true.  Complements of ever-finer
    chunk partitions are tried; any failing complement restarts the
    search on the smaller list.
    """
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk):
            complement = items[:start] + items[start + chunk :]
            if complement and failing(complement):
                items = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(len(items), n * 2)
    return items


def shrink_trace(scheme: str, trace: Trace) -> Trace:
    """Delta-debug ``trace`` down to a minimal still-violating trace."""

    def failing_txns(txns: List[TraceTxn]) -> bool:
        return bool(trace_violations(scheme, trace.with_txns(txns)))

    txns = ddmin(list(trace.txns), failing_txns)
    # Second stage: shrink each surviving transaction's store list.
    for index in range(len(txns)):
        txn = txns[index]
        if len(txn.stores) < 2:
            continue

        def failing_stores(stores, index=index, txn=txn):
            candidate = list(txns)
            candidate[index] = TraceTxn(txn.core, tuple(stores))
            return bool(
                trace_violations(scheme, trace.with_txns(candidate))
            )

        stores = ddmin(list(txn.stores), failing_stores)
        txns[index] = TraceTxn(txn.core, tuple(stores))
    return trace.with_txns(txns)


@dataclass
class FuzzResult:
    """Outcome of one fuzzing campaign against one scheme."""

    scheme: str
    found: bool
    iterations: int
    trace: Optional[Trace] = None  # the shrunk reproducer
    violations: List[Violation] = field(default_factory=list)

    @property
    def shrunk_events(self) -> int:
        """Size of the shrunk reproducer (begins + stores); 0 if clean."""
        return self.trace.num_events if self.trace else 0

    def render(self) -> str:
        """Campaign report: verdict, then reproducer and violations."""
        if not self.found:
            return (
                f"fuzz[{self.scheme}]: clean after"
                f" {self.iterations} iteration(s)"
            )
        lines = [
            f"fuzz[{self.scheme}]: violation found at iteration"
            f" {self.iterations}, shrunk to {self.shrunk_events} event(s)",
            self.trace.render(),
        ]
        lines.extend(v.render() for v in self.violations)
        return "\n".join(lines)


def fuzz_scheme(
    scheme: str,
    *,
    seed: int = 7,
    iterations: int = 32,
    transactions: int = 8,
    slots: int = 4,
    cores: int = 4,
    progress=None,
) -> FuzzResult:
    """Fuzz ``scheme``; on the first violation, shrink and stop."""
    for i in range(iterations):
        trace = generate_trace(
            seed + i,
            transactions=transactions,
            slots=slots,
            cores=cores,
        )
        violations = trace_violations(scheme, trace)
        if progress:
            progress(
                f"fuzz[{scheme}] iter {i + 1}:"
                f" {len(violations)} violation(s)"
            )
        if violations:
            shrunk = shrink_trace(scheme, trace)
            return FuzzResult(
                scheme=scheme,
                found=True,
                iterations=i + 1,
                trace=shrunk,
                violations=trace_violations(scheme, shrunk),
            )
    return FuzzResult(scheme=scheme, found=False, iterations=iterations)
