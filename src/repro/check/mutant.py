"""The seeded fence-dropping mutant: the checker's self-test.

:class:`MutantRedoScheme` is Opt-Redo with one deliberate bug — the
``tx_end`` drain that orders the queued redo-log entries ahead of the
commit record is missing.  On real hardware that is a classic
lost-durability bug: a crash after the commit record persists but before
the write queue drains leaves a committed transaction with missing log
entries.

Crucially, the bug is *functionally invisible in this simulator*: an
asynchronous write's content reaches the modeled device immediately, so
every workload run, crash-point sweep, and recovery still produces
correct state.  Only the trace-level persist-ordering sanitizer — which
checks the declared ``log-drain`` discipline's ordering edges, not the
final state — can catch it (rule ``unfenced-write``).  That is exactly
the bug class the sanitizer exists for, and why this mutant is the
standing proof that the checker fires (``python -m repro.check
--mutant``).

The mutant is resolved only inside :mod:`repro.check` — it is *not* in
the scheme registry, so it can never leak into harness figures.
"""

from __future__ import annotations

from repro.common.addr import CACHE_LINE_BYTES
from repro.schemes.logregion import KIND_COMMIT, KIND_DATA
from repro.schemes.redo import _LOG_ENTRY_BYTES, _LOG_PRESSURE, OptRedoScheme

MUTANT_SCHEME = "mutant-redo"


class MutantRedoScheme(OptRedoScheme):
    """Opt-Redo with the log-before-commit drain deliberately dropped."""

    name = MUTANT_SCHEME
    # Same declared discipline as the parent — that is the point: the
    # scheme *claims* log-drain ordering but no longer provides it.
    traits = OptRedoScheme.traits

    def tx_end(self, core: int, tx_id: int, now_ns: float) -> float:
        """The parent commit path minus the log-before-commit drain."""
        write_set = self._write_sets.pop(tx_id, {})
        if not write_set:
            return now_ns
        if self.log.fill_fraction >= _LOG_PRESSURE:
            now_ns = self._run_checkpoint(now_ns, blocking=True)
        check = self.check
        for line_addr, data in write_set.items():
            self.log.append(
                KIND_DATA,
                tx_id,
                line_addr,
                data,
                now_ns,
                sync=False,
                min_entry_bytes=_LOG_ENTRY_BYTES,
            )
            if check.active:
                check.note_persist(
                    tx_id, "log", line_addr, CACHE_LINE_BYTES, now_ns,
                    sync=False, port=self.port,
                )
        # BUG (deliberate): the parent drains the port here so every
        # queued log entry is durable before the commit record.  This
        # mutant persists the commit record straight away.
        _, now_ns = self.log.append(
            KIND_COMMIT, tx_id, 0, b"", now_ns, sync=True,
            min_entry_bytes=CACHE_LINE_BYTES,
        )
        if check.active:
            check.note_persist(
                tx_id, "commit", -1, 0, now_ns, sync=True, port=self.port
            )
        self._shadow.update(write_set)
        return now_ns
