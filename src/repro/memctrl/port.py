"""The memory port: synchronous vs asynchronous NVM access.

Every crash-consistency scheme in the paper differs in *what it writes* and
*what it waits for*.  The port makes that split explicit:

``sync_write``
    The caller's clock advances to completion (queue + device write
    latency).  Used for undo-log-before-data ordering, eager shadow-paging
    flushes, commit-record persists, and HOOP's Tx_end slice drain.

``async_write``
    The write occupies channel bandwidth and reaches the device content
    immediately (it *will* become durable), but the caller does not wait.
    Used for dirty evictions, redo-log appends behind a write queue,
    checkpointing, and GC migration.  Asynchronous traffic still steals
    bandwidth from synchronous operations — that is how heavy-logging
    schemes lose throughput without necessarily losing latency.

``read``
    Timed read; the caller waits (reads are on the critical path for every
    scheme).

All byte counters for Fig. 8 (write traffic) come from the underlying
:class:`~repro.nvm.device.NVMDevice` stats, so no scheme can under-report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.check.sanitizer import NULL_CHECKER
from repro.common.errors import ReadRetryExhaustedError, TransientReadError
from repro.nvm.device import NVMDevice
from repro.telemetry.hub import NULL_TELEMETRY, STALL_EVENT_NS


@dataclass
class PortStats:
    sync_writes: int = 0
    async_writes: int = 0
    reads: int = 0
    sync_bytes: int = 0
    async_bytes: int = 0
    read_bytes: int = 0
    sync_wait_ns: float = 0.0
    # Fault tolerance (non-zero only with injection enabled): transient
    # media read errors retried, the simulated time spent backing off,
    # reads abandoned after the retry budget, and the worst single
    # operation's attempt count (retries are budgeted per operation, so
    # this gauge never exceeds max_read_retries + 1).
    read_retries: int = 0
    retry_wait_ns: float = 0.0
    reads_failed: int = 0
    max_attempts_one_read: int = 0


class MemoryPort:
    """Gateway between a persistence scheme and the NVM device."""

    def __init__(self, device: NVMDevice) -> None:
        self.device = device
        self.stats = PortStats()
        # Telemetry is observational only: the shared no-op by default,
        # replaced (plus a track name) by whoever owns this port.
        self.telemetry = NULL_TELEMETRY
        self.track = "port"
        # Persist-ordering sanitizer: the shared no-op unless an
        # instrumented run installed one (see repro.check).  Drains are
        # the only event the port reports itself — schemes annotate
        # their writes with logical meaning at the call sites.
        self.check = NULL_CHECKER

    # -- writes -------------------------------------------------------------

    def sync_write(self, addr: int, data: bytes, now_ns: float) -> float:
        """Persist ``data`` and wait; returns completion time."""
        result = self.device.write(addr, data, now_ns, queued=False)
        self.stats.sync_writes += 1
        self.stats.sync_bytes += len(data)
        self.stats.sync_wait_ns += result.latency_ns
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.record("sync_stall_ns", result.latency_ns)
            telemetry.add_write_traffic(now_ns, len(data))
            if result.latency_ns >= STALL_EVENT_NS:
                telemetry.emit(
                    now_ns,
                    "port_stall",
                    self.track,
                    {"addr": addr, "wait_ns": result.latency_ns},
                )
        return result.completion_ns

    def async_write(self, addr: int, data: bytes, now_ns: float) -> float:
        """Queue ``data`` for persistence without stalling the caller.

        The content reaches the device immediately (the write queue is
        modeled as draining in order before any later operation that the
        caller *does* wait on), and the channel reservation charges the
        bandwidth.  Returns the drain completion time for callers that want
        to fence on it later.
        """
        result = self.device.write(addr, data, now_ns, queued=True)
        self.stats.async_writes += 1
        self.stats.async_bytes += len(data)
        if self.telemetry.enabled:
            self.telemetry.add_write_traffic(now_ns, len(data))
        return result.completion_ns

    def async_write_words(
        self, writes: Sequence[Tuple[int, bytes]], now_ns: float
    ) -> None:
        """Queue a burst of already-coalesced writes at one instant.

        Timing math is batched in the device/channel; accounting is
        identical to one :meth:`async_write` per element.  For callers
        (GC migration) that fence later via :meth:`drain` rather than
        tracking per-write completions.
        """
        if not writes:
            return
        self.device.write_batch(writes, now_ns)
        self.stats.async_writes += len(writes)
        nbytes = sum(len(data) for _, data in writes)
        self.stats.async_bytes += nbytes
        if self.telemetry.enabled:
            self.telemetry.add_write_traffic(now_ns, nbytes)

    def read(self, addr: int, size: int, now_ns: float) -> Tuple[bytes, float]:
        """Timed read; returns ``(data, completion_ns)``.

        Transient media errors (fault injection) are retried here with
        bounded exponential backoff *in simulated time*: each failed
        attempt still occupied the channel and burned energy, and every
        retry pushes the completion time further out — which is how
        injected read errors surface in the latency model.  The budget
        is per-operation: every read starts with a fresh
        ``max_read_retries`` allowance regardless of how many earlier
        reads faulted.  Exhausting it raises
        :class:`~repro.common.errors.ReadRetryExhaustedError` (a
        :class:`~repro.common.errors.MediaError`) carrying the failing
        address.
        """
        try:
            data, result = self.device.read(addr, size, now_ns)
            completion = result.completion_ns
        except TransientReadError as fault:
            data, completion = self._read_with_retry(
                addr, size, fault
            )
        self.stats.reads += 1
        self.stats.read_bytes += size
        if self.telemetry.enabled:
            self.telemetry.record("nvm_read_ns", completion - now_ns)
        return data, completion

    def _read_with_retry(
        self, addr: int, size: int, fault: TransientReadError
    ) -> Tuple[bytes, float]:
        faults = self.device.faults  # only faulty devices raise
        completion = fault.completion_ns
        stats = self.stats
        # `attempts` counts this operation's tries only (the initial
        # faulted read plus each retry below); the global stats counters
        # aggregate across operations but never gate the budget.
        attempts = 1
        for retry in range(1, faults.max_read_retries + 1):
            backoff = faults.retry_backoff_ns * (2 ** (retry - 1))
            attempts += 1
            stats.read_retries += 1
            stats.retry_wait_ns += backoff
            if attempts > stats.max_attempts_one_read:
                stats.max_attempts_one_read = attempts
            if self.telemetry.enabled:
                self.telemetry.count("port.read_retries")
            try:
                data, result = self.device.read(
                    addr, size, completion + backoff
                )
                return data, result.completion_ns
            except TransientReadError as again:
                completion = again.completion_ns
        stats.reads_failed += 1
        raise ReadRetryExhaustedError(addr, attempts) from fault

    # -- fences ----------------------------------------------------------------

    def drain(self, now_ns: float) -> float:
        """Wait until every queued write is durable (sfence semantics)."""
        drained = self.device.channel.drain(now_ns)
        # The last queued write's device latency is still in flight after
        # its channel transfer completes.
        if drained > now_ns:
            drained += self.device.config.write_latency_ns
        if self.check.active:
            self.check.on_drain(self, now_ns, drained)
        return drained

    # -- bookkeeping -------------------------------------------------------------

    @property
    def bytes_written(self) -> int:
        return self.stats.sync_bytes + self.stats.async_bytes

    def reset_stats(self) -> None:
        self.stats = PortStats()


# -- snapshot declarations ----------------------------------------------------
PortStats.__snapshot_state__ = "__atoms__"
MemoryPort.__snapshot_state__ = "__all__"
