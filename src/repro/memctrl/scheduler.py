"""Simulated-time periodic triggers (GC cadence, checkpoint cadence).

The simulator has no event loop; components poll the trigger with the
current simulated time and run their periodic work inline when it fires.
That matches how the paper describes HOOP's GC: "executes periodically
(in every ten milliseconds by default)" — a cadence, not an interrupt.
"""

from __future__ import annotations


class PeriodicTrigger:
    """Fires once every ``period_ns`` of simulated time."""

    def __init__(self, period_ns: float, *, start_ns: float = 0.0) -> None:
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.period_ns = period_ns
        self._next_fire_ns = start_ns + period_ns
        self.fire_count = 0
        # Periods that elapsed unserviced before a poll caught up: when
        # one fire() consumes N periods, N-1 of them were skipped (the
        # caller runs its periodic work once regardless).
        self.missed_periods = 0

    def due(self, now_ns: float) -> bool:
        """True when at least one period has elapsed since the last fire."""
        return now_ns >= self._next_fire_ns

    def fire(self, now_ns: float) -> int:
        """Consume all elapsed periods; returns how many were due.

        Callers typically run their periodic work once regardless of how
        many periods elapsed (GC catches up in a single pass), but the
        count is reported so statistics can show skipped periods.
        """
        if now_ns < self._next_fire_ns:
            return 0
        missed = int((now_ns - self._next_fire_ns) // self.period_ns) + 1
        self._next_fire_ns += missed * self.period_ns
        self.fire_count += missed
        self.missed_periods += missed - 1
        return missed

    def reschedule(self, period_ns: float, now_ns: float) -> None:
        """Change the cadence (used by GC-period sweeps, Fig. 10)."""
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self.period_ns = period_ns
        self._next_fire_ns = now_ns + period_ns

    @property
    def next_fire_ns(self) -> float:
        return self._next_fire_ns


# -- snapshot declarations ----------------------------------------------------
PeriodicTrigger.__snapshot_state__ = "__atoms__"
