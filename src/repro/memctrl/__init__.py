"""Memory-controller substrate.

:class:`repro.memctrl.port.MemoryPort` is the single gateway schemes use to
reach the NVM device.  It distinguishes *synchronous* persists (the caller's
clock waits: flushes, ordering stalls, commit barriers) from *asynchronous*
writes (write-queue absorbed: evictions, background GC, log truncation) —
the distinction the paper's critical-path-vs-traffic analysis rests on.

:mod:`repro.memctrl.scheduler` provides the periodic-task trigger used for
GC cadence (10 ms default) and baseline checkpointing.
"""

from repro.memctrl.port import MemoryPort
from repro.memctrl.scheduler import PeriodicTrigger

__all__ = ["MemoryPort", "PeriodicTrigger"]
