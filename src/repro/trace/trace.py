"""The trace format: an ordered stream of transactional memory events.

Text serialization, one event per line::

    # hoop-trace v1
    B 0              Tx_begin on core 0
    S 0 1000 deadbeefdeadbeef   store at 0x1000 (hex payload)
    L 0 1000 8       load of 8 bytes at 0x1000
    E 0              Tx_end on core 0

Addresses are hex without prefix; payloads are hex bytes.  The format is
deliberately line-oriented so traces diff and grep like logs.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, TextIO, Union

from repro.common.errors import ReproError

_HEADER = "# hoop-trace v1"

BEGIN = "B"
STORE = "S"
LOAD = "L"
END = "E"
_KINDS = {BEGIN, STORE, LOAD, END}


class TraceFormatError(ReproError):
    """Malformed trace text."""


@dataclass(frozen=True)
class TraceOp:
    """One event: kind, core, and (for S/L) the address and payload/size."""

    kind: str
    core: int
    addr: int = 0
    data: bytes = b""
    size: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise TraceFormatError(f"unknown op kind {self.kind!r}")
        if self.kind == STORE and not self.data:
            raise TraceFormatError("store op needs data")
        if self.kind == LOAD and self.size <= 0:
            raise TraceFormatError("load op needs a positive size")

    def render(self) -> str:
        if self.kind == STORE:
            return f"S {self.core} {self.addr:x} {self.data.hex()}"
        if self.kind == LOAD:
            return f"L {self.core} {self.addr:x} {self.size}"
        return f"{self.kind} {self.core}"

    @classmethod
    def parse(cls, line: str) -> "TraceOp":
        parts = line.split()
        if not parts:
            raise TraceFormatError("empty trace line")
        kind = parts[0]
        try:
            if kind in (BEGIN, END):
                return cls(kind, int(parts[1]))
            if kind == STORE:
                return cls(
                    kind,
                    int(parts[1]),
                    addr=int(parts[2], 16),
                    data=bytes.fromhex(parts[3]),
                )
            if kind == LOAD:
                return cls(
                    kind,
                    int(parts[1]),
                    addr=int(parts[2], 16),
                    size=int(parts[3]),
                )
        except (IndexError, ValueError) as exc:
            raise TraceFormatError(f"bad trace line: {line!r}") from exc
        raise TraceFormatError(f"unknown op kind in line: {line!r}")


@dataclass
class Trace:
    """An ordered event stream plus summary accessors."""

    ops: List[TraceOp] = field(default_factory=list)

    def append(self, op: TraceOp) -> None:
        self.ops.append(op)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[TraceOp]:
        return iter(self.ops)

    @property
    def transactions(self) -> int:
        return sum(1 for op in self.ops if op.kind == END)

    @property
    def stores(self) -> int:
        return sum(1 for op in self.ops if op.kind == STORE)

    @property
    def loads(self) -> int:
        return sum(1 for op in self.ops if op.kind == LOAD)

    def cores(self) -> List[int]:
        return sorted({op.core for op in self.ops})

    def validate(self) -> None:
        """Every core's events must form well-nested transactions."""
        open_cores = set()
        for op in self.ops:
            if op.kind == BEGIN:
                if op.core in open_cores:
                    raise TraceFormatError(
                        f"core {op.core}: Tx_begin inside a transaction"
                    )
                open_cores.add(op.core)
            elif op.kind == END:
                if op.core not in open_cores:
                    raise TraceFormatError(
                        f"core {op.core}: Tx_end without Tx_begin"
                    )
                open_cores.discard(op.core)
            elif op.core not in open_cores:
                raise TraceFormatError(
                    f"core {op.core}: {op.kind} outside a transaction"
                )

    # -- serialization ------------------------------------------------------------

    def dump(self, stream: TextIO) -> None:
        stream.write(_HEADER + "\n")
        for op in self.ops:
            stream.write(op.render() + "\n")

    def dumps(self) -> str:
        buffer = io.StringIO()
        self.dump(buffer)
        return buffer.getvalue()

    @classmethod
    def load(cls, stream: Union[TextIO, Iterable[str]]) -> "Trace":
        lines = iter(stream)
        try:
            header = next(lines).strip()
        except StopIteration:
            raise TraceFormatError("empty trace") from None
        if header != _HEADER:
            raise TraceFormatError(f"bad header: {header!r}")
        trace = cls()
        for line in lines:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            trace.append(TraceOp.parse(line))
        return trace

    @classmethod
    def loads(cls, text: str) -> "Trace":
        return cls.load(io.StringIO(text))
