"""Trace capture and replay.

The simulator is trace-driven at heart: a workload is a stream of
``Tx_begin / store / load / Tx_end`` events.  This package makes that
stream a first-class artifact —

* :class:`~repro.trace.trace.Trace` holds an event stream and round-trips
  through a line-oriented text format (diff-able, greppable);
* :class:`~repro.trace.record.RecordingSystem` is a drop-in
  :class:`~repro.txn.system.MemorySystem` that captures everything a
  workload does;
* :func:`~repro.trace.replay.replay` re-executes a trace against any
  scheme and returns the same :class:`RunResult`-style metrics.

Record once, replay everywhere: the same byte-identical event stream can
be driven through all seven schemes, which removes workload randomness
from cross-scheme comparisons entirely.
"""

from repro.trace.record import RecordingSystem
from repro.trace.replay import ReplayResult, replay
from repro.trace.trace import Trace, TraceOp

__all__ = ["Trace", "TraceOp", "RecordingSystem", "replay", "ReplayResult"]
