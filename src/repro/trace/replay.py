"""Replay a captured trace against any persistence scheme.

The replayer walks the event stream in recorded order, opening and
closing transactions per core exactly as the original run did.  Because
the byte stream is fixed, two replays under different schemes see the
*identical* workload — the cleanest possible apples-to-apples comparison
(no RNG, no data-structure divergence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.errors import ReproError
from repro.trace.trace import BEGIN, END, LOAD, STORE, Trace
from repro.txn.system import MemorySystem
from repro.txn.transaction import Transaction


class ReplayError(ReproError):
    """The trace does not fit the target system."""


@dataclass
class ReplayResult:
    """Metrics of one trace replay."""

    scheme: str
    transactions: int = 0
    stores: int = 0
    loads: int = 0
    makespan_ns: float = 0.0
    mean_latency_ns: float = 0.0
    bytes_written: int = 0
    bytes_read: int = 0
    energy_pj: float = 0.0
    load_mismatches: int = 0
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_tx_per_ms(self) -> float:
        if self.makespan_ns <= 0:
            return 0.0
        return self.transactions / (self.makespan_ns / 1e6)


def replay(
    trace: Trace,
    system: MemorySystem,
    *,
    verify_loads: Optional[Dict[int, bytes]] = None,
    quiesce: bool = True,
    reset_measurement: bool = True,
) -> ReplayResult:
    """Execute ``trace`` on ``system``; returns replay metrics.

    ``verify_loads`` optionally maps load addresses to expected bytes
    (e.g. from the recording run); mismatches are counted, not raised,
    because a replay against a different initial heap is legitimate.
    """
    trace.validate()
    cores = trace.cores()
    if cores and max(cores) >= system.config.num_cores:
        raise ReplayError(
            f"trace uses core {max(cores)}; system has"
            f" {system.config.num_cores}"
        )
    if reset_measurement:
        system.reset_measurement()
    result = ReplayResult(scheme=system.scheme.name)
    open_txs: Dict[int, Transaction] = {}
    start_ns = max(system.clocks) if system.clocks else 0.0
    start_committed = system.committed_transactions
    for op in trace:
        if op.kind == BEGIN:
            if op.core in open_txs:
                raise ReplayError(f"core {op.core}: nested Tx_begin")
            tx = system.transaction(op.core)
            tx.__enter__()
            open_txs[op.core] = tx
        elif op.kind == END:
            tx = open_txs.pop(op.core, None)
            if tx is None:
                raise ReplayError(f"core {op.core}: Tx_end without begin")
            tx.__exit__(None, None, None)
            result.transactions += 1
        elif op.kind == STORE:
            tx = open_txs.get(op.core)
            if tx is None:
                raise ReplayError(f"core {op.core}: store outside tx")
            tx.store(op.addr, op.data)
            result.stores += 1
        elif op.kind == LOAD:
            tx = open_txs.get(op.core)
            if tx is None:
                raise ReplayError(f"core {op.core}: load outside tx")
            data = tx.load(op.addr, op.size)
            result.loads += 1
            if verify_loads is not None:
                expected = verify_loads.get(op.addr)
                if expected is not None and expected != data:
                    result.load_mismatches += 1
    if open_txs:
        raise ReplayError(
            f"trace left transactions open on cores {sorted(open_txs)}"
        )
    if quiesce:
        system.scheme.quiesce(system.now_ns)
    result.makespan_ns = max(
        max(system.clocks) - start_ns, 1e-9
    )
    result.mean_latency_ns = system.mean_latency_ns
    result.bytes_written = system.device.stats.bytes_written
    result.bytes_read = system.device.stats.bytes_read
    result.energy_pj = system.device.energy.total_pj
    assert (
        system.committed_transactions - start_committed
        == result.transactions
    )
    return result
