"""Capture a workload's event stream while it runs normally.

:class:`RecordingSystem` is a :class:`~repro.txn.system.MemorySystem`
that also appends every transactional event to a
:class:`~repro.trace.trace.Trace`.  The workload neither knows nor cares;
timing, caching, and persistence behave exactly as on the plain system.
"""

from __future__ import annotations

from repro.trace.trace import BEGIN, END, LOAD, STORE, Trace, TraceOp
from repro.txn.system import MemorySystem
from repro.txn.transaction import Transaction


class RecordingSystem(MemorySystem):
    """A MemorySystem that records everything into ``self.trace``."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.trace = Trace()
        self.recording = True

    def _begin(self, tx: Transaction) -> None:
        super()._begin(tx)
        if self.recording:
            self.trace.append(TraceOp(BEGIN, tx.core))

    def _end(self, tx: Transaction) -> None:
        super()._end(tx)
        if self.recording:
            self.trace.append(TraceOp(END, tx.core))

    def _store(self, tx: Transaction, addr: int, data: bytes) -> None:
        super()._store(tx, addr, data)
        if self.recording:
            self.trace.append(
                TraceOp(STORE, tx.core, addr=addr, data=bytes(data))
            )

    def _load(self, core: int, addr: int, size: int) -> bytes:
        data = super()._load(core, addr, size)
        if self.recording:
            self.trace.append(TraceOp(LOAD, core, addr=addr, size=size))
        return data

    def pause_recording(self) -> None:
        """Stop capturing (e.g. during a load phase you want excluded)."""
        self.recording = False

    def resume_recording(self) -> None:
        self.recording = True
