"""NVM device: functional byte plane, timing, energy, wear."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.config import NVMConfig
from repro.common.errors import AddressError
from repro.common.units import MB
from repro.nvm.device import NVMDevice


@pytest.fixture
def device():
    return NVMDevice(NVMConfig(capacity=16 * MB))


class TestFunctionalPlane:
    def test_fresh_device_reads_zero(self, device):
        assert device.peek(0, 16) == b"\x00" * 16

    def test_poke_peek_round_trip(self, device):
        device.poke(100, b"hello world")
        assert device.peek(100, 11) == b"hello world"

    def test_poke_across_page_boundary(self, device):
        data = bytes(range(200))
        device.poke(4000, data)
        assert device.peek(4000, 200) == data

    def test_peek_across_untouched_pages(self, device):
        device.poke(4095, b"x")
        assert device.peek(4090, 10) == b"\x00" * 5 + b"x" + b"\x00" * 4

    def test_out_of_range_rejected(self, device):
        with pytest.raises(AddressError):
            device.peek(16 * MB, 1)
        with pytest.raises(AddressError):
            device.poke(-1, b"a")
        with pytest.raises(AddressError):
            device.peek(0, 0)

    def test_sparse_footprint(self, device):
        device.poke(0, b"a")
        device.poke(8 * MB, b"b")
        assert device.touched_bytes == 2 * 4096


class TestTimedPlane:
    def test_read_returns_data_and_timing(self, device):
        device.poke(64, b"abcdefgh")
        data, result = device.read(64, 8, now_ns=100.0)
        assert data == b"abcdefgh"
        assert result.completion_ns >= 100.0 + device.config.read_latency_ns
        assert device.stats.reads == 1
        assert device.stats.bytes_read == 8

    def test_write_latency_exceeds_read(self, device):
        w = device.write(0, b"x" * 64, 0.0, queued=False)
        device2 = NVMDevice(NVMConfig(capacity=16 * MB))
        _, r = device2.read(0, 64, 0.0)
        assert w.latency_ns > r.latency_ns

    def test_write_counts_bytes(self, device):
        device.write(0, b"x" * 100, 0.0)
        assert device.stats.bytes_written == 100
        assert device.stats.writes == 1

    def test_empty_write_is_free(self, device):
        result = device.write(0, b"", 5.0)
        assert result.latency_ns == 0.0
        assert device.stats.writes == 0

    def test_row_buffer_hits_tracked(self, device):
        device.read(0, 8, 0.0)
        _, second = device.read(8, 8, 1.0)
        assert second.row_buffer_hit
        _, far = device.read(1 * MB, 8, 2.0)
        assert not far.row_buffer_hit


class TestAccounting:
    def test_energy_accumulates(self, device):
        device.write(0, b"x" * 64, 0.0)
        device.read(0, 64, 10.0)
        assert device.energy.write_pj > 0
        assert device.energy.read_pj > 0

    def test_wear_tracks_writes(self, device):
        device.write(0, b"x" * 64, 0.0)
        assert device.wear.total_bytes == 64

    def test_reset_stats_keeps_content(self, device):
        device.write(0, b"keep me!", 0.0)
        device.reset_stats()
        assert device.stats.bytes_written == 0
        assert device.energy.total_pj == 0
        assert device.peek(0, 8) == b"keep me!"

    def test_clear_erases_content(self, device):
        device.write(0, b"gone", 0.0)
        device.clear()
        assert device.peek(0, 4) == b"\x00" * 4


@given(
    st.integers(min_value=0, max_value=15 * MB),
    st.binary(min_size=1, max_size=512),
)
def test_poke_peek_property(addr, data):
    device = NVMDevice(NVMConfig(capacity=16 * MB))
    device.poke(addr, data)
    assert device.peek(addr, len(data)) == data


@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=1 * MB),
    st.binary(min_size=1, max_size=64),
), min_size=1, max_size=20))
def test_overlapping_pokes_last_writer_wins(writes):
    device = NVMDevice(NVMConfig(capacity=16 * MB))
    shadow = bytearray(2 * MB)
    for addr, data in writes:
        device.poke(addr, data)
        shadow[addr : addr + len(data)] = data
    for addr, data in writes:
        assert device.peek(addr, len(data)) == bytes(
            shadow[addr : addr + len(data)]
        )
